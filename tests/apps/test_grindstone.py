"""Grindstone suite: each program shows its documented diagnosis."""

import pytest

from repro.analysis import analyze_run
from repro.apps import (
    GRINDSTONE_PROGRAMS,
    GrindstoneConfig,
    big_message,
    diffuse_procedure,
    hot_procedure,
    intensive_server,
    random_barrier,
    small_messages,
)
from repro.asl import CommunicationBound, PerformanceData
from repro.simmpi import run_mpi
from repro.trace import comm_matrix, profile_trace

FAST = dict(model_init_overhead=False)
CFG = GrindstoneConfig()


def test_all_programs_run_on_various_sizes():
    for name, program in GRINDSTONE_PROGRAMS.items():
        for size in (2, 5):
            result = run_mpi(program, size, CFG, **FAST)
            assert result.final_time > 0, name


def test_big_message_is_bandwidth_dominated():
    result = run_mpi(big_message, 4, CFG, **FAST)
    data = PerformanceData.from_run(result)
    assert CommunicationBound().condition(data)
    matrix = comm_matrix(result.events)
    # few messages, huge volume
    assert matrix.total_messages == 2 * CFG.repetitions
    assert matrix.total_bytes >= 2 * CFG.repetitions * CFG.big_bytes


def test_small_messages_is_latency_dominated():
    result = run_mpi(small_messages, 4, CFG, **FAST)
    data = PerformanceData.from_run(result)
    assert CommunicationBound().condition(data)
    matrix = comm_matrix(result.events)
    # many messages, tiny volume
    assert matrix.total_messages == 2 * CFG.repetitions * CFG.small_count
    assert matrix.total_bytes == matrix.total_messages * 4


def test_big_vs_small_transport_profile_differs():
    """Same diagnosis, opposite mechanisms: volume vs. count."""
    big = comm_matrix(run_mpi(big_message, 4, CFG, **FAST).events)
    small = comm_matrix(run_mpi(small_messages, 4, CFG, **FAST).events)
    assert big.total_bytes > 100 * small.total_bytes
    assert small.total_messages > 10 * big.total_messages


def test_intensive_server_blocks_clients():
    result = run_mpi(intensive_server, 5, CFG, **FAST)
    analysis = analyze_run(result)
    assert analysis.severity(property="late_sender") > 0.3
    waiting = {loc.rank for loc in analysis.locations_of("late_sender")}
    # the clients wait (on serialized replies), not the server
    assert waiting == {1, 2, 3, 4}
    assert comm_matrix(result.events).hottest_receiver() == 0
    assert result.results[0] == CFG.repetitions * 4


def test_random_barrier_spreads_waits_over_all_ranks():
    result = run_mpi(
        random_barrier, 6, GrindstoneConfig(repetitions=24), **FAST
    )
    analysis = analyze_run(result)
    assert analysis.severity(property="wait_at_barrier") > 0.2
    waiting = {loc.rank for loc in analysis.locations_of("wait_at_barrier")}
    assert waiting == set(range(6))  # nobody is *the* culprit


def test_random_barrier_deterministic_across_runs():
    r1 = run_mpi(random_barrier, 4, CFG, seed=7, **FAST)
    r2 = run_mpi(random_barrier, 4, CFG, seed=7, **FAST)
    assert r1.final_time == r2.final_time


def test_hot_procedure_dominates_profile():
    result = run_mpi(hot_procedure, 2, CFG, **FAST)
    profile = profile_trace(result.events)
    hot = profile.region_total("the_hot_procedure")
    cold = profile.region_total("cold_code")
    assert hot > 8 * cold


def test_diffuse_procedure_same_total_many_sites():
    hot = run_mpi(hot_procedure, 2, CFG, **FAST)
    diffuse = run_mpi(diffuse_procedure, 2, CFG, **FAST)
    hot_profile = profile_trace(hot.events)
    diffuse_profile = profile_trace(diffuse.events)
    # same total procedure time...
    assert diffuse_profile.region_total(
        "the_hot_procedure"
    ) == pytest.approx(hot_profile.region_total("the_hot_procedure"))
    # ...but spread over several call sites
    from repro.trace import Enter

    sites = {
        e.path[-2]
        for e in diffuse.events
        if isinstance(e, Enter) and e.region == "the_hot_procedure"
    }
    assert len(sites) == 4


def test_results_are_verifiable():
    result = run_mpi(big_message, 4, CFG, **FAST)
    assert result.results[1] == CFG.repetitions * CFG.big_bytes
    result = run_mpi(small_messages, 4, CFG, **FAST)
    assert result.results[3] == CFG.repetitions * CFG.small_count
