"""Job model and the service core: queueing, coalescing, drain."""

import threading

import pytest

from repro.archive import Archive
from repro.core import get_property
from repro.service import (
    AnalysisService,
    CampaignProgress,
    Job,
    JobError,
    RateLimited,
    ServiceDraining,
)


# ----------------------------------------------------------------------
# Job
# ----------------------------------------------------------------------

def test_job_lifecycle_and_serialization():
    job = Job("analyze", {"run": "abc"}, tenant="t", request_id="r-1")
    assert job.state == "queued"
    assert not job.done
    job.mark_running()
    job.resolve({"answer": 42}, None)
    assert job.done and job.state == "done"
    out = job.to_dict()
    assert out["result"] == {"answer": 42}
    assert out["request_id"] == "r-1"
    assert out["queue_wait"] >= 0.0


def test_job_failure_carries_error():
    job = Job("run", {})
    job.mark_running()
    job.resolve(None, "ValueError: boom")
    assert job.state == "failed"
    assert job.to_dict()["error"] == "ValueError: boom"


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        Job("frobnicate", {})


def test_done_callback_fires_even_when_registered_late():
    job = Job("history", {})
    job.resolve({"n": 0}, None)
    seen = []
    job.add_done_callback(seen.append)
    assert seen == [job]


def test_campaign_progress_counts_events():
    progress = CampaignProgress("job-x", total=3)
    progress.on_event({"event": "cell-started", "key": "a",
                       "attempt": 1, "ts": 1.0})
    progress.on_event({"event": "cell-retry", "key": "a",
                       "attempt": 1, "ts": 2.0})
    progress.on_event({"event": "cell-started", "key": "a",
                       "attempt": 2, "ts": 3.0})
    progress.on_event({"event": "cell-done", "key": "a", "ts": 4.0})
    progress.on_event({"event": "cell-quarantined", "key": "b",
                       "ts": 5.0})
    snap = progress.snapshot()
    assert snap["started"] == 1  # first attempts only
    assert snap["retried"] == 1
    assert snap["done"] == 1
    assert snap["failed"] == 1
    assert snap["recent"][-1]["key"] == "b"


# ----------------------------------------------------------------------
# service core (no HTTP)
# ----------------------------------------------------------------------

@pytest.fixture
def service(tmp_path):
    archive = Archive(tmp_path / "archive")
    run = archive.archive_run(
        get_property("late_sender"), size=4, num_threads=2, seed=1
    )
    svc = AnalysisService(archive, max_workers=1)
    svc.seeded_run = run
    return svc


def test_submit_executes_and_resolves(service):
    job, coalesced = service.submit(
        "analyze", {"run": service.seeded_run.run_id}
    )
    assert not coalesced
    assert job.wait(timeout=30)
    assert job.state == "done"
    assert "late_sender" in job.result["detected"]


def test_unknown_run_rejected_at_submit(service):
    with pytest.raises(JobError):
        service.submit("analyze", {"run": "doesnotexist"})


def test_unknown_property_rejected_at_submit(service):
    with pytest.raises(JobError):
        service.submit("run", {"property": "nope"})


def test_concurrent_identical_analyzes_coalesce(service):
    """N identical in-flight analyzes -> one executor cell."""
    gate = threading.Event()
    # occupy the single worker so submissions pile up deterministically
    service._job_history = lambda job: gate.wait(30) or {"count": 0}
    blocker, _ = service.submit("history", {})

    ref = service.seeded_run.run_id
    jobs = [service.submit("analyze", {"run": ref}) for _ in range(6)]
    primaries = {job.id for job, _ in jobs}
    assert len(primaries) == 1, "identical submissions made new jobs"
    assert [c for _, c in jobs] == [False] + [True] * 5
    primary = jobs[0][0]
    assert primary.coalesced == 5

    executed_before = service.counts["executed"]
    gate.set()
    assert blocker.wait(30) and primary.wait(30)
    # exactly two computations ran: the blocker and ONE analyze
    assert service.counts["executed"] == executed_before + 2
    assert service.counts["coalesced"] == 5
    # every waiter reads the same result object
    assert primary.result["detected"]


def test_coalescing_does_not_join_resolved_jobs(service):
    ref = service.seeded_run.run_id
    first, _ = service.submit("analyze", {"run": ref})
    assert first.wait(30)
    second, coalesced = service.submit("analyze", {"run": ref})
    assert not coalesced
    assert second.id != first.id
    assert second.wait(30)


def test_rate_limited_submission_raises(tmp_path):
    archive = Archive(tmp_path / "a2")
    svc = AnalysisService(archive, max_workers=1, rate=1.0, burst=1)
    svc.submit("history", {})
    with pytest.raises(RateLimited) as excinfo:
        svc.submit("history", {})
    assert excinfo.value.retry_after > 0.0
    assert svc.counts["rate_limited"] == 1


def test_drain_stops_intake_and_waits(service):
    job, _ = service.submit("analyze", {"run": service.seeded_run.run_id})
    assert service.drain(timeout=30)
    assert job.done
    assert not service.accepting
    with pytest.raises(ServiceDraining):
        service.submit("history", {})


def test_status_snapshot_shape(service):
    job, _ = service.submit("analyze", {"run": service.seeded_run.run_id})
    job.wait(30)
    status = service.status()
    assert status["queue_depth"] == 0
    assert status["counts"]["submitted"] == 1
    assert status["counts"]["done"] == 1
    assert 0.0 <= (status["cache_hit_ratio"] or 0.0) <= 1.0
    assert status["jobs_by_state"]["done"] == 1
