"""The calendar event queue: ordering equivalence and fast paths.

The scheduler's correctness contract is exact ``(time, seq)`` service
order; the calendar queue must be observationally identical to the
reference heap queue under any push/pop interleaving, and traces must
stay bit-identical per seed whichever queue a simulator uses.
"""

import os
import subprocess
import sys
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import get_property
from repro.simkernel.eventq import (
    CalendarEventQueue,
    HeapEventQueue,
    default_queue_class,
)
from repro.trace.io import events_to_jsonl

# ----------------------------------------------------------------------
# direct queue equivalence
# ----------------------------------------------------------------------

#: few distinct timestamps + many events = heavy same-time degeneracy,
#: the SPMD shape the calendar queue is built for
_times = st.floats(
    min_value=0.0, max_value=4.0, allow_nan=False, allow_infinity=False
).map(lambda t: round(t, 1))


@st.composite
def _event_streams(draw):
    """A scheduling script: pushes (with unique growing seqs) and pops."""
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    seq = 0
    live = 0
    for _ in range(n):
        if live and draw(st.booleans()):
            ops.append(("pop",))
            live -= 1
        else:
            ops.append(("push", draw(_times), seq))
            seq += 1
            live += 1
    return ops


@given(_event_streams())
@settings(max_examples=200, deadline=None)
def test_calendar_matches_heap_order(ops):
    cal, heap = CalendarEventQueue(), HeapEventQueue()
    for op in ops:
        if op[0] == "push":
            _, at, seq = op
            cal.push(at, seq, f"p{seq}")
            heap.push(at, seq, f"p{seq}")
        else:
            assert cal.pop() == heap.pop()
        assert len(cal) == len(heap)
        assert cal.head() == heap.head()
    # drain whatever remains; service order must agree to the end
    while len(heap):
        assert cal.pop() == heap.pop()
    assert len(cal) == 0


@given(_event_streams())
@settings(max_examples=100, deadline=None)
def test_calendar_transfer_matches_heap_transfer(ops):
    cal, heap = CalendarEventQueue(), HeapEventQueue()
    cal_ready, heap_ready = deque(), deque()
    for op in ops:
        if op[0] == "push":
            _, at, seq = op
            cal.push(at, seq, f"p{seq}")
            heap.push(at, seq, f"p{seq}")
        elif len(cal):
            # whole-bucket transfer replaces pop when the FIFO is empty
            assert cal.transfer(cal_ready) == heap.transfer(heap_ready)
            assert list(cal_ready) == list(heap_ready)
            assert len(cal) == len(heap)
    while len(cal):
        assert cal.transfer(cal_ready) == heap.transfer(heap_ready)
    assert list(cal_ready) == list(heap_ready)


def test_same_timestamp_bucket_is_fifo():
    """Events at one timestamp serve strictly in push (= seq) order."""
    q = CalendarEventQueue()
    for seq in range(100):
        q.push(2.5, seq, f"p{seq}")
    assert q.distinct_times == 1
    assert [q.pop()[1] for _ in range(100)] == list(range(100))


def test_transfer_hands_over_whole_earliest_bucket():
    q = CalendarEventQueue()
    for seq in range(5):
        q.push(1.0, seq, f"a{seq}")
    q.push(2.0, 5, "b")
    ready = deque()
    assert q.transfer(ready) == 1.0
    assert [entry[1] for entry in ready] == [0, 1, 2, 3, 4]
    assert len(q) == 1
    assert q.head() == (2.0, 5)


def test_bucket_slabs_are_recycled():
    q = CalendarEventQueue()
    for round_no in range(3):
        for seq in range(4):
            q.push(float(round_no), seq, "p")
        for _ in range(4):
            q.pop()
    assert len(q._pool) >= 1
    # recycled slabs must come back clean
    q.push(9.0, 0, "x")
    assert q.pop() == (9.0, 0, "x")


def test_partially_popped_bucket_then_transfer():
    """A bucket drained partway by pop() transfers only its remainder."""
    q = CalendarEventQueue()
    for seq in range(4):
        q.push(1.0, seq, f"p{seq}")
    assert q.pop()[1] == 0
    ready = deque()
    assert q.transfer(ready) == 1.0
    assert [entry[1] for entry in ready] == [1, 2, 3]
    assert len(q) == 0


# ----------------------------------------------------------------------
# ATS_SCHEDULER selection
# ----------------------------------------------------------------------

def test_default_queue_class_selection(monkeypatch):
    monkeypatch.delenv("ATS_SCHEDULER", raising=False)
    assert default_queue_class() is CalendarEventQueue
    monkeypatch.setenv("ATS_SCHEDULER", "heap")
    assert default_queue_class() is HeapEventQueue
    monkeypatch.setenv("ATS_SCHEDULER", " Calendar ")
    assert default_queue_class() is CalendarEventQueue
    monkeypatch.setenv("ATS_SCHEDULER", "")
    assert default_queue_class() is CalendarEventQueue


def test_default_queue_class_rejects_unknown(monkeypatch):
    monkeypatch.setenv("ATS_SCHEDULER", "btree")
    with pytest.raises(ValueError, match="ATS_SCHEDULER"):
        default_queue_class()


# ----------------------------------------------------------------------
# end-to-end: traces bit-identical across schedulers
# ----------------------------------------------------------------------

def _trace_text(name: str, scheduler: str, monkeypatch) -> str:
    monkeypatch.setenv("ATS_SCHEDULER", scheduler)
    run = get_property(name).run(size=8, num_threads=3, seed=7)
    return events_to_jsonl(run.events, metadata={"program": name})


@pytest.mark.parametrize(
    "name",
    ["imbalance_at_mpi_barrier", "hybrid_imbalance_then_barrier"],
)
def test_traces_bit_identical_across_schedulers(name, monkeypatch):
    heap = _trace_text(name, "heap", monkeypatch)
    calendar = _trace_text(name, "calendar", monkeypatch)
    assert heap == calendar


def test_same_timestamp_fifo_fast_path_regression():
    """hold(0) wakeups at the current instant bypass the event queue.

    The scheduler routes same-time wakeups straight onto its ready
    FIFO; the pending queue must see none of them.
    """
    from repro.simkernel import Simulator, hold

    sim = Simulator()
    order = []

    def body(i):
        for step in range(3):
            hold(0.0)
            order.append((step, i))

    for i in range(4):
        sim.spawn(body, i)
    sim.run()
    assert sim._eventq.distinct_times == 0
    assert len(sim._eventq) == 0
    # spawn order is preserved within every same-time step
    assert order == [(s, i) for s in range(3) for i in range(4)]


def test_subprocess_scheduler_env_round_trip():
    """ATS_SCHEDULER picked up at simulator construction in a clean env."""
    code = (
        "from repro.simkernel import Simulator, hold\n"
        "from repro.simkernel.eventq import HeapEventQueue\n"
        "sim = Simulator()\n"
        "assert type(sim._eventq) is HeapEventQueue, type(sim._eventq)\n"
        "sim.spawn(lambda: hold(1.0))\n"
        "assert sim.run() == 1.0\n"
        "print('heap-ok')\n"
    )
    env = dict(os.environ, ATS_SCHEDULER="heap")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
    )
    assert out.returncode == 0, out.stderr
    assert "heap-ok" in out.stdout
