"""Perturbation specifications.

A :class:`Perturbation` is a small frozen value object describing one
kind of noise; a :class:`FaultPlan` composes any number of them.  Specs
are pure data -- all randomness lives in
:class:`repro.faults.inject.FaultInjector` -- so plans can be hashed,
compared, serialized into robustness-curve JSON and scaled linearly:
``p.scaled(f)`` multiplies the perturbation's magnitude-like knobs by
``f`` (rates clamp to ``[0, 1]``), and ``p.scaled(0)`` always yields a
no-op, which is what lets a magnitude sweep anchor its zero point to
the clean-trace validation matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Tuple, Type


def _clamp01(x: float) -> float:
    return 0.0 if x < 0.0 else (1.0 if x > 1.0 else x)


@dataclass(frozen=True)
class Perturbation:
    """Base class: one named, scalable kind of injected noise."""

    kind = "perturbation"

    @property
    def is_noop(self) -> bool:
        raise NotImplementedError

    def scaled(self, factor: float) -> "Perturbation":
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            d[f.name] = list(value) if isinstance(value, tuple) else value
        return d


@dataclass(frozen=True)
class RankStragglers(Perturbation):
    """Fixed slow ranks: every ``hold`` on them takes longer.

    ``slowdown`` is the extra fraction added to each hold duration on
    the listed ranks (0.5 = 50% slower compute).  Deterministic without
    consuming any random stream, so stragglers compose with the other
    perturbations without shifting their draws.
    """

    ranks: Tuple[int, ...] = (0,)
    slowdown: float = 0.5

    kind = "rank_stragglers"

    def __post_init__(self) -> None:
        if self.slowdown < 0:
            raise ValueError("straggler slowdown must be >= 0")
        if any(r < 0 for r in self.ranks):
            raise ValueError("straggler ranks must be >= 0")

    @property
    def is_noop(self) -> bool:
        return self.slowdown == 0.0 or not self.ranks

    def scaled(self, factor: float) -> "RankStragglers":
        return replace(self, slowdown=self.slowdown * factor)


@dataclass(frozen=True)
class TimingJitter(Perturbation):
    """Per-event multiplicative jitter on every positive hold.

    Each hold of ``dt`` becomes ``dt * (1 + u)`` with ``u`` uniform in
    ``[-magnitude, +magnitude)`` (clamped so time never runs backward).
    Models run-to-run execution-time variability.
    """

    magnitude: float = 0.05

    kind = "timing_jitter"

    def __post_init__(self) -> None:
        if self.magnitude < 0:
            raise ValueError("jitter magnitude must be >= 0")

    @property
    def is_noop(self) -> bool:
        return self.magnitude == 0.0

    def scaled(self, factor: float) -> "TimingJitter":
        return replace(self, magnitude=self.magnitude * factor)


@dataclass(frozen=True)
class MessageLatencyNoise(Perturbation):
    """Extra wire latency per point-to-point message.

    Each message's transfer gains ``latency * magnitude * u`` seconds
    (``u`` uniform in ``[0, 1)``, ``latency`` the transport's base
    latency) -- congestion-style noise that is always non-negative.
    """

    magnitude: float = 2.0

    kind = "message_latency_noise"

    def __post_init__(self) -> None:
        if self.magnitude < 0:
            raise ValueError("latency-noise magnitude must be >= 0")

    @property
    def is_noop(self) -> bool:
        return self.magnitude == 0.0

    def scaled(self, factor: float) -> "MessageLatencyNoise":
        return replace(self, magnitude=self.magnitude * factor)


@dataclass(frozen=True)
class MessageReorder(Perturbation):
    """Bounded reorder of unmatched sends in the matching engine.

    With ``probability`` per queued send, the newly arrived message is
    moved up to ``window`` positions toward the front of its
    destination's unexpected-message queue -- so wildcard receives (and
    same-envelope FIFO matching) observe out-of-order delivery while
    the displacement stays bounded.
    """

    probability: float = 0.25
    window: int = 2

    kind = "message_reorder"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("reorder probability must be in [0, 1]")
        if self.window < 1:
            raise ValueError("reorder window must be >= 1")

    @property
    def is_noop(self) -> bool:
        return self.probability == 0.0

    def scaled(self, factor: float) -> "MessageReorder":
        return replace(self, probability=_clamp01(self.probability * factor))


@dataclass(frozen=True)
class DropRecords(Perturbation):
    """Drop each trace record with probability ``rate`` at write time."""

    rate: float = 0.02

    kind = "drop_records"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("drop rate must be in [0, 1]")

    @property
    def is_noop(self) -> bool:
        return self.rate == 0.0

    def scaled(self, factor: float) -> "DropRecords":
        return replace(self, rate=_clamp01(self.rate * factor))


@dataclass(frozen=True)
class DuplicateRecords(Perturbation):
    """Write each trace record twice with probability ``rate``."""

    rate: float = 0.02

    kind = "duplicate_records"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")

    @property
    def is_noop(self) -> bool:
        return self.rate == 0.0

    def scaled(self, factor: float) -> "DuplicateRecords":
        return replace(self, rate=_clamp01(self.rate * factor))


@dataclass(frozen=True)
class TruncateTrace(Perturbation):
    """Cut ``drop_fraction`` of the file's bytes off the end on close.

    Byte-level truncation usually lands mid-line, leaving a partial
    final record -- exactly what a crashed writer produces.  The
    reader's ``salvage`` mode (``ats analyze --salvage``) recovers
    everything up to the cut.
    """

    drop_fraction: float = 0.1

    kind = "truncate_trace"

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_fraction < 1.0:
            raise ValueError("truncation drop fraction must be in [0, 1)")

    @property
    def is_noop(self) -> bool:
        return self.drop_fraction == 0.0

    def scaled(self, factor: float) -> "TruncateTrace":
        frac = self.drop_fraction * factor
        return replace(self, drop_fraction=min(frac, 0.999))


_KINDS: Dict[str, Type[Perturbation]] = {
    cls.kind: cls
    for cls in (
        RankStragglers,
        TimingJitter,
        MessageLatencyNoise,
        MessageReorder,
        DropRecords,
        DuplicateRecords,
        TruncateTrace,
    )
}


def perturbation_from_dict(d: Dict[str, Any]) -> Perturbation:
    """Inverse of :meth:`Perturbation.to_dict`."""
    d = dict(d)
    kind = d.pop("kind")
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown perturbation kind {kind!r}") from None
    if "ranks" in d:
        d["ranks"] = tuple(d["ranks"])
    return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """A composition of perturbations applied to one run."""

    perturbations: Tuple[Perturbation, ...] = ()

    def __post_init__(self) -> None:
        for p in self.perturbations:
            if not isinstance(p, Perturbation):
                raise TypeError(f"not a Perturbation: {p!r}")

    @classmethod
    def of(cls, *perturbations: Perturbation) -> "FaultPlan":
        return cls(tuple(perturbations))

    @classmethod
    def default(cls) -> "FaultPlan":
        """The canonical all-axes plan the robustness sweep scales.

        Magnitudes are chosen so that ``scaled(1.0)`` is clearly noisy
        but most property programs still exhibit their property, which
        is where TP/FP curves are most informative.
        """
        return cls.of(
            RankStragglers(ranks=(1,), slowdown=0.3),
            TimingJitter(magnitude=0.1),
            MessageLatencyNoise(magnitude=4.0),
            MessageReorder(probability=0.25, window=2),
            DropRecords(rate=0.01),
            DuplicateRecords(rate=0.01),
            TruncateTrace(drop_fraction=0.05),
        )

    @property
    def is_noop(self) -> bool:
        return all(p.is_noop for p in self.perturbations)

    @property
    def has_trace_faults(self) -> bool:
        """True when any write-time record fault is active."""
        return any(
            not p.is_noop
            and isinstance(p, (DropRecords, DuplicateRecords, TruncateTrace))
            for p in self.perturbations
        )

    def scaled(self, factor: float) -> "FaultPlan":
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        return FaultPlan(
            tuple(p.scaled(factor) for p in self.perturbations)
        )

    def only(self, *kinds: Type[Perturbation]) -> "FaultPlan":
        """Sub-plan with just the given perturbation classes."""
        return FaultPlan(
            tuple(p for p in self.perturbations if isinstance(p, kinds))
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "perturbations": [p.to_dict() for p in self.perturbations]
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        return cls(
            tuple(
                perturbation_from_dict(p)
                for p in d.get("perturbations", ())
            )
        )

    def describe(self) -> str:
        if not self.perturbations:
            return "no-op plan"
        return " + ".join(p.kind for p in self.perturbations)
