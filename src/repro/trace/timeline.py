"""ASCII timeline rendering.

The paper demonstrates ATS programs with Vampir timeline displays
(figures 3.2-3.4).  This module renders the same information -- which
region each location is in over time -- as text, one row per location,
one character column per time bucket.  Categories:

* ``=``  computation (``work`` regions)
* ``M``  MPI point-to-point calls
* ``C``  MPI collective calls
* ``B``  MPI barrier
* ``I``  MPI init/finalize
* ``o``  OpenMP constructs (``$`` for OpenMP barriers)
* ``u``  user regions / property-function bodies
* `` ``  outside any region (before start / after finish)

The innermost active region at each bucket midpoint wins.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from .events import Enter, Event, Exit, Location

_CATEGORY_CHARS = [
    # (predicate prefix, char) checked in order on the innermost region
    ("work", "="),
    ("MPI_Barrier", "B"),
    ("MPI_Init", "I"),
    ("MPI_Finalize", "I"),
    ("omp_barrier", "$"),
    ("omp_ibarrier", "$"),
]

_P2P_REGIONS = {
    "MPI_Send",
    "MPI_Recv",
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Wait",
    "MPI_Waitall",
    "MPI_Sendrecv",
}

_COLLECTIVE_PREFIXES = (
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Scatter",
    "MPI_Gather",
    "MPI_Allgather",
    "MPI_Alltoall",
    "MPI_Scan",
    "MPI_Reduce_scatter",
)


def region_char(region: str) -> str:
    """Map a region name to its one-character timeline category."""
    for prefix, char in _CATEGORY_CHARS:
        if region.startswith(prefix):
            return char
    if region in _P2P_REGIONS:
        return "M"
    if region.startswith(_COLLECTIVE_PREFIXES):
        return "C"
    if region.startswith("omp_"):
        return "o"
    return "u"


def _interval_lists(
    events: Sequence[Event],
) -> dict[Location, list[tuple[float, float, str, int]]]:
    """Per location: list of (start, end, region, depth) intervals."""
    open_stacks: dict[Location, list[tuple[str, float]]] = {}
    intervals: dict[Location, list[tuple[float, float, str, int]]] = {}
    last_time: dict[Location, float] = {}
    for event in events:
        if isinstance(event, Enter):
            open_stacks.setdefault(event.loc, []).append(
                (event.region, event.time)
            )
        elif isinstance(event, Exit):
            stack = open_stacks.get(event.loc, [])
            if stack and stack[-1][0] == event.region:
                region, start = stack.pop()
                intervals.setdefault(event.loc, []).append(
                    (start, event.time, region, len(stack))
                )
        last_time[event.loc] = max(
            last_time.get(event.loc, 0.0), event.time
        )
    # Close any still-open regions at the location's last event time.
    for loc, stack in open_stacks.items():
        while stack:
            region, start = stack.pop()
            intervals.setdefault(loc, []).append(
                (start, last_time.get(loc, start), region, len(stack))
            )
    return intervals


def render_timeline(
    events: Sequence[Event],
    width: int = 100,
    t_end: float | None = None,
    title: str = "",
) -> str:
    """Render an ASCII timeline of ``events``.

    ``width`` is the number of time buckets; ``t_end`` overrides the
    time-axis end (defaults to the last event time).
    """
    events = sorted(events, key=lambda e: e.time)
    if not events:
        return "(empty trace)\n"
    end = t_end if t_end is not None else max(e.time for e in events)
    if end <= 0:
        end = 1.0
    dt = end / width
    intervals = _interval_lists(events)
    locations = sorted(intervals)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"time axis: 0 .. {end:.6g} s, {width} buckets of {dt:.3g} s"
    )
    for loc in locations:
        # Sort intervals by depth so deeper (innermost) paint last.
        row = [" "] * width
        for start, stop, region, depth in sorted(
            intervals[loc], key=lambda iv: iv[3]
        ):
            char = region_char(region)
            first = max(0, min(width - 1, int(start / dt)))
            last = max(0, min(width - 1, int(max(start, stop - 1e-12) / dt)))
            for col in range(first, last + 1):
                row[col] = char
        lines.append(f"{str(loc):>6} |{''.join(row)}|")
    lines.append(
        "legend: = work  M p2p  C collective  B barrier  I init/final"
        "  o omp  $ omp-barrier  u user"
    )
    return "\n".join(lines) + "\n"


def state_at(
    events: Sequence[Event], loc: Location, time: float
) -> str | None:
    """Innermost region active at ``loc`` at ``time`` (None if idle)."""
    best: tuple[int, str] | None = None
    for start, stop, region, depth in _interval_lists(
        sorted(events, key=lambda e: e.time)
    ).get(loc, []):
        if start <= time < stop and (best is None or depth > best[0]):
            best = (depth, region)
    return best[1] if best else None
