"""Worker-pool reuse: bounded OS threads, clean slots after failure.

The pool is process-global, so these tests measure *deltas* (created
workers, parked slots, live threads) rather than absolute values --
other tests in the same session legitimately leave parked workers
behind.
"""

import threading

import pytest

from repro.simkernel import (
    SimulationCrashed,
    Simulator,
    SimError,
    worker_pool,
)


def _run_small_sim(nprocs: int = 4) -> None:
    sim = Simulator()

    def body(i: int) -> int:
        sim.hold(0.001 * (i + 1))
        return i

    for i in range(nprocs):
        sim.spawn(body, i, name=f"p{i}")
    sim.run()


def test_thread_count_bounded_across_100_sims():
    _run_small_sim()  # warm the pool
    before_threads = threading.active_count()
    before_created = worker_pool().created
    for _ in range(100):
        _run_small_sim(nprocs=4)
    # Reuse means no new worker threads at all after warmup: 100 runs
    # x 4 processes ride on the already-parked workers.
    assert worker_pool().created == before_created
    assert threading.active_count() <= before_threads


def test_parked_workers_are_reused_lifo():
    _run_small_sim(nprocs=8)
    created = worker_pool().created
    parked = worker_pool().parked
    for _ in range(5):
        _run_small_sim(nprocs=8)
    assert worker_pool().created == created
    assert worker_pool().parked == parked


def test_crashed_process_returns_clean_slot():
    _run_small_sim()
    created = worker_pool().created
    parked = worker_pool().parked

    sim = Simulator()

    def boom() -> None:
        sim.hold(0.1)
        raise RuntimeError("kaboom")

    def bystander() -> None:
        sim.hold(10.0)

    sim.spawn(boom, name="boom")
    sim.spawn(bystander, name="bystander")
    with pytest.raises(SimulationCrashed):
        sim.run()

    # Both the crashed process's worker and the torn-down bystander's
    # worker must be parked again, reusable by the next simulation.
    assert worker_pool().parked == parked
    assert worker_pool().created == created
    _run_small_sim()
    assert worker_pool().created == created


def test_killed_processes_return_slots_on_dispatch_limit():
    _run_small_sim()
    created = worker_pool().created
    parked = worker_pool().parked

    sim = Simulator()

    def forever() -> None:
        while True:
            sim.hold(1.0)

    for i in range(3):
        sim.spawn(forever, name=f"spin{i}")
    with pytest.raises(SimError):
        sim.run(max_dispatches=10)

    assert worker_pool().parked == parked
    assert worker_pool().created == created
