"""Registry of distribution functions.

The paper allows users to "provide their own distribution functions and
distribution descriptors, as long as ... the signature ... is
equivalent".  The registry makes the available shapes discoverable by
name, which the program generator and the CLI use to expose
distribution choices as command-line options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Type

from .descriptors import (
    DistrDescriptor,
    Val1Distr,
    Val2Distr,
    Val2NDistr,
    Val3Distr,
)
from .functions import (
    DistrFunc,
    df_block2,
    df_block3,
    df_cyclic2,
    df_cyclic3,
    df_linear,
    df_peak,
    df_same,
)


@dataclass(frozen=True)
class DistributionSpec:
    """Metadata describing one registered distribution shape."""

    name: str
    func: DistrFunc
    descriptor_type: Type[DistrDescriptor]
    description: str

    def make_descriptor(self, *args: float) -> DistrDescriptor:
        """Build the matching descriptor from positional parameters."""
        return self.descriptor_type(*args)


_REGISTRY: Dict[str, DistributionSpec] = {}


def register_distribution(
    name: str,
    func: DistrFunc,
    descriptor_type: Type[DistrDescriptor],
    description: str = "",
) -> DistributionSpec:
    """Register a distribution shape under ``name``.

    Raises ``ValueError`` on duplicate names to catch copy-paste errors
    in user extensions.
    """
    if name in _REGISTRY:
        raise ValueError(f"distribution {name!r} already registered")
    spec = DistributionSpec(name, func, descriptor_type, description)
    _REGISTRY[name] = spec
    return spec


def get_distribution(name: str) -> DistributionSpec:
    """Look up a distribution shape; raises ``KeyError`` with candidates."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown distribution {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def list_distributions() -> list[DistributionSpec]:
    """All registered shapes, sorted by name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# The paper's predefined set.
register_distribution(
    "same", df_same, Val1Distr, "everyone gets the same value"
)
register_distribution(
    "cyclic2", df_cyclic2, Val2Distr, "alternate between low and high"
)
register_distribution(
    "block2", df_block2, Val2Distr, "two blocks of low and high"
)
register_distribution(
    "linear", df_linear, Val2Distr, "linear interpolation low -> high"
)
register_distribution(
    "peak", df_peak, Val2NDistr, "participant n gets high, others low"
)
register_distribution(
    "cyclic3", df_cyclic3, Val3Distr, "alternate between low, med, high"
)
register_distribution(
    "block3", df_block3, Val3Distr, "three blocks of low, med, high"
)
