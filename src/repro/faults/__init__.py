"""Deterministic fault injection (the noise model of the test suite).

The paper defines tool correctness over *clean* executions: report
every property a program really has, report nothing for well-tuned
programs.  Real tools never see clean executions -- runs jitter, ranks
straggle, networks add latency, and trace files arrive with dropped,
duplicated or truncated records.  This package turns every existing
single-property program into a family of noisy scenarios:

* :mod:`repro.faults.spec` -- composable, frozen :class:`Perturbation`
  descriptions (rank stragglers, timing jitter, message-latency noise,
  bounded message reorder, record drop/duplicate, mid-file truncation)
  grouped into a :class:`FaultPlan` with linear magnitude scaling
  (``plan.scaled(0)`` is a guaranteed no-op),
* :mod:`repro.faults.inject` -- the runtime :class:`FaultInjector`
  that the simulation kernel, the MPI transport and the trace writer
  consult; every draw comes from a per-domain child stream of the
  run's :class:`~repro.simkernel.rng.Lcg64` seed tree, so a perturbed
  run is exactly as reproducible as a clean one (byte-identical traces
  per ``(seed, plan)``).

The robustness harness in :mod:`repro.validation.robustness` sweeps a
plan's magnitude across the validation matrix and reports per-detector
true-positive / false-positive curves (``ats robustness``).
"""

from .inject import FaultInjector
from .spec import (
    DropRecords,
    DuplicateRecords,
    FaultPlan,
    MessageLatencyNoise,
    MessageReorder,
    Perturbation,
    RankStragglers,
    TimingJitter,
    TruncateTrace,
)

__all__ = [
    "DropRecords",
    "DuplicateRecords",
    "FaultInjector",
    "FaultPlan",
    "MessageLatencyNoise",
    "MessageReorder",
    "Perturbation",
    "RankStragglers",
    "TimingJitter",
    "TruncateTrace",
]
