"""Per-subsystem instrument bundles.

Each runtime layer binds its metrics once, at object construction, by
calling the matching ``*_metrics()`` accessor:

* enabled  -> a small ``__slots__`` bundle of pre-declared (and, for
  labeled families, pre-bound) metric children, cached per registry so
  every simulator / engine / recorder in the process shares one set of
  counters,
* disabled -> ``None``, so hot paths guard with a single
  ``is not None`` branch and never allocate.

Keeping the declarations here -- rather than scattered through the
runtime layers -- gives one place that documents the whole metric
surface, and keeps :mod:`repro.obs.metrics` free of domain knowledge.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    MetricsRegistry,
    get_registry,
    metrics_enabled,
)

__all__ = [
    "AnalysisMetrics",
    "ArchiveMetrics",
    "FaultMetrics",
    "KernelMetrics",
    "OmpMetrics",
    "ResilienceMetrics",
    "ServiceMetrics",
    "StatsMetrics",
    "TraceMetrics",
    "TransportMetrics",
    "analysis_metrics",
    "archive_metrics",
    "fault_metrics",
    "kernel_metrics",
    "omp_metrics",
    "resilience_metrics",
    "service_metrics",
    "stats_metrics",
    "trace_metrics",
    "transport_metrics",
]

#: queue-depth style histograms: small-integer buckets
_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
#: virtual-seconds latency buckets (transport latency is ~5us)
_VSEC_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
#: host wall-clock latency buckets for service endpoints; the fine
#: 1-50ms region is where warm-cache analyzes land, and the service
#: bench derives its p99 bar from these edges
_WALL_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def _bundle(key: str, factory):
    """Cached per-registry bundle, or ``None`` while metrics are off."""
    if not metrics_enabled():
        return None
    registry = get_registry()
    bundle = registry._bundles.get(key)
    if bundle is None:
        bundle = registry._bundles[key] = factory(registry)
    return bundle


# ----------------------------------------------------------------------
# simkernel
# ----------------------------------------------------------------------

class KernelMetrics:
    """Scheduler and worker-pool metrics (one bundle per registry)."""

    __slots__ = (
        "dispatches",
        "continuations",
        "handoffs",
        "queue_depth",
        "processes",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.dispatches = reg.counter(
            "ats_sim_dispatches_total",
            "Scheduler dispatch steps across all simulators",
        )
        self.continuations = reg.counter(
            "ats_sim_direct_continuations_total",
            "Dispatches resolved on the same thread (zero handoffs)",
        )
        self.handoffs = reg.counter(
            "ats_sim_handoffs_total",
            "Dispatches that woke another worker thread (lock handoff)",
        )
        self.queue_depth = reg.histogram(
            "ats_sim_run_queue_depth",
            "Runnable entries (FIFO + heap) observed at each dispatch",
            buckets=_DEPTH_BUCKETS,
        )
        self.processes = reg.counter(
            "ats_sim_processes_total",
            "Simulated processes spawned",
        )
        reg.register_collector(_collect_worker_pool)


def _collect_worker_pool(reg: MetricsRegistry) -> None:
    """Harvest the process-global worker pool's plain-int counters."""
    from ..simkernel.process import worker_pool

    pool = worker_pool()
    reg.counter(
        "ats_workers_spawned_total", "Worker OS threads ever created"
    ).set_total(pool.created)
    reg.counter(
        "ats_workers_reused_total",
        "Process dispatches served by a recycled pooled worker",
    ).set_total(pool.reused)
    reg.gauge(
        "ats_workers_parked", "Currently parked (idle, reusable) workers"
    ).set(pool.parked)


def kernel_metrics() -> Optional[KernelMetrics]:
    return _bundle("kernel", KernelMetrics)


# ----------------------------------------------------------------------
# simmpi transport
# ----------------------------------------------------------------------

class TransportMetrics:
    """Point-to-point transport metrics."""

    __slots__ = (
        "msg_eager",
        "msg_rendezvous",
        "bytes",
        "match_posted",
        "match_unexpected",
        "posted_queue",
        "unexpected_queue",
        "match_latency",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        messages = reg.counter(
            "ats_mpi_messages_total",
            "Point-to-point messages posted, by protocol",
            labelnames=("protocol",),
        )
        self.msg_eager = messages.labels(protocol="eager")
        self.msg_rendezvous = messages.labels(protocol="rendezvous")
        self.bytes = reg.counter(
            "ats_mpi_bytes_total", "Payload bytes delivered"
        )
        matches = reg.counter(
            "ats_mpi_matches_total",
            "Completed matches, by which side was posted first",
            labelnames=("order",),
        )
        self.match_posted = matches.labels(order="posted")
        self.match_unexpected = matches.labels(order="unexpected")
        self.posted_queue = reg.histogram(
            "ats_mpi_posted_queue_length",
            "Posted-receive queue length after an unmatched recv post",
            buckets=_DEPTH_BUCKETS,
        )
        self.unexpected_queue = reg.histogram(
            "ats_mpi_unexpected_queue_length",
            "Unexpected-message queue length after an unmatched send",
            buckets=_DEPTH_BUCKETS,
        )
        self.match_latency = reg.histogram(
            "ats_mpi_match_latency_seconds",
            "Virtual seconds between send post and envelope match",
            buckets=_VSEC_BUCKETS,
        )


def transport_metrics() -> Optional[TransportMetrics]:
    return _bundle("transport", TransportMetrics)


# ----------------------------------------------------------------------
# simomp
# ----------------------------------------------------------------------

class OmpMetrics:
    """OpenMP team fork/join and barrier metrics."""

    __slots__ = ("forks", "joins", "barrier_waits", "barrier_wait_seconds")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.forks = reg.counter(
            "ats_omp_teams_forked_total", "Parallel-region teams forked"
        )
        self.joins = reg.counter(
            "ats_omp_teams_joined_total", "Parallel-region teams joined"
        )
        self.barrier_waits = reg.counter(
            "ats_omp_barrier_waits_total",
            "Per-thread team-barrier arrivals (explicit and implicit)",
        )
        self.barrier_wait_seconds = reg.histogram(
            "ats_omp_barrier_wait_seconds",
            "Virtual seconds each thread waited at a team barrier",
            buckets=_VSEC_BUCKETS,
        )


def omp_metrics() -> Optional[OmpMetrics]:
    return _bundle("omp", OmpMetrics)


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------

class TraceMetrics:
    """Recorder and writer metrics.

    Event counts and interning statistics are *harvested* from the
    recorder's plain-int bookkeeping when a run finishes
    (:meth:`harvest_recorder`), so the per-event recording path carries
    no metric code at all.
    """

    __slots__ = (
        "events",
        "intern_requests",
        "intern_entries",
        "writer_flushes",
        "writer_lines",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.events = reg.counter(
            "ats_trace_events_total",
            "Trace events recorded, by event kind",
            labelnames=("kind",),
        )
        self.intern_requests = reg.counter(
            "ats_trace_intern_requests_total",
            "Call-path intern lookups (hit rate = 1 - entries/requests)",
        )
        self.intern_entries = reg.counter(
            "ats_trace_intern_entries_total",
            "Distinct interned call-path tuples",
        )
        self.writer_flushes = reg.counter(
            "ats_trace_writer_flushes_total",
            "TraceWriter buffer drains to the file",
        )
        self.writer_lines = reg.counter(
            "ats_trace_writer_lines_total",
            "Serialized lines written by TraceWriter drains",
        )

    def harvest_recorder(self, recorder) -> None:
        """Fold one finished recorder's bookkeeping into the registry."""
        kinds: dict[str, int] = {}
        for event in recorder.events:
            kind = event.kind
            kinds[kind] = kinds.get(kind, 0) + 1
        for kind, count in kinds.items():
            self.events.labels(kind=kind).inc(count)
        self.intern_requests.inc(recorder.intern_requests)
        self.intern_entries.inc(len(recorder._interned))


def trace_metrics() -> Optional[TraceMetrics]:
    return _bundle("trace", TraceMetrics)


# ----------------------------------------------------------------------
# faults
# ----------------------------------------------------------------------

class FaultMetrics:
    """Fault-injection activity counters (see :mod:`repro.faults`)."""

    __slots__ = (
        "holds_jittered",
        "jitter_seconds",
        "straggler_seconds",
        "latency_noise_seconds",
        "messages_reordered",
        "records_dropped",
        "records_duplicated",
        "truncations",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.holds_jittered = reg.counter(
            "ats_fault_holds_jittered_total",
            "Scheduler holds perturbed by timing jitter",
        )
        self.jitter_seconds = reg.counter(
            "ats_fault_jitter_seconds_total",
            "Absolute virtual seconds of timing jitter applied",
        )
        self.straggler_seconds = reg.counter(
            "ats_fault_straggler_seconds_total",
            "Extra virtual seconds added to straggler-rank holds",
        )
        self.latency_noise_seconds = reg.counter(
            "ats_fault_latency_noise_seconds_total",
            "Extra virtual wire seconds added to p2p transfers",
        )
        self.messages_reordered = reg.counter(
            "ats_fault_messages_reordered_total",
            "Unmatched sends displaced in the matching queue",
        )
        self.records_dropped = reg.counter(
            "ats_fault_records_dropped_total",
            "Trace records dropped at write time",
        )
        self.records_duplicated = reg.counter(
            "ats_fault_records_duplicated_total",
            "Trace records written twice at write time",
        )
        self.truncations = reg.counter(
            "ats_fault_trace_truncations_total",
            "Trace files truncated mid-file on close",
        )


def fault_metrics() -> Optional[FaultMetrics]:
    return _bundle("faults", FaultMetrics)


# ----------------------------------------------------------------------
# resilience
# ----------------------------------------------------------------------

class ResilienceMetrics:
    """Supervised-sweep activity: cells, retries, timeouts, quarantines."""

    __slots__ = (
        "cells",
        "retries",
        "timeouts",
        "backoff_seconds",
        "failures",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.cells = reg.counter(
            "ats_resilience_cells_total",
            "Sweep cells resolved, by outcome (ok/failed/resumed)",
            labelnames=("status",),
        )
        self.retries = reg.counter(
            "ats_resilience_retries_total",
            "Cell attempts repeated after a transient failure",
        )
        self.timeouts = reg.counter(
            "ats_resilience_timeouts_total",
            "Cell attempts abandoned at the wall-clock limit",
        )
        self.backoff_seconds = reg.counter(
            "ats_resilience_backoff_seconds_total",
            "Host wall seconds slept in retry backoff",
        )
        self.failures = reg.counter(
            "ats_resilience_failures_total",
            "Cells quarantined, by failure kind",
            labelnames=("kind",),
        )


def resilience_metrics() -> Optional[ResilienceMetrics]:
    return _bundle("resilience", ResilienceMetrics)


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------

class AnalysisMetrics:
    """Analyzer pipeline metrics."""

    __slots__ = (
        "runs",
        "index_build_seconds",
        "detector_seconds",
        "findings",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.runs = reg.counter(
            "ats_analysis_runs_total", "analyze_events invocations"
        )
        self.index_build_seconds = reg.counter(
            "ats_analysis_index_build_seconds_total",
            "Host wall seconds spent building TraceIndex instances",
        )
        self.detector_seconds = reg.counter(
            "ats_analysis_detector_seconds_total",
            "Host wall seconds per detector",
            labelnames=("detector",),
        )
        self.findings = reg.counter(
            "ats_analysis_findings_total",
            "Findings emitted, by performance property",
            labelnames=("property",),
        )


def analysis_metrics() -> Optional[AnalysisMetrics]:
    return _bundle("analysis", AnalysisMetrics)


# ----------------------------------------------------------------------
# service
# ----------------------------------------------------------------------

class ServiceMetrics:
    """Analysis-service instruments (see :mod:`repro.service`).

    Per-endpoint request latency is a labeled histogram over
    ``_WALL_BUCKETS``; ``/status`` and ``BENCH_SERVICE.json`` derive
    p50/p99 from it via :meth:`Histogram.quantile`.  ``queue_depth``
    and ``inflight`` are gauges maintained by the job queue;
    ``coalesced`` counts submissions deduplicated onto an in-flight
    identical job, ``executed`` the jobs that actually computed.
    """

    __slots__ = (
        "requests",
        "request_seconds",
        "queue_depth",
        "inflight",
        "jobs",
        "coalesced",
        "executed",
        "rate_limited",
        "queue_wait_seconds",
        "cache_hits",
        "cache_misses",
        "journal_records",
        "recovered",
        "expired",
        "breaker_transitions",
        "breaker_open_cells",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.requests = reg.counter(
            "ats_service_requests_total",
            "HTTP requests served, by endpoint and status code",
            labelnames=("endpoint", "code"),
        )
        self.request_seconds = reg.histogram(
            "ats_service_request_seconds",
            "Wall-clock request latency, by endpoint",
            labelnames=("endpoint",),
            buckets=_WALL_BUCKETS,
        )
        self.queue_depth = reg.gauge(
            "ats_service_queue_depth",
            "Jobs waiting in the work queue",
        )
        self.inflight = reg.gauge(
            "ats_service_inflight_jobs",
            "Jobs currently executing on pooled workers",
        )
        self.jobs = reg.counter(
            "ats_service_jobs_total",
            "Jobs resolved, by kind and final status",
            labelnames=("kind", "status"),
        )
        self.coalesced = reg.counter(
            "ats_service_coalesced_total",
            "Submissions coalesced onto an identical in-flight job",
        )
        self.executed = reg.counter(
            "ats_service_jobs_executed_total",
            "Jobs that actually ran a computation (coalescing primary)",
        )
        self.rate_limited = reg.counter(
            "ats_service_rate_limited_total",
            "Submissions rejected 429 by the per-tenant token bucket",
            labelnames=("tenant",),
        )
        self.queue_wait_seconds = reg.histogram(
            "ats_service_queue_wait_seconds",
            "Wall-clock time jobs spent queued before execution",
            buckets=_WALL_BUCKETS,
        )
        self.cache_hits = reg.counter(
            "ats_service_cache_hits_total",
            "Archive analysis-cache hits accumulated across jobs",
        )
        self.cache_misses = reg.counter(
            "ats_service_cache_misses_total",
            "Archive analysis-cache misses accumulated across jobs",
        )
        self.journal_records = reg.counter(
            "ats_service_journal_records_total",
            "State transitions appended to the durable job journal",
        )
        self.recovered = reg.counter(
            "ats_service_recovered_jobs_total",
            "Jobs replayed from the journal at restart, by outcome",
            labelnames=("outcome",),
        )
        self.expired = reg.counter(
            "ats_service_expired_jobs_total",
            "Queued jobs cancelled because their client deadline passed",
        )
        self.breaker_transitions = reg.counter(
            "ats_service_breaker_transitions_total",
            "Circuit-breaker state transitions, by new state",
            labelnames=("state",),
        )
        self.breaker_open_cells = reg.gauge(
            "ats_service_breaker_open_cells",
            "Executor cells currently evicted (open or half-open)",
        )


def service_metrics() -> Optional[ServiceMetrics]:
    return _bundle("service", ServiceMetrics)


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------

class StatsMetrics:
    """Statistical-analysis pipeline metrics (see :mod:`repro.stats`).

    Feature extraction and clustering are the two stages of every
    similarity detection; dataset export additionally counts the
    (features, labels) rows it emits so an export job's cost is
    visible on ``ats metrics``.
    """

    __slots__ = (
        "feature_seconds",
        "feature_rows",
        "cluster_seconds",
        "export_rows",
        "export_runs",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.feature_seconds = reg.counter(
            "ats_stats_feature_seconds_total",
            "Host wall seconds spent deriving behavior vectors",
        )
        self.feature_rows = reg.counter(
            "ats_stats_feature_rows_total",
            "Behavior vectors (ranks or locations) derived",
        )
        self.cluster_seconds = reg.counter(
            "ats_stats_cluster_seconds_total",
            "Host wall seconds spent in similarity clustering",
        )
        self.export_rows = reg.counter(
            "ats_stats_export_rows_total",
            "Dataset rows emitted by ats export dataset",
        )
        self.export_runs = reg.counter(
            "ats_stats_export_runs_total",
            "Archived runs joined into exported datasets",
        )


def stats_metrics() -> Optional[StatsMetrics]:
    return _bundle("stats", StatsMetrics)


# ----------------------------------------------------------------------
# archive
# ----------------------------------------------------------------------

class ArchiveMetrics:
    """Trace-archive and analysis-cache activity (see :mod:`repro.archive`).

    ``hits``/``misses`` are labeled by cache stage: ``detector`` (one
    per detector cell), ``meta`` (the per-trace summary record) and
    ``trace`` (blob deduplication on archive writes).
    """

    __slots__ = (
        "hits",
        "misses",
        "runs_archived",
        "blob_bytes",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.hits = reg.counter(
            "ats_archive_hits_total",
            "Archive cache lookups served from stored blobs, by stage",
            labelnames=("stage",),
        )
        self.misses = reg.counter(
            "ats_archive_misses_total",
            "Archive cache lookups that required recomputation, by stage",
            labelnames=("stage",),
        )
        self.runs_archived = reg.counter(
            "ats_archive_runs_total",
            "Runs recorded into an archive manifest",
        )
        self.blob_bytes = reg.counter(
            "ats_archive_blob_bytes_total",
            "Compressed bytes written to archive object stores",
        )


def archive_metrics() -> Optional[ArchiveMetrics]:
    return _bundle("archive", ArchiveMetrics)
