#!/usr/bin/env python
"""Execution-core scaling benchmark.

Sweeps the simulation core over growing rank counts in two shapes --
MPI-only (the figure 3.3 chain) and hybrid MPI+OpenMP (fork/join-heavy,
one OpenMP team forked per rank per step) -- and records wall-clock
time, events/sec and dispatches/sec per configuration.  Results are
written to ``BENCH_CORE.json`` at the repository root so successive
PRs accumulate a perf trajectory for the execution core.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_core.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_perf_core.py --quick    # CI smoke

Also usable as a before/after harness: ``--label before`` merges the
measurement under a distinct key instead of overwriting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    get_property,
    run_all_mpi_properties,
    run_hybrid_composite,
)

OUT_PATH = REPO_ROOT / "BENCH_CORE.json"

#: MPI steps for the hybrid shape -- cheap, communication-light, so the
#: measurement is dominated by fork/join and scheduler dispatch costs.
HYBRID_MPI_STEPS = ("imbalance_at_mpi_barrier", "late_broadcast")
#: OpenMP steps for the hybrid shape -- every step forks a fresh team
#: on every rank, which is exactly the thread-churn hot path.
HYBRID_OMP_STEPS = (
    "imbalance_in_omp_pregion",
    "imbalance_in_omp_loop",
    "imbalance_at_omp_barrier",
    "imbalance_at_omp_single",
)


def _measure(fn, repeats: int):
    """Best-of-``repeats`` wall time plus run statistics."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    sim = result.world.sim if getattr(result, "world", None) else None
    dispatches = sim.dispatch_count if sim is not None else 0
    events = len(result.recorder.events) if result.recorder else 0
    return {
        "wall_s": round(best, 6),
        "events": events,
        "dispatches": dispatches,
        "events_per_s": round(events / best) if best else 0,
        "dispatches_per_s": round(dispatches / best) if best else 0,
        "final_time": round(result.final_time, 9),
    }


def run_sweep(sizes, num_threads: int, repeats: int) -> dict:
    rows = []
    for size in sizes:
        mpi = _measure(
            lambda size=size: run_all_mpi_properties(size=size), repeats
        )
        hybrid = _measure(
            lambda size=size: run_hybrid_composite(
                HYBRID_MPI_STEPS,
                HYBRID_OMP_STEPS,
                size=size,
                num_threads=num_threads,
            ),
            repeats,
        )
        row = {"size": size, "mpi_only": mpi, "hybrid": hybrid}
        rows.append(row)
        print(
            f"size={size:>3}  mpi: {mpi['wall_s']*1000:8.1f} ms "
            f"({mpi['events_per_s']:>8} ev/s)   "
            f"hybrid: {hybrid['wall_s']*1000:8.1f} ms "
            f"({hybrid['dispatches_per_s']:>8} disp/s)"
        )
    return {
        "sizes": list(sizes),
        "num_threads": num_threads,
        "repeats": repeats,
        "rows": rows,
    }


#: the kilo-rank shape: one barrier-heavy SPMD program at 1024 ranks.
#: A single property (not the full MPI chain) keeps the measurement
#: focused on scheduler throughput at scale rather than chain length.
KILO_PROGRAM = "imbalance_at_mpi_barrier"
KILO_SIZE = 1024

#: the parallel-sweep shape: a small robustness grid, serial vs forked.
SWEEP_PROGRAMS = (
    "imbalance_at_mpi_barrier",
    "late_broadcast",
    "late_sender",
    "balanced_mpi_barrier",
)


def run_kilo(repeats: int, size: int = KILO_SIZE) -> dict:
    """Single-process kilo-rank throughput (the size-1024 row)."""
    spec = get_property(KILO_PROGRAM)
    best = None
    run = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = spec.run(size=size, num_threads=2, seed=0)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    events = len(run.events)
    row = {
        "program": KILO_PROGRAM,
        "size": size,
        "scheduler": os.environ.get("ATS_SCHEDULER", "calendar"),
        "wall_s": round(best, 6),
        "events": events,
        "events_per_s": round(events / best) if best else 0,
        "ranks_per_s": round(size / best, 1) if best else 0.0,
        "final_time": round(run.final_time, 9),
    }
    print(
        f"kilo size={size}  {row['wall_s']*1000:8.1f} ms "
        f"({row['events_per_s']:>8} ev/s, {row['ranks_per_s']:>7} ranks/s)"
    )
    return row


def run_parallel_sweep(workers: int = 0) -> dict:
    """Serial vs forked robustness sweep over one small grid.

    Records the measured speedup together with the host's CPU count --
    the bench guard tiers its expectation on ``cpus``, because a ≥2x
    fork speedup is physically impossible on a single-core runner.
    Also asserts the two artifacts are byte-identical, so the committed
    speedup number always describes equivalent work.
    """
    from repro.validation.robustness import run_robustness

    cpus = os.cpu_count() or 1
    if workers < 1:
        workers = min(4, max(2, cpus))
    specs = [get_property(name) for name in SWEEP_PROGRAMS]
    # size 48 makes each cell ~100ms of pure-Python simulation, large
    # enough that the one-time fork cost (interpreter copy, worker
    # threads, result pipe) is noise against the work it parallelizes.
    kw = dict(
        specs=specs,
        magnitudes=(0.0, 0.7),
        seeds=(0, 1),
        size=48,
        num_threads=2,
    )
    t0 = time.perf_counter()
    serial = run_robustness(**kw)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_robustness(**kw, workers=workers)
    parallel_s = time.perf_counter() - t0
    if serial.to_json_str() != parallel.to_json_str():
        raise AssertionError(
            "parallel robustness artifact diverged from serial"
        )
    row = {
        "programs": list(SWEEP_PROGRAMS),
        "cells": len(serial.cells),
        "workers": workers,
        "cpus": cpus,
        "serial_wall_s": round(serial_s, 6),
        "parallel_wall_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
    }
    print(
        f"sweep {row['cells']} cells  serial {serial_s*1000:8.1f} ms  "
        f"forked(x{workers}) {parallel_s*1000:8.1f} ms  "
        f"speedup {row['speedup']:.2f}x on {cpus} cpu(s)"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny parameters for CI smoke runs (no BENCH_CORE.json write)",
    )
    parser.add_argument(
        "--label", default="current",
        help="key to store this measurement under (e.g. before/current)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker count for the parallel-sweep section "
        "(0 = min(4, cpus))",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.quick:
        sweep = run_sweep(sizes=(4,), num_threads=2, repeats=1)
        run_kilo(repeats=1, size=128)
        run_parallel_sweep(workers=2)
        print("quick smoke ok")
        return 0

    sweep = run_sweep(sizes=(4, 8, 16, 32, 64), num_threads=4,
                      repeats=args.repeats)
    sweep["kilo"] = run_kilo(repeats=args.repeats)
    sweep["parallel_sweep"] = run_parallel_sweep(workers=args.workers)

    existing = {}
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text())
    existing[args.label] = sweep
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    before = existing.get("before")
    if before and args.label != "before":
        for b_row, c_row in zip(before["rows"], sweep["rows"]):
            if b_row["size"] != c_row["size"]:
                continue
            speedup = (
                b_row["hybrid"]["wall_s"] / c_row["hybrid"]["wall_s"]
                if c_row["hybrid"]["wall_s"] else float("inf")
            )
            print(f"size={b_row['size']:>3} hybrid speedup vs before: "
                  f"{speedup:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
