"""Analysis-as-a-service: the async job server behind ``ats serve``.

Everything the rest of the test suite does in-process -- execute a
property function, analyze an archived trace, diff two runs, sweep a
validation campaign -- becomes an **asynchronous job** submitted over
HTTP, queued, executed on the shared pooled workers, and observable
while it runs.  The layers, bottom up:

* :mod:`~repro.service.ratelimit` -- per-tenant token buckets (429 +
  ``Retry-After`` for over-budget tenants);
* :mod:`~repro.service.jobs` -- the :class:`Job` model, coalescing
  keys, and :class:`CampaignProgress` (Supervisor events -> live
  counters);
* :mod:`~repro.service.server` -- :class:`AnalysisService`: the work
  queue, request coalescing on ``(trace digest, detector
  fingerprint)``, graceful drain, and end-to-end request tracing into
  obs spans;
* :mod:`~repro.service.http` -- the stdlib asyncio HTTP front end
  (``/submit-run``, ``/analyze``, ``/diff``, ``/campaign``,
  ``/history``, ``/jobs/<id>``, ``/status``, ``/dashboard``,
  ``/metrics``, ``/metrics.json``, ``/drain``);
* :mod:`~repro.service.dashboard` -- the ``ats watch`` terminal view
  and the self-refreshing HTML status page;
* :mod:`~repro.service.client` -- the urllib client the CLI, bench
  and tests use.

Durability (``--state-dir``): :mod:`~repro.service.journal` appends
every accepted job and state transition to an fsync'd journal;
:meth:`AnalysisService._recover` replays it after a restart (restore
terminal jobs, requeue interrupted ones through the checkpoint/resume
path, orphan the unresolvable); :mod:`~repro.service.breaker` evicts
executor cells that crash repeatedly.  See ``docs/SERVICE.md`` and
``docs/CHAOS.md``.
"""

from .breaker import BreakerOpen, CircuitBreaker
from .client import ServiceClient, ServiceHTTPError, ServiceUnreachable
from .dashboard import render_html, render_watch
from .http import ServiceHTTP, ServiceHandle, run_service_in_thread
from .jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    CampaignProgress,
    Job,
)
from .journal import ServiceJournal, ServiceJournalError
from .ratelimit import RateLimiter, TokenBucket
from .server import (
    AnalysisService,
    JobError,
    RateLimited,
    ServiceDraining,
)

__all__ = [
    "AnalysisService",
    "BreakerOpen",
    "CampaignProgress",
    "CircuitBreaker",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobError",
    "RateLimited",
    "RateLimiter",
    "ServiceClient",
    "ServiceDraining",
    "ServiceHTTP",
    "ServiceHTTPError",
    "ServiceHandle",
    "ServiceJournal",
    "ServiceJournalError",
    "ServiceUnreachable",
    "TERMINAL_STATES",
    "TokenBucket",
    "render_html",
    "render_watch",
    "run_service_in_thread",
]
