"""OpenMP lock API tests."""

import pytest

from repro.analysis import analyze_run
from repro.simkernel import SimulationCrashed, current_process
from repro.simomp import OmpLock, omp_get_thread_num, omp_parallel, run_omp
from repro.work import do_work


def test_lock_serializes_holders():
    lock = OmpLock("zone")
    spans = []

    def body():
        with lock:
            start = current_process().sim.now
            do_work(0.01)
            spans.append((start, current_process().sim.now))

    run_omp(lambda: omp_parallel(body, num_threads=4))
    spans.sort()
    for (_, e1), (s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-12


def test_lock_set_unset_explicit():
    lock = OmpLock()
    acquired = []

    def body():
        lock.set()
        acquired.append(omp_get_thread_num())
        do_work(0.001)
        lock.unset()

    run_omp(lambda: omp_parallel(body, num_threads=3))
    assert sorted(acquired) == [0, 1, 2]


def test_lock_test_nonblocking():
    outcomes = {}

    def body():
        me = omp_get_thread_num()
        if me == 0:
            lock.set()
            do_work(0.05)
            lock.unset()
        else:
            do_work(0.01)  # while 0 holds it
            outcomes["while_held"] = lock.test()
            do_work(0.1)   # after 0 released it
            outcomes["after_release"] = lock.test()
            if outcomes["after_release"]:
                lock.unset()

    lock = OmpLock()
    run_omp(lambda: omp_parallel(body, num_threads=2))
    assert outcomes == {"while_held": False, "after_release": True}


def test_unset_without_holding_is_error():
    lock = OmpLock()

    def body():
        lock.unset()

    with pytest.raises(SimulationCrashed):
        run_omp(lambda: omp_parallel(body, num_threads=1))


def test_lock_contention_detected():
    lock = OmpLock("hot")

    def body():
        for _ in range(3):
            with lock:
                do_work(0.005)

    result = run_omp(lambda: omp_parallel(body, num_threads=4))
    analysis = analyze_run(result)
    assert "omp_lock_contention" in analysis.detected(0.05)
    # waits happen on the threads that queue, inside omp_lock regions
    (path, _), *_ = list(
        analysis.callpaths_of("omp_lock_contention").items()
    )
    assert path[-1] == "omp_lock"


def test_uncontended_lock_is_silent():
    def body():
        me = omp_get_thread_num()
        lock = OmpLock(f"private{me}")  # one lock per thread
        for _ in range(3):
            with lock:
                do_work(0.005)

    result = run_omp(lambda: omp_parallel(body, num_threads=4))
    analysis = analyze_run(result)
    assert analysis.severity(property="omp_lock_contention") < 0.001
