"""Scoring with the statistical family: class recall, taxonomy rows."""

import pytest

from repro.synth import (
    CampaignSpec,
    run_campaign,
    score_campaign_json,
    score_cells,
    score_result,
)

FAMILIES = ("rule", "similarity")


def _cell(expected, detected, allowed=(), bands=None, error=None):
    return {
        "manifest": {
            "expected": list(expected),
            "allowed": list(allowed),
            "severity_bands": dict(bands or {}),
        },
        "detected": list(detected),
        "error": error,
    }


def test_rule_only_report_has_no_statistical_sections():
    report = score_cells(
        [_cell(["late_sender"], ["late_sender"])],
        families=("rule",),
    )
    assert report.classes == ()
    assert all(
        b.statistical_detections is None for b in report.bands
    )
    assert "classes" not in report.to_json_dict()


def test_statistical_sections_from_families_provenance():
    cells = [
        _cell(
            ["late_sender"],
            ["late_sender", "similarity_rank_outlier"],
            bands={"late_sender": "high"},
        ),
        _cell(["wait_at_barrier"], [], bands={"wait_at_barrier": "low"}),
    ]
    report = score_cells(cells, families=FAMILIES)
    classes = {c.behavior_class: c for c in report.classes}
    assert classes["straggler"].rule_detections == 1
    assert classes["straggler"].statistical_detections == 1
    assert classes["imbalance"].rule_detections == 0
    assert classes["imbalance"].statistical_detections == 0
    bands = {b.band: b for b in report.bands}
    assert bands["high"].statistical_detections == 1
    assert bands["low"].statistical_detections == 0


def test_statistical_pids_graded_through_taxonomy():
    cells = [
        # obliged and fired: TP
        _cell(["late_sender"], ["similarity_rank_outlier"]),
        # pathological cell, stat pid quiet: tolerated, not an FN/TN
        _cell(["io_bound"], []),
        # clean cell, stat pid fired: an honest FP
        _cell([], ["similarity_rank_outlier"]),
    ]
    report = score_cells(cells, families=FAMILIES)
    row = next(
        d for d in report.detectors
        if d.property == "similarity_rank_outlier"
    )
    assert (row.tp, row.fn, row.fp, row.tn) == (1, 0, 1, 0)


def test_inference_from_detected_pids_without_provenance():
    cells = [_cell(["late_sender"], ["similarity_rank_outlier"])]
    assert score_cells(cells).classes  # inferred statistical
    assert not score_cells(
        [_cell(["late_sender"], ["late_sender"])]
    ).classes


def test_campaign_with_families_scores_nonzero_statistical_recall():
    spec = CampaignSpec(
        name="score-fam", scenarios=8, sizes=(8,), seed=7
    )
    result = run_campaign(spec, families=FAMILIES)
    assert result.families == FAMILIES
    report = score_result(result)
    assert report.classes
    covered = {
        c.behavior_class: c
        for c in report.classes
        if c.behavior_class in ("imbalance", "straggler")
    }
    assert covered
    assert any(
        c.statistical_recall and c.statistical_recall > 0
        for c in covered.values()
    )
    # the JSON artifact round-trips the family provenance
    payload = result.to_json_dict()
    assert payload["families"] == list(FAMILIES)
    again = score_campaign_json(payload)
    assert again.to_json_str() == report.to_json_str()
    # table renders the statistical columns
    table = report.format_table()
    assert "stat" in table and "class" in table


def test_format_table_mentions_classes():
    report = score_cells(
        [
            _cell(
                ["late_sender"],
                ["late_sender", "similarity_rank_outlier"],
                bands={"late_sender": "high"},
            )
        ],
        families=FAMILIES,
    )
    table = report.format_table()
    assert "class straggler" in table
    assert "stat" in table


def test_errored_cells_counted():
    report = score_cells(
        [_cell(["late_sender"], [], error="boom")],
        families=("rule",),
    )
    assert report.errors == 1
