"""Tests for the trace recorder, event model and call paths."""

import pytest

from repro.trace import (
    CollExit,
    Enter,
    Exit,
    Location,
    Recv,
    Send,
    TraceError,
    TraceRecorder,
    event_from_dict,
)


L0 = Location(0, 0)
L1 = Location(1, 0)


def test_enter_exit_builds_call_paths():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "main")
    rec.enter(1.0, L0, "phase")
    rec.enter(2.0, L0, "MPI_Send")
    assert rec.path_of(L0) == ("main", "phase", "MPI_Send")
    rec.exit(3.0, L0, "MPI_Send")
    rec.exit(4.0, L0, "phase")
    assert rec.path_of(L0) == ("main",)
    rec.exit(5.0, L0, "main")
    enters = [e for e in rec.events if isinstance(e, Enter)]
    assert enters[2].path == ("main", "phase", "MPI_Send")


def test_stacks_are_per_location():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "a")
    rec.enter(0.0, L1, "b")
    assert rec.path_of(L0) == ("a",)
    assert rec.path_of(L1) == ("b",)


def test_unbalanced_exit_raises():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "a")
    with pytest.raises(TraceError):
        rec.exit(1.0, L0, "wrong")
    with pytest.raises(TraceError):
        rec.exit(1.0, L1, "a")


def test_finish_detects_dangling_regions():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "a")
    with pytest.raises(TraceError, match="unbalanced"):
        rec.finish()


def test_finish_passes_when_balanced():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "a")
    rec.exit(1.0, L0, "a")
    rec.finish()


def test_disabled_recorder_records_nothing():
    rec = TraceRecorder()
    rec.enabled = False
    rec.enter(0.0, L0, "a")
    rec.send(0.0, L0, peer=1, tag=0, comm_id=0, nbytes=4, msg_id=1)
    assert len(rec) == 0


def test_send_recv_events_capture_envelope():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "main")
    msg = rec.new_msg_id()
    rec.send(1.0, L0, peer=1, tag=7, comm_id=3, nbytes=64, msg_id=msg)
    rec.recv(
        2.0, L1, peer=0, tag=7, comm_id=3, nbytes=64, msg_id=msg,
        post_time=0.5,
    )
    send = next(e for e in rec.events if isinstance(e, Send))
    recv = next(e for e in rec.events if isinstance(e, Recv))
    assert send.msg_id == recv.msg_id == msg
    assert send.path == ("main",)
    assert recv.post_time == 0.5
    rec.exit(3.0, L0, "main")


def test_msg_ids_are_unique():
    rec = TraceRecorder()
    ids = {rec.new_msg_id() for _ in range(100)}
    assert len(ids) == 100


def test_coll_exit_event_carries_metadata():
    rec = TraceRecorder()
    rec.coll_exit(
        5.0, L0, op="MPI_Bcast", comm_id=2, instance=4, root=1,
        enter_time=3.0, bytes_sent=128,
    )
    (event,) = rec.events
    assert isinstance(event, CollExit)
    assert event.op == "MPI_Bcast"
    assert event.enter_time == 3.0
    assert event.root == 1


def test_comm_registry():
    rec = TraceRecorder()
    rec.register_comm(5, [2, 3, 4])
    assert rec.comm_registry[5] == (2, 3, 4)


def test_locations_sorted():
    rec = TraceRecorder()
    rec.enter(0.0, L1, "a")
    rec.enter(0.0, L0, "b")
    assert rec.locations() == [L0, L1]


def test_negative_intrusion_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(intrusion_per_event=-1.0)


# ----------------------------------------------------------------------
# event serialization round trips
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "event",
    [
        Enter(1.5, L0, "region", ("a", "region")),
        Exit(2.5, L1, "region", ("a", "region")),
        Send(1.0, L0, peer=3, tag=9, comm_id=1, nbytes=44, msg_id=7,
             path=("m",), internal=True),
        Recv(2.0, L1, peer=0, tag=9, comm_id=1, nbytes=44, msg_id=7,
             post_time=1.5, path=("m",)),
        CollExit(3.0, L0, op="MPI_Barrier", comm_id=0, instance=2,
                 root=-1, enter_time=2.0, path=("m",)),
    ],
)
def test_event_dict_round_trip(event):
    assert event_from_dict(event.to_dict()) == event


def test_event_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown event kind"):
        event_from_dict({"kind": "bogus", "time": 0.0, "loc": "0.0"})


def test_location_parse_and_str_round_trip():
    loc = Location(7, 3)
    assert Location.parse(str(loc)) == loc
    assert Location.parse("4") == Location(4, 0)
