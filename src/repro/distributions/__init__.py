"""Generic work/data distributions (paper section 3.1.2).

A distribution is the pair of a *distribution function* and a
*distribution descriptor*.  The function maps ``(me, sz, scale,
descriptor)`` -- participant rank, group size, scale factor, parameters
-- to the amount of work (seconds) or data (elements) assigned to the
participant.  ATS uses these to parameterize the *severity* and *shape*
of every imbalance-style performance property.
"""

from .descriptors import (
    DistrDescriptor,
    Val1Distr,
    Val2Distr,
    Val2NDistr,
    Val3Distr,
)
from .functions import (
    DistrFunc,
    df_block2,
    df_block3,
    df_cyclic2,
    df_cyclic3,
    df_linear,
    df_peak,
    df_same,
)
from .registry import (
    DistributionSpec,
    get_distribution,
    list_distributions,
    register_distribution,
)

__all__ = [
    "DistrDescriptor",
    "DistrFunc",
    "DistributionSpec",
    "Val1Distr",
    "Val2Distr",
    "Val2NDistr",
    "Val3Distr",
    "df_block2",
    "df_block3",
    "df_cyclic2",
    "df_cyclic3",
    "df_linear",
    "df_peak",
    "df_same",
    "get_distribution",
    "list_distributions",
    "register_distribution",
]
