"""Chaos harness: report plumbing, tail surgery, one real battery."""

import json

import pytest

from repro.chaos.harness import (
    ChaosReport,
    ChaosRunResult,
    _tear_journal_tail,
    _workload_params,
    run_chaos_battery,
)
from repro.chaos.spec import ChaosPlan, TornJournalTail, mixed_plans


class TestReport:
    def _result(self, index=0, violations=()):
        return ChaosRunResult(
            index=index,
            seed=7,
            plan="kill_server",
            violations=list(violations),
            acknowledged=4,
            duration=1.5,
        )

    def test_ok_iff_no_violations(self):
        report = ChaosReport(seed=7, results=[self._result()])
        assert report.ok
        report.results.append(
            self._result(index=1, violations=["job lost"])
        )
        assert not report.ok
        assert len(report.failures) == 1

    def test_to_dict_is_json_safe(self):
        report = ChaosReport(seed=7, results=[self._result()])
        wire = json.loads(json.dumps(report.to_dict()))
        assert wire["format"] == "ats-chaos-report"
        assert wire["ok"] is True
        assert wire["results"][0]["acknowledged"] == 4

    def test_format_lists_violations(self):
        report = ChaosReport(
            seed=7,
            results=[self._result(violations=["acked job vanished"])],
        )
        text = report.format()
        assert "1 FAILED" in text
        assert "violation: acked job vanished" in text

    def test_format_all_ok(self):
        report = ChaosReport(seed=7, results=[self._result()])
        assert "ALL INVARIANTS HELD" in report.format()


class TestWorkload:
    def test_derived_from_plan_seed(self):
        a = _workload_params(ChaosPlan(seed=4))
        b = _workload_params(ChaosPlan(seed=4))
        c = _workload_params(ChaosPlan(seed=5))
        assert a == b
        assert a != c


class TestTornTail:
    def _journal(self, tmp_path, records=3):
        state = tmp_path / "state"
        state.mkdir()
        lines = ['{"format": "ats-service-journal", "version": 1}']
        lines += [
            json.dumps({"key": f"job-{i}", "payload": {}})
            for i in range(records)
        ]
        (state / "jobs.jsonl").write_text("\n".join(lines) + "\n")
        return state

    def test_cuts_requested_bytes(self, tmp_path):
        state = self._journal(tmp_path)
        before = (state / "jobs.jsonl").read_bytes()
        note = _tear_journal_tail(state, TornJournalTail(drop_bytes=7))
        after = (state / "jobs.jsonl").read_bytes()
        assert note == "tore 7 byte(s) off the journal tail"
        assert after == before[:-7]

    def test_never_cuts_into_header(self, tmp_path):
        state = self._journal(tmp_path, records=1)
        before = (state / "jobs.jsonl").read_bytes()
        header = before[: before.find(b"\n") + 1]
        _tear_journal_tail(state, TornJournalTail(drop_bytes=10_000))
        after = (state / "jobs.jsonl").read_bytes()
        assert after == header

    def test_missing_journal_is_a_note_not_a_crash(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        note = _tear_journal_tail(state, TornJournalTail())
        assert "skipped" in note


class TestBattery:
    def test_kill_and_recover_end_to_end(self, tmp_path):
        # runs=1 picks family 0 of the mixed battery: a pure SIGKILL
        # mid-workload followed by --recover, the canonical crash
        plans = mixed_plans(3, 1)
        assert [f.kind for f in plans[0].faults] == ["kill_server"]
        report = run_chaos_battery(
            seed=3, runs=1, workdir=tmp_path / "chaos", timeout=120,
            keep=True,
        )
        assert len(report.results) == 1
        result = report.results[0]
        assert result.violations == []
        assert result.acknowledged >= 4
        # the kept workdir carries the JSON report for CI upload
        saved = tmp_path / "chaos" / "chaos-report.json"
        assert saved.exists()
        assert json.loads(saved.read_text())["ok"] is True
