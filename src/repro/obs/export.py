"""Registry exporters: Prometheus text exposition and JSON snapshot.

``to_prometheus`` follows the text exposition format version 0.0.4
(``# HELP``/``# TYPE`` comments, cumulative ``_bucket{le=...}``
histogram samples with ``_sum``/``_count``); ``to_json`` renders the
same data as one machine-readable document, the shape Cankur et al.'s
programmatic-profile-analysis workflow asks for.
"""

from __future__ import annotations

import json
from typing import Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    quantile_from_counts,
)

#: quantiles derived into every histogram's JSON sample; the service's
#: latency reporting and BENCH_SERVICE.json read these same fields
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

__all__ = [
    "SNAPSHOT_QUANTILES",
    "to_json",
    "to_json_str",
    "to_prometheus",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    # Integers render without a trailing .0 (matches prom conventions
    # closely enough and keeps counters diffable across runs).
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(names, values, extra: Optional[tuple] = None) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label(extra[1])}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _prometheus_family(family: MetricFamily, out: list[str]) -> None:
    out.append(f"# HELP {family.name} {_escape_help(family.help)}")
    out.append(f"# TYPE {family.name} {family.type}")
    for labelvalues, child in family.samples():
        if isinstance(child, Histogram):
            counts, total_sum, total = child.snapshot()
            cumulative = 0
            for bound, count in zip(child.boundaries, counts):
                cumulative += count
                labels = _label_str(
                    family.labelnames, labelvalues,
                    extra=("le", _format_value(bound)),
                )
                out.append(f"{family.name}_bucket{labels} {cumulative}")
            labels = _label_str(
                family.labelnames, labelvalues, extra=("le", "+Inf")
            )
            out.append(f"{family.name}_bucket{labels} {total}")
            base = _label_str(family.labelnames, labelvalues)
            out.append(
                f"{family.name}_sum{base} {_format_value(total_sum)}"
            )
            out.append(f"{family.name}_count{base} {total}")
        else:
            labels = _label_str(family.labelnames, labelvalues)
            out.append(
                f"{family.name}{labels} {_format_value(child.value)}"
            )


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry as Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    out: list[str] = []
    for family in registry.collect():
        _prometheus_family(family, out)
    return "\n".join(out) + ("\n" if out else "")


def _json_sample(family: MetricFamily, labelvalues, child) -> dict:
    labels = dict(zip(family.labelnames, labelvalues))
    if isinstance(child, Histogram):
        counts, total_sum, total = child.snapshot()
        return {
            "labels": labels,
            "buckets": {
                _format_value(b): c
                for b, c in zip(child.boundaries, counts)
            },
            "overflow": counts[-1],
            "sum": total_sum,
            "count": total,
            "quantiles": {
                name: quantile_from_counts(
                    child.boundaries, counts, total, q
                )
                for name, q in SNAPSHOT_QUANTILES
            },
        }
    assert isinstance(child, (Counter, Gauge))
    return {"labels": labels, "value": child.value}


def to_json(registry: Optional[MetricsRegistry] = None) -> dict:
    """Render the registry as a JSON-serializable snapshot document."""
    registry = registry if registry is not None else get_registry()
    return {
        "format": "ats-metrics",
        "version": 1,
        "metrics": [
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "samples": [
                    _json_sample(family, lv, child)
                    for lv, child in family.samples()
                ],
            }
            for family in registry.collect()
        ],
    }


def to_json_str(
    registry: Optional[MetricsRegistry] = None, indent: int = 2
) -> str:
    return json.dumps(to_json(registry), indent=indent) + "\n"
