"""Receive status and envelope wildcards."""

from __future__ import annotations

from dataclasses import dataclass

#: match any source rank (``MPI_ANY_SOURCE``)
ANY_SOURCE = -1
#: match any message tag (``MPI_ANY_TAG``)
ANY_TAG = -1
#: null peer: operations against it complete immediately with no data
#: (``MPI_PROC_NULL``), so boundary ranks in halo codes need no special
#: cases
PROC_NULL = -2

#: communication directions for the patterns module (paper 3.1.4)
DIR_UP = "up"
DIR_DOWN = "down"


@dataclass
class Status:
    """Outcome of a completed receive (``MPI_Status``).

    ``source`` and ``tag`` are the actual envelope values (useful after
    wildcard receives); ``count`` is the number of received elements.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0
    nbytes: int = 0
    msg_id: int = -1
