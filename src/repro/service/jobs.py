"""Job model for the analysis service.

A :class:`Job` is one unit of asynchronous work flowing through
:class:`~repro.service.server.AnalysisService`: submitted over HTTP,
queued, executed on a pooled worker thread, and polled (or awaited)
by its submitter.  Jobs carry the request id of the submission that
created them end to end -- the same id shows up in the HTTP response,
the ``/jobs/<id>`` record, and every obs span the job's lifecycle
records.

Coalescing is keyed by :meth:`Job.coalesce_key`: two jobs whose keys
match are *the same computation* -- for an analyze job the key is the
``(trace digest, detector-set fingerprint)`` pair that also keys the
archive's incremental cache, so "identical" here means identical by
construction, not by request text.  The service maps each in-flight
key to its primary job and hands duplicates that job back instead of
queueing a second copy.

:class:`CampaignProgress` adapts :class:`repro.resilience.Supervisor`
progress events into a thread-safe live counter block that ``/status``
and the dashboards render while a campaign is still running.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "CampaignProgress",
    "Job",
    "advance_job_ids",
]

#: every job kind the service executes.
JOB_KINDS = (
    "run", "analyze", "diff", "history", "campaign", "synth", "export",
)

#: lifecycle: queued -> running -> done | failed.  Two further terminal
#: states exist only on the durability path: ``expired`` (a queued
#: job's client deadline passed before a worker picked it up) and
#: ``orphaned`` (a journaled job whose spec could not be resolved
#: after a restart -- kept visible instead of silently dropped).
JOB_STATES = (
    "queued", "running", "done", "failed", "expired", "orphaned",
)

#: states a job can never leave.
TERMINAL_STATES = ("done", "failed", "expired", "orphaned")


class _IdSource:
    """Monotonic job-id counter that recovery can advance past.

    Replays of a durable journal restore jobs with their original ids;
    the counter then resumes *after* the highest recovered id so a
    restarted service never hands out an id twice.
    """

    def __init__(self) -> None:
        self._next = 1
        self._lock = threading.Lock()

    def take(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def advance_past(self, value: int) -> None:
        with self._lock:
            if value >= self._next:
                self._next = value + 1


_ids = _IdSource()


def _next_job_id() -> str:
    return f"job-{_ids.take():06d}"


def advance_job_ids(job_id: str) -> None:
    """Ensure future ids sort after ``job_id`` (journal recovery)."""
    try:
        numeric = int(job_id.rsplit("-", 1)[-1])
    except (ValueError, IndexError):
        return
    _ids.advance_past(numeric)


class Job:
    """One queued/running/finished unit of service work."""

    __slots__ = (
        "id", "kind", "params", "tenant", "request_id", "state",
        "result", "error", "coalesced", "coalesce_key",
        "created", "started", "finished", "deadline", "recovered",
        "_done_event", "_callbacks", "_lock",
    )

    def __init__(
        self,
        kind: str,
        params: Dict[str, Any],
        tenant: str = "default",
        request_id: str = "",
        coalesce_key: Optional[Tuple] = None,
        deadline: Optional[float] = None,
        job_id: Optional[str] = None,
    ):
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.id = job_id if job_id is not None else _next_job_id()
        self.kind = kind
        self.params = params
        self.tenant = tenant
        self.request_id = request_id
        self.state = "queued"
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        #: how many duplicate submissions this job absorbed.
        self.coalesced = 0
        self.coalesce_key = coalesce_key
        self.created = time.monotonic()
        #: absolute monotonic instant the client stops caring; the
        #: queue cancels jobs it cannot start before their deadline.
        self.deadline = (
            None if deadline is None else self.created + deadline
        )
        #: True when this record was rebuilt from a durable journal.
        self.recovered = False
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._done_event = threading.Event()
        self._callbacks: List[Callable[["Job"], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle (driven by the service, under its queue lock)
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def mark_running(self) -> None:
        self.state = "running"
        self.started = time.monotonic()

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the client deadline passed before execution."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def resolve(
        self,
        result: Optional[dict],
        error: Optional[str],
        state: Optional[str] = None,
    ) -> None:
        """Finish the job and fire every completion callback.

        ``state`` overrides the default done/failed mapping for the
        durability terminals (``expired``, ``orphaned``).  Callbacks
        registered after resolution fire immediately from
        :meth:`add_done_callback`, so there is no window where a
        late awaiter misses the result.
        """
        if state is not None and state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            self.finished = time.monotonic()
            if state is not None:
                self.state = state
                self.result = result
                self.error = error
            elif error is None:
                self.state = "done"
                self.result = result
            else:
                self.state = "failed"
                self.error = error
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        self._done_event.set()
        for callback in callbacks:
            callback(self)

    @classmethod
    def restore(cls, job_id: str, payload: dict) -> "Job":
        """Rebuild a *terminal* job from its durable-journal payload.

        Restart recovery uses this so ``GET /jobs/<id>`` keeps
        answering for work that finished before the crash.
        """
        job = cls(
            payload["kind"],
            dict(payload.get("params") or {}),
            tenant=payload.get("tenant", "default"),
            request_id=payload.get("request_id", ""),
            job_id=job_id,
        )
        job.recovered = True
        job.resolve(
            payload.get("result"),
            payload.get("error"),
            state=payload.get("state", "failed"),
        )
        return job

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------

    def add_done_callback(
        self, callback: Callable[["Job"], None]
    ) -> None:
        """Invoke ``callback(job)`` at resolution (now, if resolved).

        Callbacks run on whichever thread resolves the job -- a pooled
        worker.  Event-loop callers must bounce through
        ``loop.call_soon_threadsafe``.
        """
        with self._lock:
            if not self._done_event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; False on timeout (sync callers/tests)."""
        return self._done_event.wait(timeout)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued, once execution has started."""
        if self.started is None:
            return None
        return self.started - self.created

    def to_dict(self, include_result: bool = True) -> dict:
        out = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "coalesced": self.coalesced,
            "queue_wait": self.queue_wait(),
            "elapsed": (
                (self.finished - self.created)
                if self.finished is not None
                else time.monotonic() - self.created
            ),
        }
        if self.recovered:
            out["recovered"] = True
        if self.deadline is not None and not self.done:
            out["deadline_remaining"] = self.deadline - time.monotonic()
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out

    def __repr__(self) -> str:
        return f"<Job {self.id} {self.kind} {self.state}>"


class CampaignProgress:
    """Thread-safe live cell counters fed by Supervisor events.

    An instance's :meth:`on_event` is handed to
    :class:`~repro.resilience.Supervisor` as the ``on_event`` callback;
    the supervised sweep then drives these counters from whatever
    thread runs cells.  ``/status`` snapshots the counters while the
    campaign is in flight, which is what makes ``ats watch`` and the
    HTML dashboard live rather than after-the-fact.
    """

    __slots__ = (
        "job_id", "total", "started", "done", "failed",
        "retried", "resumed", "recent", "_lock",
        "_first_start_ts", "_last_event_ts", "_cell_started_ts",
        "_cell_seconds", "_cells_timed",
    )

    def __init__(self, job_id: str, total: int = 0):
        self.job_id = job_id
        self.total = total
        self.started = 0
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.resumed = 0
        #: most recent events, newest last (dashboard tail).
        self.recent: deque = deque(maxlen=16)
        self._lock = threading.Lock()
        #: wall-time history feeding the ETA estimate: when the first
        #: cell started, when the latest event landed, and the summed
        #: per-cell wall time of every resolved cell.
        self._first_start_ts: Optional[float] = None
        self._last_event_ts: Optional[float] = None
        self._cell_started_ts: Dict[str, float] = {}
        self._cell_seconds = 0.0
        self._cells_timed = 0

    def on_event(self, event: dict) -> None:
        """Supervisor ``on_event`` callback (see PROGRESS_EVENTS)."""
        with self._lock:
            name = event.get("event")
            key = event.get("key", "")
            ts = event.get("ts")
            if ts is not None:
                if self._first_start_ts is None:
                    self._first_start_ts = ts
                self._last_event_ts = ts
            if name == "cell-started":
                if event.get("attempt", 1) == 1:
                    self.started += 1
                if ts is not None:
                    self._cell_started_ts[key] = ts
            elif name == "cell-retry":
                self.retried += 1
            elif name == "cell-done":
                self.done += 1
                self._time_cell(key, ts)
            elif name == "cell-quarantined":
                self.failed += 1
                self._time_cell(key, ts)
            elif name == "cell-resumed":
                self.resumed += 1
            self.recent.append(
                {
                    "event": name,
                    "key": key,
                    "ts": ts,
                }
            )

    def _time_cell(self, key: str, ts: Optional[float]) -> None:
        started = self._cell_started_ts.pop(key, None)
        if started is None or ts is None:
            return
        self._cell_seconds += max(0.0, ts - started)
        self._cells_timed += 1

    def _eta(self) -> dict:
        """Throughput + ETA derived from per-cell wall-time history.

        Rate is executed cells over the observed span (robust to
        concurrency -- it measures what actually got done per wall
        second); checkpoint-replayed cells count as resolved but not
        toward the rate, since their replay is near-instant.  The
        average per-cell seconds rides along for operators sizing
        timeouts.  ``None`` until one cell resolves.
        """
        executed = self.done + self.failed
        resolved = executed + self.resumed
        out = {
            "avg_cell_seconds": (
                self._cell_seconds / self._cells_timed
                if self._cells_timed else None
            ),
            "cells_per_second": None,
            "eta_seconds": None,
        }
        if (
            executed <= 0
            or self._first_start_ts is None
            or self._last_event_ts is None
        ):
            return out
        span = self._last_event_ts - self._first_start_ts
        if span <= 0:
            return out
        rate = executed / span
        out["cells_per_second"] = rate
        remaining = max(0, self.total - resolved)
        if rate > 0:
            out["eta_seconds"] = remaining / rate
        return out

    def snapshot(self) -> dict:
        with self._lock:
            snap = {
                "job_id": self.job_id,
                "total": self.total,
                "started": self.started,
                "done": self.done,
                "failed": self.failed,
                "retried": self.retried,
                "resumed": self.resumed,
                "recent": list(self.recent),
            }
            snap.update(self._eta())
            return snap
