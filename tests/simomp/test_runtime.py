"""Standalone OpenMP runner behaviour."""

import pytest

from repro.simomp import omp_parallel, run_omp
from repro.trace import read_trace, write_trace
from repro.work import do_work


def test_run_omp_result_fields():
    result = run_omp(lambda: 42, num_threads=3)
    assert result.result == 42
    assert result.num_threads == 3
    assert result.final_time == 0.0


def test_run_omp_final_time_tracks_work():
    def main():
        do_work(0.25)
        omp_parallel(lambda: do_work(0.5), num_threads=2)

    result = run_omp(main)
    assert result.final_time == pytest.approx(0.75)


def test_run_omp_validates_num_threads():
    with pytest.raises(ValueError):
        run_omp(lambda: None, num_threads=0)


def test_run_omp_untraced():
    result = run_omp(lambda: do_work(0.1), trace=False)
    assert result.recorder is None
    assert result.events == []
    assert result.final_time == pytest.approx(0.1)


def test_run_omp_timeline_and_profile():
    def main():
        omp_parallel(lambda: do_work(0.01), num_threads=2)

    result = run_omp(main)
    assert "legend" in result.timeline(width=20)
    profile = result.profile()
    assert profile.region_total("work") == pytest.approx(0.02)


def test_run_omp_intrusion_dilates():
    def main():
        omp_parallel(lambda: do_work(0.01), num_threads=4)

    clean = run_omp(main)
    dirty = run_omp(main, intrusion=1e-4)
    assert dirty.final_time > clean.final_time


def test_run_omp_seed_determinism():
    def main():
        from repro.simkernel import current_process

        rng = current_process().context["rng"]
        return rng.next_u64()

    assert run_omp(main, seed=9).result == run_omp(main, seed=9).result
    assert run_omp(main, seed=9).result != run_omp(main, seed=10).result


def test_omp_trace_round_trips_through_disk(tmp_path):
    def main():
        omp_parallel(lambda: do_work(0.01), num_threads=2)

    result = run_omp(main)
    path = tmp_path / "omp.jsonl"
    write_trace(path, result.events)
    events, _ = read_trace(path)
    assert events == result.events
