"""Communication-matrix view tests."""

import pytest

from repro.apps import FarmConfig, master_worker
from repro.simmpi import MPI_INT, alloc_mpi_buf, run_mpi
from repro.trace import CommMatrix, comm_matrix, format_comm_matrix

FAST = dict(model_init_overhead=False)


def ring_program(comm):
    buf = alloc_mpi_buf(MPI_INT, 4)
    me, sz = comm.rank(), comm.size()
    rbuf = alloc_mpi_buf(MPI_INT, 4)
    rreq = comm.irecv(rbuf, (me - 1) % sz, 0)
    comm.send(buf, (me + 1) % sz, 0)
    comm.wait(rreq)


def test_ring_matrix_counts():
    result = run_mpi(ring_program, 4, **FAST)
    matrix = comm_matrix(result.events)
    assert matrix.total_messages == 4
    assert matrix.total_bytes == 4 * 16
    for src in range(4):
        assert matrix.messages[(src, (src + 1) % 4)] == 1
        assert matrix.messages.get((src, (src + 2) % 4), 0) == 0


def test_master_worker_hotspot_is_rank0():
    result = run_mpi(
        master_worker, 5, FarmConfig(ntasks=12), **FAST
    )
    matrix = comm_matrix(result.events)
    assert matrix.hottest_receiver() == 0


def test_internal_traffic_excluded_by_default():
    def main(comm):
        comm.barrier()

    result = run_mpi(main, 4, **FAST)
    assert comm_matrix(result.events).total_messages == 0
    internal = comm_matrix(result.events, include_internal=True)
    assert internal.total_messages > 0  # the dissemination rounds


def test_internal_matrix_shows_algorithm_structure():
    """A linear bcast's internal matrix is a single dense row."""
    from repro.simmpi import CollectiveTuning

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        comm.bcast(buf, root=0)

    result = run_mpi(
        main, 6, collectives=CollectiveTuning(bcast="linear"), **FAST
    )
    matrix = comm_matrix(result.events, include_internal=True)
    senders = {src for (src, _) in matrix.messages}
    assert senders == {0}  # only the root sends
    assert matrix.total_messages == 5


def test_format_matrix_table():
    result = run_mpi(ring_program, 3, **FAST)
    text = format_comm_matrix(comm_matrix(result.events))
    assert "send\\recv" in text
    assert "total: 3 messages" in text
    text_bytes = format_comm_matrix(
        comm_matrix(result.events), unit="bytes"
    )
    assert "16" in text_bytes


def test_format_matrix_bad_unit():
    with pytest.raises(ValueError):
        format_comm_matrix(CommMatrix(), unit="packets")


def test_empty_matrix():
    matrix = CommMatrix()
    assert matrix.hottest_receiver() is None
    assert "no point-to-point" in format_comm_matrix(matrix)
