"""Robustness harness: magnitude-0 parity, determinism, curve math."""

import pytest

from repro.core.registry import get_property
from repro.faults import FaultPlan, TimingJitter
from repro.validation import (
    default_tool,
    run_robustness,
    validate_spec,
)

SPECS = [get_property(n) for n in ("late_sender", "balanced_sendrecv")]


@pytest.fixture(scope="module")
def sweep():
    return run_robustness(
        specs=SPECS,
        magnitudes=(0.0, 0.5, 1.0),
        seeds=(0, 1),
        size=6,
        num_threads=2,
    )


def test_magnitude_zero_matches_clean_matrix(sweep):
    tool = default_tool()
    for spec in SPECS:
        for seed in (0, 1):
            clean = validate_spec(
                spec, tool=tool, size=6, num_threads=2, seed=seed
            )
            cell = next(
                c
                for c in sweep.cells
                if c.program == spec.name
                and c.magnitude == 0.0
                and c.seed == seed
            )
            assert cell.detected == tuple(clean.detected)
            assert cell.error is None


def test_sweep_is_deterministic(sweep):
    again = run_robustness(
        specs=SPECS,
        magnitudes=(0.0, 0.5, 1.0),
        seeds=(0, 1),
        size=6,
        num_threads=2,
    )
    assert sweep.to_json_str() == again.to_json_str()


def test_curves_cover_grid_and_rates_are_sane(sweep):
    curves = sweep.curves()
    assert "late_sender" in curves
    for points in curves.values():
        assert [p.magnitude for p in points] == [0.0, 0.5, 1.0]
        for p in points:
            if p.true_positive_rate is not None:
                assert 0.0 <= p.true_positive_rate <= 1.0
            if p.false_positive_rate is not None:
                assert 0.0 <= p.false_positive_rate <= 1.0
    # the positive program is detected on the clean anchor point
    anchor = curves["late_sender"][0]
    assert anchor.true_positive_rate == 1.0


def test_json_shape(sweep):
    d = sweep.to_json_dict()
    assert d["format"] == "ats-robustness"
    assert d["magnitudes"] == [0.0, 0.5, 1.0]
    assert set(d["programs"]) == {s.name for s in SPECS}
    assert len(d["cells"]) == len(SPECS) * 3 * 2
    for points in d["curves"].values():
        assert len(points) == 3


def test_table_mentions_every_property(sweep):
    table = sweep.format_table()
    for prop in sweep.properties():
        assert prop in table


def test_custom_plan_and_validation():
    result = run_robustness(
        specs=[SPECS[0]],
        magnitudes=(0.0, 1.0),
        seeds=(0,),
        plan=FaultPlan.of(TimingJitter(0.3)),
        size=4,
        num_threads=2,
    )
    assert len(result.cells) == 2
    assert all(c.error is None for c in result.cells)
    with pytest.raises(ValueError):
        run_robustness(specs=SPECS, magnitudes=())
    with pytest.raises(ValueError):
        run_robustness(specs=SPECS, seeds=())
