"""Tests for trace persistence, timeline rendering and profiles."""

import json

import pytest

from repro.trace import (
    Enter,
    Exit,
    Location,
    TraceFormatError,
    TraceRecorder,
    profile_trace,
    read_trace,
    region_char,
    region_intervals,
    render_timeline,
    state_at,
    write_trace,
    format_profile,
)

L0 = Location(0, 0)
L1 = Location(1, 0)


def sample_events():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "main")
    rec.enter(1.0, L0, "work")
    rec.exit(3.0, L0, "work")
    rec.enter(3.0, L0, "MPI_Send")
    rec.exit(4.0, L0, "MPI_Send")
    rec.exit(5.0, L0, "main")
    rec.enter(0.0, L1, "main")
    rec.enter(0.5, L1, "MPI_Recv")
    rec.exit(4.0, L1, "MPI_Recv")
    rec.exit(5.0, L1, "main")
    return rec.events


# ----------------------------------------------------------------------
# io
# ----------------------------------------------------------------------

def test_write_read_round_trip(tmp_path):
    events = sample_events()
    path = tmp_path / "trace.jsonl"
    n = write_trace(path, events, metadata={"program": "demo", "size": 2})
    assert n == len(events)
    loaded, meta = read_trace(path)
    assert loaded == events
    assert meta == {"program": "demo", "size": 2}


def test_read_rejects_non_trace_file(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"format": "other"}\n')
    with pytest.raises(ValueError, match="not an ats-trace"):
        read_trace(path)


def test_read_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_trace(path)


def test_read_rejects_bad_version(tmp_path):
    path = tmp_path / "v99.jsonl"
    path.write_text('{"format": "ats-trace", "version": 99}\n')
    with pytest.raises(ValueError, match="version"):
        read_trace(path)


def test_read_reports_line_of_bad_event(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"format": "ats-trace", "version": 1}\n'
        '{"kind": "bogus", "time": 0, "loc": "0.0"}\n'
    )
    with pytest.raises(ValueError, match=":2:"):
        read_trace(path)


def test_format_error_carries_path_and_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"format": "ats-trace", "version": 1}\n'
        '{"kind": "enter", "time": 0.0, "loc": "0.0", "region": "m",'
        ' "path": ["m"]}\n'
        "{broken\n"
    )
    with pytest.raises(TraceFormatError) as excinfo:
        read_trace(path)
    assert excinfo.value.path == path
    assert excinfo.value.lineno == 3


def test_skip_bad_lines_recovers_good_events(tmp_path):
    events = sample_events()
    path = tmp_path / "corrupt.jsonl"
    write_trace(path, events, metadata={"program": "demo"})
    lines = path.read_text().splitlines()
    # corrupt one event line mid-file and truncate the final one --
    # the crashed-run shape
    lines[3] = lines[3][: len(lines[3]) // 2]
    lines.append('{"kind": "unknown_kind", "time": 1}')
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError, match=":4:"):
        read_trace(path)
    loaded, meta = read_trace(path, skip_bad_lines=True)
    assert len(loaded) == len(events) - 1
    assert meta["skipped_lines"] == 2
    assert meta["program"] == "demo"


def test_skip_bad_lines_does_not_mask_bad_header(tmp_path):
    path = tmp_path / "hdr.jsonl"
    path.write_text("{broken header\n")
    with pytest.raises(TraceFormatError, match=":1:"):
        read_trace(path, skip_bad_lines=True)


def test_written_file_is_line_json(tmp_path):
    path = tmp_path / "t.jsonl"
    write_trace(path, sample_events())
    lines = path.read_text().strip().split("\n")
    for line in lines:
        json.loads(line)  # every line parses standalone


# ----------------------------------------------------------------------
# timeline
# ----------------------------------------------------------------------

def test_timeline_renders_all_locations():
    text = render_timeline(sample_events(), width=50)
    assert "0.0 |" in text and "1.0 |" in text
    assert "legend" in text


def test_timeline_categories():
    assert region_char("work") == "="
    assert region_char("MPI_Send") == "M"
    assert region_char("MPI_Bcast") == "C"
    assert region_char("MPI_Barrier") == "B"
    assert region_char("MPI_Init") == "I"
    assert region_char("omp_barrier") == "$"
    assert region_char("omp_for") == "o"
    assert region_char("my_phase") == "u"


def test_timeline_innermost_region_wins():
    text = render_timeline(sample_events(), width=10, t_end=5.0)
    row0 = next(l for l in text.splitlines() if l.strip().startswith("0.0"))
    cells = row0.split("|")[1]
    # bucket covering t in [1,3) is work, [3,4) is MPI_Send
    assert cells[2] == "="
    assert cells[6] == "M"


def test_timeline_empty_trace():
    assert "empty" in render_timeline([], width=10)


def test_state_at_reports_innermost():
    events = sample_events()
    assert state_at(events, L0, 2.0) == "work"
    assert state_at(events, L0, 3.5) == "MPI_Send"
    assert state_at(events, L0, 4.5) == "main"
    assert state_at(events, L0, 99.0) is None


# ----------------------------------------------------------------------
# profiles
# ----------------------------------------------------------------------

def test_profile_inclusive_and_exclusive_times():
    profile = profile_trace(sample_events())
    # main at L0: inclusive 5, children work(2) + send(1) -> exclusive 2
    main0 = profile.per_region[("main", L0)]
    assert main0.inclusive == pytest.approx(5.0)
    assert main0.exclusive == pytest.approx(2.0)
    work0 = profile.per_region[("work", L0)]
    assert work0.inclusive == pytest.approx(2.0)
    assert work0.exclusive == pytest.approx(2.0)


def test_profile_region_totals_sum_locations():
    profile = profile_trace(sample_events())
    assert profile.region_total("main") == pytest.approx(10.0)
    assert profile.exclusive_total("MPI_Recv") == pytest.approx(3.5)


def test_profile_total_time_and_locations():
    profile = profile_trace(sample_events())
    assert profile.total_time == pytest.approx(5.0)
    assert profile.locations == [L0, L1]


def test_profile_visit_counts():
    rec = TraceRecorder()
    for i in range(3):
        rec.enter(float(i), L0, "r")
        rec.exit(float(i) + 0.5, L0, "r")
    profile = profile_trace(rec.events)
    assert profile.per_region[("r", L0)].visits == 3
    assert profile.per_region[("r", L0)].inclusive == pytest.approx(1.5)


def test_format_profile_is_table():
    text = format_profile(profile_trace(sample_events()))
    assert "region" in text and "main" in text


def test_region_intervals_replay():
    intervals = list(region_intervals(sample_events()))
    # every enter/exit pair becomes exactly one interval
    assert len(intervals) == 5
    main0 = next(
        i for i in intervals if i.region == "main" and i.loc == L0
    )
    assert main0.enter == pytest.approx(0.0)
    assert main0.exit == pytest.approx(5.0)
    assert main0.inclusive == pytest.approx(5.0)
    assert main0.exclusive == pytest.approx(2.0)  # minus work + send
    assert main0.depth == 0
    work0 = next(i for i in intervals if i.region == "work")
    assert work0.depth == 1
    assert work0.path == ("main", "work")


def test_region_intervals_tolerates_truncation():
    rec = TraceRecorder()
    rec.enter(0.0, L0, "main")
    rec.enter(1.0, L0, "work")  # never exited
    assert list(region_intervals(rec.events)) == []
