"""Master/worker task farm.

Rank 0 hands out tasks on demand; workers request work, compute, and
return results.  Documented performance behaviour:

* with cheap master dispatch and many workers the farm self-balances
  (negative case at moderate scale),
* a non-zero ``master_service_time`` serializes dispatch: workers
  increasingly block in their receive -- *late sender* at the workers
  with rank 0 as the bottleneck (the classic master-bottleneck
  pathology, Grindstone's "one heavily loaded server" case).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simkernel import current_process
from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_DOUBLE
from ..simmpi.status import ANY_SOURCE
from ..trace.api import region
from ..work import do_work

TAG_REQUEST = 1
TAG_TASK = 2
TAG_RESULT = 3
TAG_STOP = 4


@dataclass(frozen=True)
class FarmConfig:
    """Parameters of one task-farm run."""

    ntasks: int = 24
    task_time: float = 0.004
    #: spread factor: task i costs task_time * (1 + spread * i/ntasks)
    task_spread: float = 0.5
    #: master-side dispatch cost per request (the bottleneck knob)
    master_service_time: float = 0.0

    def task_cost(self, index: int) -> float:
        return self.task_time * (
            1.0 + self.task_spread * index / max(1, self.ntasks)
        )


def master_worker(
    comm: Communicator, config: FarmConfig = FarmConfig()
) -> float:
    """Run the farm; every rank returns the global result sum."""
    me = comm.rank()
    sz = comm.size()
    if sz < 2:
        raise ValueError("task farm needs at least one worker")
    msg = alloc_mpi_buf(MPI_DOUBLE, 2)  # [task index | result]

    if me == 0:
        total = 0.0
        with region("farm_master"):
            next_task = 0
            active = sz - 1
            while active > 0:
                status = comm.recv(msg, ANY_SOURCE)
                if status.tag == TAG_RESULT:
                    total += float(msg.data[1])
                if config.master_service_time > 0:
                    do_work(config.master_service_time)
                if next_task < config.ntasks:
                    msg.data[0] = next_task
                    comm.send(msg, status.source, TAG_TASK)
                    next_task += 1
                else:
                    comm.send(msg, status.source, TAG_STOP)
                    active -= 1
        return total
    else:
        with region("farm_worker"):
            msg.data[:] = 0.0
            comm.send(msg, 0, TAG_REQUEST)
            while True:
                status = comm.recv(msg, 0)
                if status.tag == TAG_STOP:
                    break
                index = int(msg.data[0])
                do_work(config.task_cost(index))
                msg.data[1] = float(index + 1)
                comm.send(msg, 0, TAG_RESULT)
        # workers return their own view (0.0) -- master owns the sum
        return 0.0
