"""Snapshot/delta/merge of metrics registries across forked children."""

from repro.obs import (
    get_registry,
    merge_state,
    registry_state,
    set_metrics_enabled,
    state_delta,
)
from repro.simkernel.process import worker_pool


def _setup():
    set_metrics_enabled(True)
    return get_registry()


def test_counter_delta_and_merge():
    reg = _setup()
    counter = reg.counter("t_total", "test counter")
    counter.inc(3)
    base = registry_state(reg)
    counter.inc(4)
    delta = state_delta(base, registry_state(reg))
    assert delta["t_total"]["samples"] == [[[], 4.0]]
    merge_state(delta, reg)
    assert counter.value == 11.0  # 7 recorded + 4 merged


def test_zero_delta_families_are_dropped():
    reg = _setup()
    reg.counter("untouched_total", "never incremented").inc(2)
    base = registry_state(reg)
    delta = state_delta(base, registry_state(reg))
    assert delta == {}


def test_labeled_counter_merges_per_child():
    reg = _setup()
    family = reg.counter("cells_total", "cells", labelnames=("status",))
    family.labels(status="ok").inc(2)
    base = registry_state(reg)
    family.labels(status="ok").inc()
    family.labels(status="failed").inc()
    delta = state_delta(base, registry_state(reg))
    merge_state(delta, reg)
    assert family.labels(status="ok").value == 4.0
    assert family.labels(status="failed").value == 2.0


def test_gauge_is_last_write_wins():
    reg = _setup()
    gauge = reg.gauge("depth", "queue depth")
    gauge.set(5)
    base = registry_state(reg)
    gauge.set(9)
    delta = state_delta(base, registry_state(reg))
    gauge.set(1)
    merge_state(delta, reg)
    assert gauge.value == 9.0


def test_histogram_cells_sum():
    reg = _setup()
    hist = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    base = registry_state(reg)
    hist.observe(0.5)
    hist.observe(5.0)
    delta = state_delta(base, registry_state(reg))
    value = delta["lat"]["samples"][0][1]
    assert value["count"] == 2
    assert value["counts"] == [0, 1, 1]
    merge_state(delta, reg)
    assert hist.count == 5
    assert hist.counts == [1, 2, 2]
    assert hist.sum == 0.05 + 2 * (0.5 + 5.0)


def test_unknown_family_is_declared_on_merge():
    reg = _setup()
    delta = {
        "child_only_total": {
            "help": "created in a child",
            "type": "counter",
            "labelnames": [],
            "buckets": list(
                __import__("repro.obs.metrics", fromlist=["x"]).DEFAULT_BUCKETS
            ),
            "samples": [[[], 3.0]],
        }
    }
    merge_state(delta, reg)
    assert reg.counter("child_only_total", "created in a child").value == 3.0


def test_worker_pool_counters_fold_into_pool_not_registry():
    """Harvested pool counters merge into the pool object itself.

    The kernel's collector overwrites ``ats_workers_spawned_total`` via
    ``set_total`` at every collect; merging into the registry child
    would be clobbered, so the delta lands on ``pool.created`` instead.
    """
    reg = _setup()
    pool = worker_pool()
    before_created = pool.created
    before_reused = pool.reused
    delta = {
        "ats_workers_spawned_total": {
            "help": "", "type": "counter", "labelnames": [],
            "buckets": [], "samples": [[[], 2.0]],
        },
        "ats_workers_reused_total": {
            "help": "", "type": "counter", "labelnames": [],
            "buckets": [], "samples": [[[], 5.0]],
        },
        "ats_workers_parked": {
            "help": "", "type": "gauge", "labelnames": [],
            "buckets": [], "samples": [[[], 40.0]],
        },
    }
    try:
        merge_state(delta, reg)
        assert pool.created == before_created + 2
        assert pool.reused == before_reused + 5
        # none of the three went into the registry
        assert "ats_workers_spawned_total" not in reg._families
        assert "ats_workers_parked" not in reg._families
    finally:
        pool.created = before_created
        pool.reused = before_reused


def test_forked_sweep_reports_whole_campaign_metrics():
    """End to end: child sim dispatches show up in the parent registry."""
    from repro.core import get_property
    from repro.resilience import run_cells_forked
    from repro.work.forkexec import fork_available

    if not fork_available():
        return
    reg = _setup()
    spec = get_property("imbalance_at_mpi_barrier")

    def cell():
        run = spec.run(size=4, num_threads=2, seed=0)
        return {"events": len(run.events)}

    run_cells_forked([("a", cell), ("b", cell)], workers=2)
    fam = reg._families.get("ats_sim_dispatches_total")
    assert fam is not None
    assert fam.default.value > 0
