#!/usr/bin/env python
"""Observability-layer overhead benchmark.

Runs the hybrid-64 composite (the same shape ``bench_perf_core``
sweeps) in three modes and records the wall-time deltas into
``BENCH_OBS.json`` at the repository root:

* ``off``       -- metrics and spans disabled (the default); this is
  the mode whose cost must stay within noise of the PR 1 baseline,
* ``on``        -- metrics registry + span log enabled,
* ``on_export`` -- enabled, plus a Prometheus dump and a Chrome trace
  export after the run (the full ``ats run --metrics-out
  --chrome-trace`` path, minus argument parsing).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import run_hybrid_composite  # noqa: E402
from repro.obs import (  # noqa: E402
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
    to_prometheus,
    write_chrome_trace,
)

from bench_perf_core import (  # noqa: E402
    HYBRID_MPI_STEPS,
    HYBRID_OMP_STEPS,
)

OUT_PATH = REPO_ROOT / "BENCH_OBS.json"


def _run(size: int, num_threads: int):
    return run_hybrid_composite(
        HYBRID_MPI_STEPS,
        HYBRID_OMP_STEPS,
        size=size,
        num_threads=num_threads,
    )


def _measure(size: int, num_threads: int, repeats: int, mode: str) -> dict:
    """Best-of-``repeats`` wall time for one observability mode."""
    enabled = mode != "off"
    best = None
    events = 0
    with tempfile.TemporaryDirectory() as tmp:
        for _ in range(repeats):
            reset_metrics()
            reset_spans()
            prev_m = set_metrics_enabled(enabled)
            prev_s = set_spans_enabled(enabled)
            try:
                t0 = time.perf_counter()
                result = _run(size, num_threads)
                if mode == "on_export":
                    text = to_prometheus()
                    assert text.startswith("# HELP"), "empty registry"
                    write_chrome_trace(
                        Path(tmp) / "trace.json",
                        events=result.recorder.events,
                    )
                elapsed = time.perf_counter() - t0
            finally:
                set_metrics_enabled(prev_m)
                set_spans_enabled(prev_s)
            if best is None or elapsed < best:
                best = elapsed
            events = len(result.recorder.events)
    return {"wall_s": round(best, 6), "events": events}


def run_modes(size: int, num_threads: int, repeats: int) -> dict:
    rows = {}
    for mode in ("off", "on", "on_export"):
        rows[mode] = _measure(size, num_threads, repeats, mode)
        print(f"{mode:>10}: {rows[mode]['wall_s']*1000:8.1f} ms "
              f"({rows[mode]['events']} events)")
    off = rows["off"]["wall_s"]
    for mode in ("on", "on_export"):
        rel = rows[mode]["wall_s"] / off - 1.0 if off else 0.0
        rows[mode]["overhead_vs_off"] = round(rel, 4)
        print(f"{mode:>10} overhead vs off: {rel:+.2%}")
    return {
        "size": size,
        "num_threads": num_threads,
        "repeats": repeats,
        "modes": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny parameters for CI smoke runs (no BENCH_OBS.json write)",
    )
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.quick:
        run_modes(size=4, num_threads=2, repeats=1)
        print("quick smoke ok")
        return 0

    measurement = run_modes(args.size, args.threads, args.repeats)
    existing = {}
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text())
    existing[f"hybrid-{args.size}"] = measurement
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
