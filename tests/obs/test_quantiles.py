"""Histogram quantile estimation and its JSON-exporter surfacing."""

import pytest

from repro.obs import quantile_from_counts, reset_metrics, to_json
from repro.obs.export import SNAPSHOT_QUANTILES


# ----------------------------------------------------------------------
# quantile_from_counts
# ----------------------------------------------------------------------

def test_empty_histogram_has_no_quantiles():
    assert quantile_from_counts((1.0, 2.0), [0, 0], 0, 0.5) is None


def test_out_of_range_q_rejected():
    with pytest.raises(ValueError):
        quantile_from_counts((1.0,), [1], 1, -0.1)
    with pytest.raises(ValueError):
        quantile_from_counts((1.0,), [1], 1, 1.1)


def test_linear_interpolation_within_bucket():
    # 10 observations in (0, 1]: the median interpolates to the
    # middle of the first bucket, Prometheus histogram_quantile style.
    boundaries = (1.0, 2.0)
    counts = [10, 0]
    assert quantile_from_counts(boundaries, counts, 10, 0.5) == (
        pytest.approx(0.5)
    )
    assert quantile_from_counts(boundaries, counts, 10, 1.0) == (
        pytest.approx(1.0)
    )


def test_quantile_across_buckets():
    # 50 in (0,1], 40 in (1,2], 10 in (2,4].
    boundaries = (1.0, 2.0, 4.0)
    counts = [50, 40, 10]
    total = 100
    assert quantile_from_counts(boundaries, counts, total, 0.25) == (
        pytest.approx(0.5)
    )
    # p50 lands exactly on the first boundary.
    assert quantile_from_counts(boundaries, counts, total, 0.50) == (
        pytest.approx(1.0)
    )
    # p90 exhausts the second bucket exactly.
    assert quantile_from_counts(boundaries, counts, total, 0.90) == (
        pytest.approx(2.0)
    )
    # p95: halfway through the (2,4] bucket.
    assert quantile_from_counts(boundaries, counts, total, 0.95) == (
        pytest.approx(3.0)
    )


def test_overflow_clamps_to_highest_finite_boundary():
    boundaries = (1.0, 2.0)
    counts = [1, 0]
    # one observation beyond every finite bucket
    assert quantile_from_counts(boundaries, counts, 2, 1.0) == (
        pytest.approx(2.0)
    )


# ----------------------------------------------------------------------
# Histogram.quantile
# ----------------------------------------------------------------------

def test_histogram_quantile_method():
    reg = reset_metrics()
    h = reg.histogram("t_q", "help", buckets=(1.0, 2.0, 4.0, 8.0))
    for v in [0.5] * 50 + [1.5] * 30 + [3.0] * 15 + [6.0] * 5:
        h.observe(v)
    assert h.quantile(0.50) == pytest.approx(1.0)
    assert h.quantile(0.95) == pytest.approx(4.0)
    assert h.quantile(0.99) == pytest.approx(7.2, rel=1e-3)


def test_histogram_quantile_empty_is_none():
    reg = reset_metrics()
    h = reg.histogram("t_q_empty", "help", buckets=(1.0,))
    assert h.quantile(0.5) is None


# ----------------------------------------------------------------------
# JSON exporter carries quantiles
# ----------------------------------------------------------------------

def test_json_export_includes_snapshot_quantiles():
    reg = reset_metrics()
    h = reg.histogram("t_export", "help", buckets=(1.0, 2.0))
    for v in (0.5, 0.5, 1.5, 1.5):
        h.observe(v)
    payload = to_json(reg)
    fam = next(
        m for m in payload["metrics"] if m["name"] == "t_export"
    )
    sample = fam["samples"][0]
    names = [name for name, _q in SNAPSHOT_QUANTILES]
    assert set(sample["quantiles"]) == set(names)
    assert sample["quantiles"]["p50"] == pytest.approx(1.0)
    assert sample["quantiles"]["p99"] == pytest.approx(1.98, rel=1e-3)
