"""Point-to-point pattern detectors: late sender, late receiver,
messages in wrong order.

These follow the published EXPERT/KOJAK pattern definitions: matched
send/receive event pairs are inspected for the characteristic
enter-time orderings, and the blocked interval becomes the finding's
waiting time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from ...trace.events import Event, Recv, Send
from ..model import Finding
from .base import AnalysisConfig, matched_p2p_pairs


class LateSenderDetector:
    """Receiver blocked because the matching send started too late.

    Condition: ``send.start > recv.post``.  Wait: the receiver's
    blocked interval from posting until the send started (transfer time
    on top of that is communication, not waiting).
    """

    produces = ("late_sender",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for send, recv in matched_p2p_pairs(events):
            wait = send.time - recv.post_time
            if wait > config.noise_floor:
                yield Finding(
                    "late_sender", recv.path, recv.loc, wait
                )


class LateReceiverDetector:
    """Sender blocked in rendezvous because the receive was posted late.

    Condition: message above the eager threshold and
    ``recv.post > send.start``.  The wait is charged to the *sender's*
    location and call path -- that is where the time was lost.
    """

    produces = ("late_receiver",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for send, recv in matched_p2p_pairs(events):
            if send.nbytes <= config.eager_threshold:
                continue
            wait = recv.post_time - send.time
            if wait > config.noise_floor:
                yield Finding(
                    "late_receiver", send.path, send.loc, wait
                )


class WrongOrderDetector:
    """Late-sender waits caused by messages received against send order.

    The EXPERT "Late Sender / Messages in Wrong Order" sub-pattern: a
    receive that blocked on a late send while an *earlier-sent* message
    between the same endpoints was received *later* -- the wait exists
    only because the receives were posted in the wrong order.
    """

    produces = ("messages_in_wrong_order",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        by_channel: dict = defaultdict(list)
        for send, recv in matched_p2p_pairs(events):
            by_channel[(send.loc, recv.loc, send.comm_id)].append(
                (send, recv)
            )
        for pairs in by_channel.values():
            for send, recv in pairs:
                wait = send.time - recv.post_time
                if wait <= config.noise_floor:
                    continue
                # Is there a message sent before this one but received
                # (posted) after it?
                inverted = any(
                    other_send.time < send.time
                    and other_recv.post_time > recv.post_time
                    for other_send, other_recv in pairs
                    if other_send.msg_id != send.msg_id
                )
                if inverted:
                    yield Finding(
                        "messages_in_wrong_order",
                        recv.path,
                        recv.loc,
                        wait,
                    )
