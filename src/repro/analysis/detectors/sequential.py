"""Sequential pattern detectors (paper future-work item)."""

from __future__ import annotations

from typing import Iterable, Sequence

from ...trace.events import Event
from ..model import Finding
from .base import AnalysisConfig, iter_region_visits

_IO_REGIONS = ("io_read", "io_write")


class IoBoundDetector:
    """Time spent in (modeled) file I/O.

    Every completed ``io_read``/``io_write`` region contributes its
    inclusive time; whether the total is a *problem* is the severity
    threshold's call, exactly like the waiting-time properties.
    """

    produces = ("io_bound",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for visit in iter_region_visits(events):
            if visit.region not in _IO_REGIONS:
                continue
            if visit.inclusive > config.noise_floor:
                yield Finding(
                    "io_bound", visit.path, visit.loc, visit.inclusive
                )
