"""Append-only JSONL checkpoint journal for supervised sweeps.

One line per completed cell, written (and flushed) the moment the cell
finishes, so a killed sweep loses at most the cell that was in flight.
The format is deliberately dumb:

* line 1 -- a header record ``{"format": "ats-checkpoint", ...}``,
* every further line -- ``{"key": <cell key>, "payload": {...}}``.

``load()`` tolerates exactly the corruption a kill can produce: a
partial JSON tail on the *final* line (the write that was interrupted)
is discarded; corruption anywhere else is a real error and raises.
Duplicate keys keep the last record, so re-running a cell simply
supersedes its earlier outcome.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, Optional, Union

_FORMAT = "ats-checkpoint"
_VERSION = 1


def _chaos_injector():
    """The installed host-fault injector, or None.

    Looked up through ``sys.modules`` so the resilience layer never
    imports :mod:`repro.chaos`: unless a chaos harness explicitly
    installed an injector, this is one dict probe and a ``None``.
    """
    mod = sys.modules.get("repro.chaos.inject")
    return None if mod is None else mod.active()


class CheckpointError(Exception):
    """The journal is corrupt beyond the tolerated partial tail."""


class CheckpointJournal:
    """Durable per-cell outcome journal (see module docstring).

    ``fmt`` names the journal format in the header line; other
    subsystems reuse the healing/append machinery under their own
    format name (the archive manifest is ``ats-archive-manifest``),
    and a journal refuses to load a file of a different format.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fmt: str = _FORMAT,
        fsync: bool = False,
    ):
        self.path = Path(path)
        self.fmt = fmt
        #: with ``fsync`` the journal survives power loss, not just
        #: process death: every record is fdatasync'd before the write
        #: is considered acknowledged.
        self.fsync = fsync
        self._fh = None
        #: set when a failed append could not be rolled back; further
        #: appends would corrupt the file mid-stream, so they refuse.
        self._broken = False

    # ------------------------------------------------------------------
    # reading (resume)
    # ------------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """Return ``key -> payload`` for every journaled cell.

        Missing file means a fresh sweep: an empty mapping.  A partial
        final line (interrupted write) is silently dropped.
        """
        if not self.path.exists():
            return {}
        text = self.path.read_text()
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            # the final write never reached its newline terminator, so
            # it was never acknowledged -- even when the JSON happens
            # to be complete.  Dropping it here keeps read-only
            # recovery consistent with ``_heal_partial_tail``, which
            # cuts the same line before appending.
            lines = lines[:-1]
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path}:1: corrupt checkpoint header"
            ) from exc
        if header.get("format") != self.fmt:
            raise CheckpointError(
                f"{self.path}: not an {self.fmt} journal"
            )
        done: Dict[str, dict] = {}
        last = len(lines) - 1
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno - 1 == last:
                    break  # interrupted final write; the cell re-runs
                raise CheckpointError(
                    f"{self.path}:{lineno}: corrupt checkpoint record"
                ) from None
            if "key" not in record or "payload" not in record:
                raise CheckpointError(
                    f"{self.path}:{lineno}: malformed checkpoint record"
                )
            done[record["key"]] = record["payload"]
        return done

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists():
                self._heal_partial_tail()
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._fh.write(
                    json.dumps({"format": self.fmt, "version": _VERSION})
                    + "\n"
                )
                self._fh.flush()
        return self._fh

    def _heal_partial_tail(self) -> None:
        """Cut an interrupted final write before appending after it.

        Without this, the first append of a resumed sweep would glue
        its record onto the partial line, corrupting both.  ``load()``
        already ignores the partial tail, so cutting it loses nothing.
        """
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            with open(self.path, "r+b") as fh:
                fh.truncate(cut)

    def record(self, key: str, payload: dict) -> None:
        """Append one completed cell and flush it to the OS immediately.

        With :attr:`fsync` the record is also forced to stable storage
        before returning, so a caller that acknowledges work *after*
        ``record()`` never acknowledges something a crash can lose.

        A failed write (disk error, injected chaos fault) is **rolled
        back**: the file is truncated to its pre-record length, so a
        journal that keeps running after an IO error never buries a
        torn record mid-file -- the one corruption shape ``load()``
        cannot heal.  The exception then propagates (the record is not
        acknowledged).  If even the rollback fails, the journal marks
        itself broken and refuses further appends, keeping the torn
        record on the final line where tail healing handles it.
        """
        if self._broken:
            raise CheckpointError(
                f"{self.path}: journal is broken after an unrolled-"
                "back write failure; refusing to append"
            )
        line = (
            json.dumps({"key": key, "payload": payload}, sort_keys=True)
            + "\n"
        )
        fh = self._open()
        fh.flush()
        start = fh.tell()
        try:
            injector = _chaos_injector()
            if injector is not None:
                injector.journal_record(self.path, fh, line)
            fh.write(line)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        except BaseException:
            try:
                fh.truncate(start)
                fh.seek(start)
            except OSError:
                self._broken = True
            raise

    def flush(self) -> None:
        """Force buffered records to disk (fsync'd when enabled)."""
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def coerce_journal(
    checkpoint: Union[None, str, Path, CheckpointJournal],
) -> Optional[CheckpointJournal]:
    """Accept a path or a journal; ``None`` stays ``None``."""
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return CheckpointJournal(checkpoint)
