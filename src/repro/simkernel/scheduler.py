"""The deterministic discrete-event scheduler.

A :class:`Simulator` owns a virtual clock and an event queue of
``(time, sequence, process)`` entries.  Exactly one simulated process
runs at any moment; ties in time are broken by scheduling order, so a
whole simulation is a deterministic function of the program and its
seeds.  Determinism is essential for a *test suite*: the same ATS
program must exhibit the same performance property trace on every run.

The dispatch step (pop the earliest entry, advance the clock, resume
the process) is not owned by a scheduler thread.  It runs on whichever
thread just gave up control: a blocking process dispatches its
successor directly (one context switch instead of a round trip through
``run()``), and ``run()`` on the main thread only seeds the first
dispatch, then sleeps until the chain reports back -- completion,
deadlock, a crash, the ``until`` horizon or the dispatch limit.

Three fast paths keep dispatching cheap at scale:

* events scheduled for the *current* timestamp (``hold(0)``, immediate
  ``activate`` -- the bulk of sync-primitive traffic) go to a FIFO run
  queue instead of the pending-event queue; because sequence numbers
  only grow, FIFO order *is* ``(time, seq)`` order for same-time
  entries, so the merge with the pending queue preserves the exact
  event ordering of a heap-only scheduler (traces are bit-identical),
* *future* events live in a calendar queue bucketed by exact timestamp
  (:mod:`repro.simkernel.eventq`): SPMD programs schedule whole rank
  cohorts for the same instant, so pushes are O(1) bucket appends and
  advancing the clock transfers an entire bucket onto the FIFO in one
  batched step instead of popping a heap once per rank,
* blocked-reason strings are stored lazily (see
  :meth:`SimProcess.waiting_reason`), so no f-string is built per hold.

``ATS_SCHEDULER=heap`` falls back to the single-heap pending queue;
both implementations serve the identical ``(time, seq)`` order.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from ..obs.instruments import kernel_metrics
from .eventq import default_queue_class
from .errors import (
    DeadlockError,
    HangError,
    NotInProcessError,
    SimError,
    SimulationCrashed,
)
from .process import ProcState, SimProcess, current_process, maybe_current_process
from .rng import Lcg64

#: wake reasons the dispatch chain reports back to ``run()``
_IDLE = "idle"
_UNTIL = "until"
_FAILED = "failed"
_LIMIT = "limit"
_BUDGET = "budget"


class Simulator:
    """A discrete-event simulation run.

    Typical use::

        sim = Simulator()
        sim.spawn(body, arg1, name="rank0")
        sim.run()

    Inside ``body``, processes advance virtual time with
    :meth:`hold`, block with :meth:`passivate` and wake each other with
    :meth:`activate` -- or use the higher-level primitives in
    :mod:`repro.simkernel.sync`.
    """

    def __init__(self, seed: int = 0):
        #: Current virtual time in seconds.  A plain attribute, not a
        #: property: it is read on every scheduling call and every
        #: recorded event, where descriptor dispatch is measurable.
        self.now = 0.0
        #: pending *future* events, ordered by (time, seq); a calendar
        #: bucket queue by default, a plain heap with ATS_SCHEDULER=heap
        self._eventq = default_queue_class()()
        #: same-timestamp FIFO run queue (the queue-bypass fast path);
        #: also receives whole buckets via batched transfer
        self._ready: deque[tuple[float, int, SimProcess]] = deque()
        self._seq = 0
        self._pid = 0
        self.processes: list[SimProcess] = []
        self.rng = Lcg64(seed)
        self._running = False
        self._finished = False
        self._tearing_down = False
        self._until: float | None = None
        self._max_dispatches: int | None = None
        #: which wake reason the time horizon maps to: _UNTIL for a
        #: plain ``until`` stop, _BUDGET when a virtual-time budget is
        #: the binding limit.  One attribute instead of a second hot-path
        #: comparison in ``_next_runnable``.
        self._horizon_reason = _UNTIL
        self._budget: float | None = None
        # run() blocks on this (pre-held) lock while the dispatch chain
        # runs; the chain releases it exactly once, with _wake_reason
        # (and _failed_proc for crashes) set beforehand.
        self._main_wake = threading.Lock()
        self._main_wake.acquire()
        self._wake_reason: str | None = None
        self._failed_proc: SimProcess | None = None
        #: monotonically increasing count of process dispatches; a cheap
        #: proxy for "simulation effort" used by overhead benchmarks.
        self.dispatch_count = 0
        #: metrics bundle, or None while observability is disabled --
        #: the dispatch loop guards on it with a single branch.
        self._metrics = kernel_metrics()
        #: fault injector (see :mod:`repro.faults`), or None for the
        #: clean path.  Consulted only in :meth:`hold`, where positive
        #: delays are the semantic "work/communication takes time"
        #: statements -- zero-delay scheduling (sync primitives) stays
        #: untouched so perturbations never change program structure,
        #: only timing.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        delay: float = 0.0,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a process and schedule it to start ``delay`` from now.

        May be called before :meth:`run` or from inside a running
        process (fork/join style, as the OpenMP layer does).  Creation
        is cheap: the OS thread comes from the worker pool at first
        dispatch.
        """
        if self._finished:
            raise SimError("cannot spawn into a finished simulation")
        if delay < 0:
            raise ValueError("spawn delay must be non-negative")
        pid = self._pid
        self._pid += 1
        if name is None:
            name = f"proc{pid}"
        proc = SimProcess(self, fn, args, kwargs, name=name, pid=pid)
        self.processes.append(proc)
        self._schedule(proc, self.now + delay)
        if self._metrics is not None:
            self._metrics.processes.inc()
        return proc

    def _schedule(self, proc: SimProcess, at: float) -> None:
        if at < self.now:
            raise SimError(
                f"cannot schedule {proc.name} in the past "
                f"({at} < now {self.now})"
            )
        proc.state = ProcState.SCHEDULED
        seq = self._seq
        self._seq = seq + 1
        if at == self.now:
            self._ready.append((at, seq, proc))
        else:
            self._eventq.push(at, seq, proc)

    # ------------------------------------------------------------------
    # process-side API (callable only from inside a simulated process)
    # ------------------------------------------------------------------

    def hold(self, dt: float) -> None:
        """Advance the calling process's local time by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("hold duration must be non-negative")
        proc = current_process()
        self._check_owner(proc)
        if dt > 0.0 and self.fault_injector is not None:
            dt = self.fault_injector.perturb_hold(proc, dt)
        self._schedule(proc, self.now + dt)
        proc.waiting_on = ("hold(%g)", dt)
        proc._switch_out()
        proc.waiting_on = ""

    def passivate(self, reason: str = "passivate") -> None:
        """Block the calling process until another process activates it."""
        proc = current_process()
        self._check_owner(proc)
        proc.state = ProcState.PASSIVE
        proc.waiting_on = reason
        proc._switch_out()
        proc.waiting_on = ""

    def activate(self, proc: SimProcess, delay: float = 0.0) -> None:
        """Make a passive (or not-yet-started) process runnable.

        Callable from inside any process, or from outside before
        :meth:`run`.  Activating an already scheduled/running process is
        a no-op; activating a dead process is an error.
        """
        if delay < 0:
            raise ValueError("activate delay must be non-negative")
        self._check_owner(proc)
        if proc.state in (ProcState.PASSIVE, ProcState.CREATED):
            self._schedule(proc, self.now + delay)
        elif proc.state in (ProcState.SCHEDULED, ProcState.RUNNING):
            pass
        else:
            raise SimError(f"cannot activate dead process {proc.name}")

    def _check_owner(self, proc: SimProcess) -> None:
        if proc.sim is not self:
            raise SimError(
                f"process {proc.name} belongs to a different simulator"
            )

    # ------------------------------------------------------------------
    # the dispatch step (runs on whichever thread just gave up control)
    # ------------------------------------------------------------------

    def _next_runnable(self) -> SimProcess | None:
        """Pop the next dispatchable process and advance the clock.

        Returns ``None`` when the chain must stop, with
        ``_wake_reason`` set to why (queues empty, ``until`` horizon,
        dispatch limit).  Merges the FIFO run queue with the pending
        queue in exact ``(time, seq)`` order.  Two invariants make the
        merge cheap:

        * ready entries always carry the current timestamp, so a
          pending entry wins only when same-time with a smaller
          sequence number (it was scheduled before the clock reached
          that instant, hence before every same-time ready entry
          *after* its own bucket head),
        * the clock only advances while the FIFO is empty, so advancing
          can batch-transfer the earliest bucket -- every event of the
          new instant -- onto the FIFO in one step and serve the rest
          through the cheap FIFO path.
        """
        q = self._eventq
        ready = self._ready
        until = self._until
        while True:
            if ready:
                at, rseq, proc = ready[0]
                head = q.head()
                if head is not None and (
                    head[0] < at or (head[0] == at and head[1] < rseq)
                ):
                    if until is not None and head[0] > until:
                        self._wake_reason = self._horizon_reason
                        return None
                    at, _seq, proc = q.pop()
                else:
                    if until is not None and at > until:
                        self._wake_reason = self._horizon_reason
                        return None
                    ready.popleft()
            elif len(q):
                head = q.head()
                if until is not None and head[0] > until:
                    self._wake_reason = self._horizon_reason
                    return None
                q.transfer(ready)
                continue  # serve the transferred bucket via the FIFO
            else:
                self._wake_reason = _IDLE
                return None
            if proc.state is not ProcState.SCHEDULED:
                # Stale entry (process was killed meanwhile).
                continue
            self.now = at
            self.dispatch_count += 1
            m = self._metrics
            if m is not None:
                m.dispatches.inc()
                m.queue_depth.observe(len(ready) + len(q))
            if (
                self._max_dispatches is not None
                and self.dispatch_count > self._max_dispatches
            ):
                self._wake_reason = _LIMIT
                return None
            return proc

    def _chain_from(self, proc: SimProcess) -> bool:
        """Dispatch the successor of a process that is blocking.

        Returns True when the successor is ``proc`` itself (it was the
        earliest queued entry), in which case the caller simply keeps
        running -- no handoff at all.  Otherwise the successor's worker
        is woken (or ``run()`` is, when the chain ends) and the caller
        must block.
        """
        nxt = self._next_runnable()
        m = self._metrics
        if nxt is proc:
            proc.state = ProcState.RUNNING
            if m is not None:
                m.continuations.inc()
            return True
        if nxt is not None:
            if m is not None:
                m.handoffs.inc()
            nxt._transfer_in()
        else:
            self._main_wake.release()
        return False

    def _dispatch_onward(self) -> None:
        """Dispatch the successor of a process that finished (worker loop)."""
        nxt = self._next_runnable()
        if nxt is not None:
            if self._metrics is not None:
                self._metrics.handoffs.inc()
            nxt._transfer_in()
        else:
            self._main_wake.release()

    def _report_failure(self, proc: SimProcess) -> None:
        """Stop the chain: a process body raised (worker loop side)."""
        self._wake_reason = _FAILED
        self._failed_proc = proc
        self._main_wake.release()

    # ------------------------------------------------------------------
    # the run entry point
    # ------------------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        max_dispatches: int | None = None,
        budget: float | None = None,
    ) -> float:
        """Run the simulation to completion and return the final time.

        ``until`` stops the clock at a given virtual time (remaining
        events stay queued).  ``budget`` is a virtual-time watchdog: a
        simulation still dispatching past it is declared hung and torn
        down with a :class:`HangError` carrying a structured
        :class:`~repro.simkernel.watchdog.HangReport`.
        ``max_dispatches`` bounds scheduler steps as a runaway guard
        (also a :class:`HangError`).  Raises :class:`DeadlockError`
        (with a :class:`~repro.simkernel.watchdog.DeadlockReport`) if
        all remaining processes are blocked forever, and
        :class:`SimulationCrashed` (chained to the original traceback)
        if any process raises.
        """
        if self._running:
            raise SimError("run() is not reentrant")
        if self._finished:
            raise SimError("simulation already finished")
        if maybe_current_process() is not None:
            raise SimError("run() must not be called from inside a process")
        self._running = True
        # Fold ``budget`` into the single ``until`` horizon comparison
        # the dispatch loop already performs: the earlier limit wins,
        # and _horizon_reason records which semantics apply when it
        # trips.  Ties go to ``until`` (a graceful stop beats a hang).
        if budget is not None and (until is None or budget < until):
            self._until = budget
            self._horizon_reason = _BUDGET
        else:
            self._until = until
            self._horizon_reason = _UNTIL
        self._budget = budget
        self._max_dispatches = max_dispatches
        try:
            first = self._next_runnable()
            if first is not None:
                first._transfer_in()
                self._main_wake.acquire()  # sleep until the chain ends
            reason = self._wake_reason
            if reason == _UNTIL:
                self.now = until
                return self.now
            if reason == _BUDGET:
                from .watchdog import build_hang_report

                report = build_hang_report(self, budget=budget)
                self._teardown_all()
                raise HangError(
                    f"simulation hang: {report.reason} at "
                    f"t={report.time:.6f}\n{report.format()}",
                    report=report,
                )
            if reason == _LIMIT:
                from .watchdog import build_hang_report

                report = build_hang_report(
                    self, max_dispatches=max_dispatches
                )
                self._teardown_all()
                raise HangError(
                    f"exceeded max_dispatches={max_dispatches}",
                    report=report,
                )
            if reason == _FAILED:
                failed = self._failed_proc
                assert failed is not None
                original = failed.exception
                assert original is not None
                self._teardown_all()
                raise SimulationCrashed(
                    failed.name, original
                ) from original
            stuck = [
                f"{p.name} ({p.waiting_reason() or 'passive'})"
                for p in self.processes
                if p.state is ProcState.PASSIVE
            ]
            if stuck:
                from .watchdog import build_deadlock_report

                report = build_deadlock_report(self)
                self._teardown_all()
                raise DeadlockError(stuck, report=report)
            self._finished = True
            return self.now
        finally:
            self._running = False

    def _teardown_all(self) -> None:
        self._tearing_down = True
        for proc in self.processes:
            proc._teardown()
        self._finished = True

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def results(self) -> dict[str, Any]:
        """Map process name -> return value for finished processes."""
        return {
            p.name: p.result
            for p in self.processes
            if p.state is ProcState.FINISHED
        }


# ----------------------------------------------------------------------
# convenience module-level helpers (operate on the caller's simulator)
# ----------------------------------------------------------------------

def current_sim() -> Simulator:
    """Return the simulator owning the calling process."""
    return current_process().sim


def now() -> float:
    """Virtual time as seen by the calling process."""
    return current_sim().now


def hold(dt: float) -> None:
    """Advance the calling process's virtual time by ``dt`` seconds."""
    current_sim().hold(dt)


def passivate(reason: str = "passivate") -> None:
    """Block the calling process until activated."""
    current_sim().passivate(reason)


def activate(proc: SimProcess, delay: float = 0.0) -> None:
    """Wake ``proc`` (from within a simulated process)."""
    proc.sim.activate(proc, delay)
