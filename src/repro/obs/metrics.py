"""Label-aware metrics registry: counters, gauges, histograms.

The runtime layers (:mod:`repro.simkernel`, :mod:`repro.simmpi`,
:mod:`repro.simomp`, :mod:`repro.trace`, :mod:`repro.analysis`) record
host-side telemetry here; the exporters in :mod:`repro.obs.export`
render a registry as Prometheus text exposition or a JSON snapshot.

Design constraints, in order of importance:

1. **Determinism is untouchable.**  Metrics only *observe* the
   simulation; nothing here may feed back into virtual time, event
   ordering or RNG streams.  Per-seed trace dumps must stay
   byte-identical with metrics on or off.
2. **Disabled mode costs nothing.**  The global switch defaults to
   off.  Instrument bundles (:mod:`repro.obs.instruments`) resolve to
   ``None`` when disabled, so hot paths pay one attribute load and an
   ``is not None`` branch -- no allocation, no method call.  Code that
   wants an unconditional handle can use :func:`null_registry`, whose
   metric objects are shared no-op singletons.
3. **Enabled mode stays cheap.**  ``Counter.inc`` is one float add;
   ``Histogram.observe`` is a linear scan over a handful of fixed
   bucket boundaries plus one uncontended lock.

Thread-safety contract (audited for the analysis service, which
scrapes the registry from an event loop while pooled worker threads
record):

* ``Counter``/``Gauge`` hold a single float; reads and single-opcode
  writes are atomic under the GIL, so a scrape can never observe a
  torn scalar.  (Concurrent ``inc`` from many threads may still lose
  updates -- the simulation kernel's one-runnable-thread guarantee
  covers the sim-side families, and service-side counters are only
  incremented from the event-loop thread.)
* ``Histogram`` updates three fields per observation; without mutual
  exclusion a scrape could see ``count`` without the matching bucket
  increment.  ``observe`` and :meth:`Histogram.snapshot` therefore
  share a per-histogram lock, and exporters only read through
  ``snapshot()``.
* Family and child creation mutate dicts that exporters iterate, so
  creation takes a registry-wide lock and iteration happens over
  locked copies (:meth:`MetricFamily.samples`,
  :meth:`MetricsRegistry.collect`).  The steady-state recording path
  (cached child, ``inc``/``observe``) never touches the registry lock.

Metrics are grouped into *families* (one name, one type, fixed label
names); a family with labels hands out per-label-value children via
:meth:`MetricFamily.labels`, which are cached so steady-state recording
allocates nothing.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "metrics_enabled",
    "null_registry",
    "quantile_from_counts",
    "reset_metrics",
    "set_metrics_enabled",
]

#: default histogram boundaries -- wall/virtual seconds, log-spaced
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

LabelValues = Tuple[str, ...]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the total (harvest-style collectors only)."""
        self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with cumulative-bucket export.

    ``boundaries`` are the upper bounds of the finite buckets; the
    implicit ``+Inf`` bucket is always present.  ``counts[i]`` is the
    *non*-cumulative count of observations ``<= boundaries[i]`` (the
    exporter accumulates), ``counts[-1]`` the overflow count.
    """

    __slots__ = ("boundaries", "counts", "sum", "count", "_lock")

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram boundaries must be sorted")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.boundaries):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """A consistent ``(counts, sum, count)`` view for exporters.

        Taken under the observation lock so a scrape never sees a
        ``count`` without its matching bucket increment (a torn read).
        """
        with self._lock:
            return list(self.counts), self.sum, self.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        The estimate assumes observations are uniformly distributed
        within their bucket (the standard Prometheus
        ``histogram_quantile`` model): the first finite bucket
        interpolates from 0, and any rank landing in the ``+Inf``
        overflow bucket clamps to the highest finite boundary.
        Returns ``None`` for an empty histogram.
        """
        counts, _, total = self.snapshot()
        return quantile_from_counts(self.boundaries, counts, total, q)


def quantile_from_counts(
    boundaries: Sequence[float],
    counts: Sequence[int],
    total: int,
    q: float,
) -> Optional[float]:
    """Linear bucket interpolation over an already-taken snapshot.

    Shared by :meth:`Histogram.quantile` and the JSON exporter (which
    derives p50/p95/p99 from the one snapshot it is already writing,
    so the reported quantiles always match the reported buckets).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total == 0:
        return None
    target = q * total
    cumulative = 0
    lower = 0.0
    for i, bound in enumerate(boundaries):
        in_bucket = counts[i]
        if cumulative + in_bucket >= target:
            if in_bucket == 0:
                return bound
            fraction = (target - cumulative) / in_bucket
            return lower + fraction * (bound - lower)
        cumulative += in_bucket
        lower = bound
    return boundaries[-1]


class _NoopMetric:
    """Shared do-nothing stand-in for every metric type.

    A single instance serves as counter, gauge, histogram *and* family:
    ``labels()`` returns itself, every recording method is a no-op.
    Handed out by :func:`null_registry` so disabled-mode call sites
    never allocate.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Tuple[List[int], float, int]:
        return [], 0.0, 0

    def quantile(self, q: float) -> None:
        return None

    def labels(self, **kwargs: str) -> "_NoopMetric":
        return self


NOOP_METRIC = _NoopMetric()


class MetricFamily:
    """One named metric: a type, help text, label names, children.

    Unlabeled families have exactly one child (empty label tuple);
    labeled ones create children on first use of each label-value
    combination.  Children are plain :class:`Counter`/:class:`Gauge`/
    :class:`Histogram` objects, cached so repeated ``labels()`` calls
    return the same instance.
    """

    __slots__ = (
        "name", "help", "type", "labelnames", "buckets", "children",
        "_lock",
    )

    _TYPES = ("counter", "gauge", "histogram")

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if type not in self._TYPES:
            raise ValueError(f"unknown metric type {type!r}")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = tuple(labelnames)
        self.buckets = (
            tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        self.children: Dict[LabelValues, object] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self.children[()] = self._new_child()

    def _new_child(self):
        if self.type == "counter":
            return Counter()
        if self.type == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: str):
        """Child metric for the given label values (cached)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self.children.get(key)
        if child is None:
            # Creation is rare; take the family lock so a concurrent
            # exporter never iterates a dict mid-mutation and two
            # threads never race to install different children.
            with self._lock:
                child = self.children.get(key)
                if child is None:
                    child = self.children[key] = self._new_child()
        return child

    @property
    def default(self):
        """The single child of an unlabeled family."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels()")
        return self.children[()]

    def samples(self) -> Iterator[Tuple[LabelValues, object]]:
        """(label values, child) pairs in insertion order.

        Iterates a locked copy, so exporters are safe against a worker
        thread creating a new labeled child mid-scrape.
        """
        with self._lock:
            return iter(list(self.children.items()))


class MetricsRegistry:
    """A collection of metric families plus harvest-time collectors.

    ``counter``/``gauge``/``histogram`` declare (or re-fetch) a family;
    for unlabeled families they return the child metric directly, so
    call sites read naturally::

        dispatches = registry.counter(
            "ats_sim_dispatches_total", "Scheduler dispatch steps")
        dispatches.inc()

    Collectors registered via :meth:`register_collector` run at
    :meth:`collect` time; they harvest counters that live as plain
    attributes on runtime objects (e.g. the worker pool) so the hot
    paths never touch the registry.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        #: per-subsystem instrument-bundle cache (see instruments.py)
        self._bundles: Dict[str, object] = {}
        #: guards family declaration and collect-time iteration
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------

    def _family(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, help, type, labelnames, buckets
                    )
                    self._families[name] = family
                    return family
        if family.type != type or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name} re-declared with different "
                f"type/labels"
            )
        return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()):
        family = self._family(name, help, "counter", labelnames)
        return family if labelnames else family.default

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()):
        family = self._family(name, help, "gauge", labelnames)
        return family if labelnames else family.default

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        family = self._family(name, help, "histogram", labelnames, buckets)
        return family if labelnames else family.default

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def register_collector(
        self, fn: Callable[["MetricsRegistry"], None]
    ) -> None:
        self._collectors.append(fn)

    def collect(self) -> list[MetricFamily]:
        """Run collectors, then return families sorted by name.

        The returned list is built from a locked copy of the family
        table, so a scrape that overlaps concurrent family declaration
        sees a consistent (if momentarily stale) set.
        """
        for fn in self._collectors:
            fn(self)
        with self._lock:
            families = dict(self._families)
        return [families[k] for k in sorted(families)]


class _NullRegistry:
    """Registry stand-in whose every metric is the shared no-op."""

    __slots__ = ()

    def counter(self, name, help, labelnames=()):
        return NOOP_METRIC

    def gauge(self, name, help, labelnames=()):
        return NOOP_METRIC

    def histogram(self, name, help, labelnames=(), buckets=None):
        return NOOP_METRIC

    def register_collector(self, fn):
        pass

    def collect(self):
        return []


_NULL_REGISTRY = _NullRegistry()

# ----------------------------------------------------------------------
# the process-global switch and registry
# ----------------------------------------------------------------------

_enabled = os.environ.get("ATS_METRICS", "").lower() in ("1", "true", "on")
_registry = MetricsRegistry()


def metrics_enabled() -> bool:
    """Whether the global metrics switch is on."""
    return _enabled


def set_metrics_enabled(flag: bool) -> bool:
    """Flip the global switch; returns the previous state.

    Instrument bundles are resolved when runtime objects are
    *constructed*, so enable metrics before building simulators /
    worlds / recorders (the CLI does this before launching a run).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def get_registry() -> MetricsRegistry:
    """The process-global registry (real even while disabled)."""
    return _registry


def null_registry() -> _NullRegistry:
    """The shared no-op registry (all metrics are one singleton)."""
    return _NULL_REGISTRY


def reset_metrics() -> MetricsRegistry:
    """Swap in a fresh global registry (test isolation); returns it.

    The enabled flag is left as-is.  Existing instrument bundles keep
    pointing at the old registry; runtime objects constructed after the
    reset bind to the new one.
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry
