"""The benchmark/validation-suite and application collections.

Paper chapters 2 and 4 are curated link collections: validation suites
(to check semantics preservation), benchmark suites (to estimate
overhead) and real applications with documented performance behaviour.
This module encodes those collections as structured, queryable data --
the "WWW collection of resources" the ATS framework was to publish --
including the paper's full initial list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class SuiteEntry:
    """One catalogued external suite or application."""

    name: str
    category: str  # validation | benchmark | application
    paradigm: str  # mpi | pvm | openmp | hybrid | any
    url: str
    description: str = ""
    origin: str = ""


#: paper section 2.1 -- MPI validation suites
_ENTRIES: Tuple[SuiteEntry, ...] = (
    SuiteEntry(
        "MPICH test suite", "validation", "mpi",
        "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/mpich-test.tar.gz",
        "MPICH's own conformance tests", "Argonne National Laboratory",
    ),
    SuiteEntry(
        "IBM MPI test suite", "validation", "mpi",
        "http://www-unix.mcs.anl.gov/mpi/mpi-test/ibmsuite.html",
        "IBM's MPI test suite", "IBM",
    ),
    SuiteEntry(
        "MPICH version of the IBM test suite", "validation", "mpi",
        "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/mpichibm.tar",
        "IBM suite adapted to MPICH", "ANL and IBM",
    ),
    SuiteEntry(
        "Intel MPI 1.1 test suite", "validation", "mpi",
        "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/intel-mpitest.tgz",
        "comprehensive test suite for MPI 1.1", "Intel",
    ),
    SuiteEntry(
        "MPICH version of the Intel test suite", "validation", "mpi",
        "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/intel-mpitest-patched.tgz",
        "Intel suite patched for MPICH", "ANL and Intel",
    ),
    # paper section 2.2 -- MPI benchmark suites
    SuiteEntry(
        "PARKBENCH", "benchmark", "mpi",
        "http://www.netlib.org/parkbench/",
        "PARallel Kernels and BENCHmarks", "PARKBENCH committee",
    ),
    SuiteEntry(
        "PMB", "benchmark", "mpi",
        "http://www.pallas.com/e/products/pmb/",
        "Pallas MPI Benchmarks", "Pallas",
    ),
    SuiteEntry(
        "SKaMPI", "benchmark", "mpi",
        "http://liinwww.ira.uka.de/~skampi/",
        "Special Karlsruher MPI-Benchmark", "U Karlsruhe",
    ),
    # paper section 2.3 -- PVM
    SuiteEntry(
        "PVM test suite", "validation", "pvm",
        "http://www.epm.ornl.gov/pvm/tester.html",
        "PVM's own tester", "Oak Ridge National Laboratory",
    ),
    SuiteEntry(
        "Grindstone", "validation", "pvm",
        "http://www.cs.umd.edu/~hollings/papers/grindstone.html",
        "a test suite for parallel performance tools (9 PVM programs); "
        "the closest predecessor of ATS",
        "U Maryland",
    ),
    # paper section 2.5 -- OpenMP benchmarks (2.4: no OpenMP validation
    # suites existed at the time of writing)
    SuiteEntry(
        "EPCC OpenMP Microbenchmarks", "benchmark", "openmp",
        "http://www.epcc.ed.ac.uk/research/openmpbench/openmp_index.html",
        "synchronization/scheduling overhead microbenchmarks", "EPCC",
    ),
    # paper section 2.6 -- hybrid
    SuiteEntry(
        "LAMB", "benchmark", "hybrid",
        "http://www.c3.lanl.gov/par_arch/CODES/LAMB/lamb.html",
        "Los Alamos MicroBenchmarks: MPI plus Pthreads/OpenMP, based on "
        "SKaMPI and the EPCC suite",
        "Los Alamos National Laboratory",
    ),
    # paper chapter 4 -- applications
    SuiteEntry(
        "NAS Parallel Benchmarks", "application", "mpi",
        "http://www.nas.nasa.gov/Software/NPB/",
        "the NPB suite of CFD kernels and pseudo-applications", "NASA",
    ),
    SuiteEntry(
        "ASCI Purple Benchmark Codes", "application", "mpi",
        "http://www.llnl.gov/asci/purple/benchmarks/limited/code_list.html",
        "procurement benchmark codes", "LLNL",
    ),
    SuiteEntry(
        "ASCI Blue Benchmark Codes", "application", "mpi",
        "http://www.llnl.gov/asci_benchmarks/asci/asci_code_list.html",
        "procurement benchmark codes", "LLNL",
    ),
)

VALID_CATEGORIES = ("validation", "benchmark", "application")


def all_entries() -> Tuple[SuiteEntry, ...]:
    """The complete catalog, in the paper's chapter order."""
    return _ENTRIES


def find_suites(
    category: Optional[str] = None,
    paradigm: Optional[str] = None,
) -> list[SuiteEntry]:
    """Query the catalog by category and/or paradigm."""
    if category is not None and category not in VALID_CATEGORIES:
        raise ValueError(
            f"unknown category {category!r}; one of {VALID_CATEGORIES}"
        )
    out = []
    for entry in _ENTRIES:
        if category is not None and entry.category != category:
            continue
        if paradigm is not None and entry.paradigm != paradigm:
            continue
        out.append(entry)
    return out


def format_catalog() -> str:
    """Render the catalog the way the paper's chapter 2 lists it."""
    lines = []
    for category in VALID_CATEGORIES:
        lines.append(f"== {category} suites ==")
        for entry in find_suites(category=category):
            lines.append(
                f"  [{entry.paradigm:>6}] {entry.name} -- "
                f"{entry.description} ({entry.url})"
            )
    return "\n".join(lines) + "\n"
