"""CampaignSpec validation and (hypothesis) round-trip invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.synth import (
    BANDS,
    PLACEMENTS,
    STRATEGIES,
    CampaignSpec,
    NoiseConfig,
    SynthError,
)

# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def test_name_collision_with_registered_program_rejected():
    with pytest.raises(SynthError, match="collides"):
        CampaignSpec(name="late_sender")


def test_bad_names_rejected():
    for bad in ("", "a/b", "a|b", "a b", "/x"):
        with pytest.raises(SynthError):
            CampaignSpec(name=bad)


def test_bad_strategy_generator_band_placement_rejected():
    with pytest.raises(SynthError, match="strategy"):
        CampaignSpec(name="c1", strategy="exhaustive")
    with pytest.raises(SynthError, match="generator"):
        CampaignSpec(name="c1", generator="llm")
    with pytest.raises(SynthError, match="band"):
        CampaignSpec(name="c1", bands=("extreme",))
    with pytest.raises(SynthError, match="placement"):
        CampaignSpec(name="c1", placements=("middle",))


def test_bad_counts_rejected():
    with pytest.raises(SynthError):
        CampaignSpec(name="c1", scenarios=0)
    with pytest.raises(SynthError):
        CampaignSpec(name="c1", max_properties=0)
    with pytest.raises(SynthError):
        CampaignSpec(name="c1", sizes=())
    with pytest.raises(SynthError):
        CampaignSpec(name="c1", noise=NoiseConfig(magnitudes=()))


def test_from_dict_requires_name_and_rejects_unknown_keys():
    with pytest.raises(SynthError, match="name"):
        CampaignSpec.from_dict({})
    with pytest.raises(SynthError, match="unknown"):
        CampaignSpec.from_dict({"name": "c1", "surprise": 1})


def test_scenario_names_carry_campaign_prefix():
    spec = CampaignSpec(name="c1")
    assert spec.scenario_name(7) == "c1/00007"


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------

_spec_strategy = st.builds(
    CampaignSpec,
    name=st.from_regex(r"[a-z][a-z0-9_-]{0,12}", fullmatch=True),
    strategy=st.sampled_from(STRATEGIES),
    scenarios=st.integers(min_value=1, max_value=500),
    skeletons=st.lists(
        st.sampled_from(("none", "jacobi", "pipeline")),
        min_size=1, max_size=2, unique=True,
    ).map(tuple),
    sizes=st.lists(
        st.integers(min_value=2, max_value=16),
        min_size=1, max_size=3, unique=True,
    ).map(tuple),
    threads=st.integers(min_value=1, max_value=4),
    bands=st.lists(
        st.sampled_from(BANDS), min_size=1, max_size=3, unique=True
    ).map(tuple),
    placements=st.lists(
        st.sampled_from(PLACEMENTS), min_size=1, max_size=3, unique=True
    ).map(tuple),
    max_properties=st.integers(min_value=1, max_value=3),
    noise=st.builds(
        NoiseConfig,
        plan=st.sampled_from((FaultPlan(), FaultPlan.default())),
        magnitudes=st.lists(
            st.floats(
                min_value=0.0, max_value=2.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=3,
        ).map(tuple),
    ),
    max_failures=st.integers(min_value=-1, max_value=10),
    max_retries=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**63),
    adversarial_rounds=st.integers(min_value=0, max_value=3),
    adversarial_top=st.integers(min_value=1, max_value=5),
)


@settings(max_examples=60, deadline=None)
@given(spec=_spec_strategy)
def test_campaign_spec_round_trips(spec):
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.to_dict() == spec.to_dict()


@settings(max_examples=30, deadline=None)
@given(spec=_spec_strategy)
def test_campaign_spec_dict_is_json_safe(spec):
    import json

    assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()
