"""Label-aware metrics registry: counters, gauges, histograms.

The runtime layers (:mod:`repro.simkernel`, :mod:`repro.simmpi`,
:mod:`repro.simomp`, :mod:`repro.trace`, :mod:`repro.analysis`) record
host-side telemetry here; the exporters in :mod:`repro.obs.export`
render a registry as Prometheus text exposition or a JSON snapshot.

Design constraints, in order of importance:

1. **Determinism is untouchable.**  Metrics only *observe* the
   simulation; nothing here may feed back into virtual time, event
   ordering or RNG streams.  Per-seed trace dumps must stay
   byte-identical with metrics on or off.
2. **Disabled mode costs nothing.**  The global switch defaults to
   off.  Instrument bundles (:mod:`repro.obs.instruments`) resolve to
   ``None`` when disabled, so hot paths pay one attribute load and an
   ``is not None`` branch -- no allocation, no method call.  Code that
   wants an unconditional handle can use :func:`null_registry`, whose
   metric objects are shared no-op singletons.
3. **Enabled mode stays cheap.**  ``Counter.inc`` is one float add;
   ``Histogram.observe`` is a linear scan over a handful of fixed
   bucket boundaries.  No locks: the simulation kernel guarantees at
   most one runnable thread, and CPython's GIL covers the rest.

Metrics are grouped into *families* (one name, one type, fixed label
names); a family with labels hands out per-label-value children via
:meth:`MetricFamily.labels`, which are cached so steady-state recording
allocates nothing.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "metrics_enabled",
    "null_registry",
    "reset_metrics",
    "set_metrics_enabled",
]

#: default histogram boundaries -- wall/virtual seconds, log-spaced
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

LabelValues = Tuple[str, ...]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the total (harvest-style collectors only)."""
        self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with cumulative-bucket export.

    ``boundaries`` are the upper bounds of the finite buckets; the
    implicit ``+Inf`` bucket is always present.  ``counts[i]`` is the
    *non*-cumulative count of observations ``<= boundaries[i]`` (the
    exporter accumulates), ``counts[-1]`` the overflow count.
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram boundaries must be sorted")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class _NoopMetric:
    """Shared do-nothing stand-in for every metric type.

    A single instance serves as counter, gauge, histogram *and* family:
    ``labels()`` returns itself, every recording method is a no-op.
    Handed out by :func:`null_registry` so disabled-mode call sites
    never allocate.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **kwargs: str) -> "_NoopMetric":
        return self


NOOP_METRIC = _NoopMetric()


class MetricFamily:
    """One named metric: a type, help text, label names, children.

    Unlabeled families have exactly one child (empty label tuple);
    labeled ones create children on first use of each label-value
    combination.  Children are plain :class:`Counter`/:class:`Gauge`/
    :class:`Histogram` objects, cached so repeated ``labels()`` calls
    return the same instance.
    """

    __slots__ = ("name", "help", "type", "labelnames", "buckets", "children")

    _TYPES = ("counter", "gauge", "histogram")

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if type not in self._TYPES:
            raise ValueError(f"unknown metric type {type!r}")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = tuple(labelnames)
        self.buckets = (
            tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        self.children: Dict[LabelValues, object] = {}
        if not self.labelnames:
            self.children[()] = self._new_child()

    def _new_child(self):
        if self.type == "counter":
            return Counter()
        if self.type == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: str):
        """Child metric for the given label values (cached)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = self._new_child()
        return child

    @property
    def default(self):
        """The single child of an unlabeled family."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels()")
        return self.children[()]

    def samples(self) -> Iterator[Tuple[LabelValues, object]]:
        """(label values, child) pairs in insertion order."""
        return iter(self.children.items())


class MetricsRegistry:
    """A collection of metric families plus harvest-time collectors.

    ``counter``/``gauge``/``histogram`` declare (or re-fetch) a family;
    for unlabeled families they return the child metric directly, so
    call sites read naturally::

        dispatches = registry.counter(
            "ats_sim_dispatches_total", "Scheduler dispatch steps")
        dispatches.inc()

    Collectors registered via :meth:`register_collector` run at
    :meth:`collect` time; they harvest counters that live as plain
    attributes on runtime objects (e.g. the worker pool) so the hot
    paths never touch the registry.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        #: per-subsystem instrument-bundle cache (see instruments.py)
        self._bundles: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------

    def _family(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.type != type or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name} re-declared with different "
                    f"type/labels"
                )
            return family
        family = MetricFamily(name, help, type, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()):
        family = self._family(name, help, "counter", labelnames)
        return family if labelnames else family.default

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()):
        family = self._family(name, help, "gauge", labelnames)
        return family if labelnames else family.default

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        family = self._family(name, help, "histogram", labelnames, buckets)
        return family if labelnames else family.default

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def register_collector(
        self, fn: Callable[["MetricsRegistry"], None]
    ) -> None:
        self._collectors.append(fn)

    def collect(self) -> list[MetricFamily]:
        """Run collectors, then return families sorted by name."""
        for fn in self._collectors:
            fn(self)
        return [self._families[k] for k in sorted(self._families)]


class _NullRegistry:
    """Registry stand-in whose every metric is the shared no-op."""

    __slots__ = ()

    def counter(self, name, help, labelnames=()):
        return NOOP_METRIC

    def gauge(self, name, help, labelnames=()):
        return NOOP_METRIC

    def histogram(self, name, help, labelnames=(), buckets=None):
        return NOOP_METRIC

    def register_collector(self, fn):
        pass

    def collect(self):
        return []


_NULL_REGISTRY = _NullRegistry()

# ----------------------------------------------------------------------
# the process-global switch and registry
# ----------------------------------------------------------------------

_enabled = os.environ.get("ATS_METRICS", "").lower() in ("1", "true", "on")
_registry = MetricsRegistry()


def metrics_enabled() -> bool:
    """Whether the global metrics switch is on."""
    return _enabled


def set_metrics_enabled(flag: bool) -> bool:
    """Flip the global switch; returns the previous state.

    Instrument bundles are resolved when runtime objects are
    *constructed*, so enable metrics before building simulators /
    worlds / recorders (the CLI does this before launching a run).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def get_registry() -> MetricsRegistry:
    """The process-global registry (real even while disabled)."""
    return _registry


def null_registry() -> _NullRegistry:
    """The shared no-op registry (all metrics are one singleton)."""
    return _NULL_REGISTRY


def reset_metrics() -> MetricsRegistry:
    """Swap in a fresh global registry (test isolation); returns it.

    The enabled flag is left as-is.  Existing instrument bundles keep
    pointing at the old registry; runtime objects constructed after the
    reset bind to the new one.
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry
