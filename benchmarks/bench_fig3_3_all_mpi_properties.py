"""F3.3 -- Figure 3.3: all MPI property functions in one program.

"Figure 3.3 shows a Vampir timeline of an MPI test program which simply
calls all currently defined MPI property functions with different
severities and repetition factors.  This program can be used to quickly
determine how many different performance properties can be detected by
a performance tool."

Shape claims: the chain runs to completion, every constituent property
is detected, and each is localized at its own property function's call
path (the phases are separable in time, as in the Vampir display).
"""

from repro.analysis import analyze_run, format_summary_table
from repro.core import (
    ALL_MPI_PROPERTY_CHAIN,
    get_property,
    run_all_mpi_properties,
)

THRESHOLD = 0.005


def run_chain():
    result = run_all_mpi_properties(size=8)
    return result, analyze_run(result)


def test_fig3_3_chain_detects_all_properties(benchmark, run_bench):
    result, analysis = run_bench(benchmark, run_chain)
    print("\nF3.3 timeline (all MPI property functions in sequence):")
    print(result.timeline(width=110))
    print(format_summary_table(analysis))
    detected = set(analysis.detected(THRESHOLD))
    expected = set()
    for name in ALL_MPI_PROPERTY_CHAIN:
        expected |= set(get_property(name).expected)
    print(f"expected {len(expected)} properties, "
          f"detected {len(detected & expected)} of them")
    assert expected <= detected


def test_fig3_3_properties_localized_at_own_functions(benchmark):
    _, analysis = benchmark.pedantic(run_chain, rounds=1, iterations=1)
    rows = []
    for name in ALL_MPI_PROPERTY_CHAIN:
        for prop in get_property(name).expected:
            top_path = next(iter(analysis.callpaths_of(prop)))
            rows.append((prop, " / ".join(top_path), name in top_path))
    print("\nproperty -> located call path:")
    for prop, path, ok in rows:
        print(f"  {prop:<22} {path}  {'ok' if ok else 'WRONG'}")
    assert all(ok for _, _, ok in rows)


def test_fig3_3_phases_are_time_separated(benchmark):
    """In the timeline, the property phases follow one another; the
    enter times of successive property-function regions are ordered."""
    result, _ = benchmark.pedantic(run_chain, rounds=1, iterations=1)
    from repro.trace import Enter

    first_enter = {}
    for e in result.events:
        if isinstance(e, Enter) and e.region in ALL_MPI_PROPERTY_CHAIN:
            first_enter.setdefault(e.region, e.time)
    times = [first_enter[name] for name in ALL_MPI_PROPERTY_CHAIN]
    assert times == sorted(times)
    print("\nphase start times:",
          " ".join(f"{t:.3f}" for t in times))
