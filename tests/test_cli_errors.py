"""CLI error paths: every expected failure is one stderr line, exit 2.

Regression tests for the crash reports: missing trace file, empty or
header-corrupt trace, unknown property name and unknown distribution
name used to surface as raw tracebacks.
"""

import json

from repro.cli import main


def _run(capsys, *argv):
    rc = main(list(argv))
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def _write_trace(tmp_path, *cli_args):
    trace = tmp_path / "t.jsonl"
    assert main([
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--trace-out", str(trace), *cli_args,
    ]) == 0
    return trace


def assert_clean_error(rc, err, needle):
    assert rc == 2
    assert err.count("\n") == 1, f"expected one stderr line, got: {err!r}"
    assert err.startswith("ats: error: ")
    assert needle in err
    assert "Traceback" not in err


def test_analyze_missing_file(capsys):
    rc, _, err = _run(capsys, "analyze", "/missing/file.trace")
    assert_clean_error(rc, err, "trace file not found: /missing/file.trace")


def test_analyze_empty_directory(tmp_path, capsys):
    # Directories expand to their *.jsonl / *.jsonl.gz traces; an
    # empty one is an error rather than a silent no-op.
    rc, _, err = _run(capsys, "analyze", str(tmp_path))
    assert_clean_error(rc, err, "no trace files")


def test_analyze_empty_trace(tmp_path, capsys):
    empty = tmp_path / "empty.trace"
    empty.touch()
    rc, _, err = _run(capsys, "analyze", str(empty))
    assert_clean_error(rc, err, f"{empty}: empty trace file")


def test_analyze_corrupt_header(tmp_path, capsys):
    bad = tmp_path / "bad.trace"
    bad.write_text("this is not json\n")
    rc, _, err = _run(capsys, "analyze", str(bad))
    assert_clean_error(rc, err, f"{bad}:1: corrupt header")


def test_analyze_wrong_format(tmp_path, capsys):
    bad = tmp_path / "bad.trace"
    bad.write_text('{"format": "something-else"}\n')
    rc, _, err = _run(capsys, "analyze", str(bad))
    assert_clean_error(rc, err, "not an ats-trace file")


def test_run_unknown_program_suggests(capsys):
    rc, _, err = _run(capsys, "run", "late_sneder")
    assert_clean_error(rc, err, "unknown property function 'late_sneder'")
    assert "did you mean 'late_sender'?" in err


def test_metrics_and_sweep_unknown_program(capsys):
    for argv in (["metrics", "nope"], ["sweep", "nope"]):
        rc, _, err = _run(capsys, *argv)
        assert_clean_error(rc, err, "unknown property function 'nope'")


def test_run_unknown_distribution_suggests(capsys):
    rc, _, err = _run(
        capsys, "run", "imbalance_at_mpi_barrier", "--dist", "blok2"
    )
    assert_clean_error(rc, err, "unknown distribution 'blok2'")
    assert "did you mean 'block2'?" in err


def test_run_dist_on_distless_property(capsys):
    rc, _, err = _run(capsys, "run", "late_sender", "--dist", "block2")
    assert_clean_error(rc, err, "takes no distribution parameter")


def test_run_dist_bad_values(capsys):
    rc, _, err = _run(
        capsys, "run", "imbalance_at_mpi_barrier", "--dist", "block2:x,y"
    )
    assert_clean_error(rc, err, "expected SHAPE:V1,V2,...")


def test_run_dist_wrong_arity(capsys):
    rc, _, err = _run(
        capsys, "run", "imbalance_at_mpi_barrier",
        "--dist", "peak:0.01,0.02",
    )
    assert_clean_error(rc, err, "does not take 2 value(s)")


def test_run_dist_override_works(capsys):
    rc, out, _ = _run(
        capsys, "run", "imbalance_at_mpi_barrier", "--size", "4",
        "--no-analyze", "--dist", "linear:0.002,0.02",
    )
    assert rc == 0
    assert "finished in" in out


def test_analyze_salvage_recovers_truncated_trace(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    capsys.readouterr()
    data = trace.read_bytes()
    trace.write_bytes(data[: int(len(data) * 0.8)])
    rc, _, err = _run(capsys, "analyze", str(trace))
    assert_clean_error(rc, err, "bad event")
    rc, out, err = _run(capsys, "analyze", str(trace), "--salvage")
    assert rc == 0
    assert "trace truncated mid-record" in err
    assert "ANALYSIS REPORT" in out


def test_robustness_cli_smoke(tmp_path, capsys):
    out_json = tmp_path / "rob.json"
    rc, out, _ = _run(
        capsys,
        "robustness", "--program", "late_sender",
        "--magnitudes", "0,0.5,1", "--seeds", "2", "--size", "4",
        "--threads", "2", "--json", str(out_json),
    )
    assert rc == 0
    assert "late_sender" in out
    data = json.loads(out_json.read_text())
    assert data["format"] == "ats-robustness"
    assert data["magnitudes"] == [0.0, 0.5, 1.0]
    assert len(data["curves"]["late_sender"]) == 3


def test_analyze_zero_event_trace_is_clean(tmp_path, capsys):
    # a header-only trace is legal: a run that recorded nothing
    trace = tmp_path / "empty-events.trace"
    trace.write_text('{"format": "ats-trace", "version": 1}\n')
    rc, out, err = _run(capsys, "analyze", str(trace))
    assert rc == 0
    assert "trace contains no event records; no findings" in out
    assert err == ""
    assert "Traceback" not in out
    # the profile path must not crash on zero events either
    rc, out, _ = _run(capsys, "analyze", str(trace), "--profile")
    assert rc == 0
    assert "no findings" in out


def test_run_time_budget_hang_reports_and_exits_2(capsys):
    rc, out, err = _run(
        capsys,
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--time-budget", "0.0001",
    )
    assert_clean_error(rc, err, "simulation hang")
    assert "HANG at" in out
    assert "rank 0" in out


def test_resume_requires_checkpoint(capsys):
    rc, _, err = _run(
        capsys, "robustness", "--program", "late_sender", "--resume"
    )
    assert_clean_error(rc, err, "--resume requires --checkpoint")


def test_existing_checkpoint_requires_resume(tmp_path, capsys):
    ck = tmp_path / "ck.jsonl"
    ck.write_text('{"format": "ats-checkpoint", "version": 1}\n')
    rc, _, err = _run(
        capsys,
        "robustness", "--program", "late_sender",
        "--checkpoint", str(ck),
    )
    assert_clean_error(rc, err, "pass --resume")


def test_robustness_checkpoint_resume_round_trip(tmp_path, capsys):
    argv = [
        "robustness", "--program", "late_sender",
        "--magnitudes", "0,1", "--seeds", "1", "--size", "4",
        "--threads", "2",
    ]
    full = tmp_path / "full.json"
    assert main([*argv, "--json", str(full)]) == 0
    ck = tmp_path / "ck.jsonl"
    first = tmp_path / "first.json"
    assert main([
        *argv, "--json", str(first), "--checkpoint", str(ck),
    ]) == 0
    resumed = tmp_path / "resumed.json"
    assert main([
        *argv, "--json", str(resumed),
        "--checkpoint", str(ck), "--resume",
    ]) == 0
    capsys.readouterr()
    assert first.read_bytes() == full.read_bytes()
    assert resumed.read_bytes() == full.read_bytes()


def test_robustness_cli_rejects_bad_args(capsys):
    rc, _, err = _run(capsys, "robustness", "--magnitudes", "0,zap")
    assert_clean_error(rc, err, "bad --magnitudes value")
    rc, _, err = _run(capsys, "robustness", "--seeds", "0")
    assert_clean_error(rc, err, "--seeds must be >= 1")
    rc, _, err = _run(capsys, "robustness", "--program", "nope")
    assert_clean_error(rc, err, "unknown property function 'nope'")
