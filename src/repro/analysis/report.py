"""EXPERT-style result presentation (paper figure 3.5).

EXPERT shows three linked panes: the performance-property tree, the
call graph where the property was located, and the per-location
severity distribution.  ``format_expert_report`` renders the same three
panes as text for every property above the display threshold.
"""

from __future__ import annotations

from .model import AnalysisResult

_BAR_WIDTH = 30


def _bar(fraction: float, scale: float) -> str:
    filled = 0 if scale <= 0 else round(_BAR_WIDTH * fraction / scale)
    return "#" * min(_BAR_WIDTH, filled)


def format_expert_report(
    result: AnalysisResult,
    threshold: float = 0.005,
    max_callpaths: int = 4,
) -> str:
    """Render the three-pane analysis report.

    ``threshold`` hides properties below that severity fraction (the
    tool-sensitivity knob); per property, the ``max_callpaths`` most
    severe call paths are expanded with their location pane.
    """
    lines: list[str] = []
    lines.append("=" * 72)
    lines.append("AUTOMATIC PERFORMANCE ANALYSIS REPORT (EXPERT-style)")
    lines.append(
        f"run time {result.total_time:.6f} s on "
        f"{len(result.locations)} locations "
        f"(total allocation {result.total_allocation:.6f} s)"
    )
    lines.append("=" * 72)
    ranked = [
        (prop, sev)
        for prop, sev in result.ranked()
        if sev >= threshold
    ]
    lines.append("-- performance properties " + "-" * 45)
    if not ranked:
        lines.append(
            f"  (no property above the {threshold:.1%} display threshold)"
        )
    top = ranked[0][1] if ranked else 0.0
    for prop, sev in ranked:
        lines.append(f"  {sev:7.2%}  {_bar(sev, top):<30}  {prop}")
    for prop, sev in ranked:
        lines.append("")
        lines.append(f"-- call paths for {prop} " + "-" * 40)
        callpaths = list(result.callpaths_of(prop).items())
        for path, path_sev in callpaths[:max_callpaths]:
            pretty = " / ".join(path) if path else "(top level)"
            lines.append(f"  {path_sev:7.2%}  {pretty}")
            locs = result.locations_of(prop, path)
            loc_top = max(locs.values(), default=0.0)
            for loc, loc_sev in locs.items():
                lines.append(
                    f"      {str(loc):>6}  {loc_sev:7.2%}  "
                    f"{_bar(loc_sev, loc_top)}"
                )
        hidden = len(callpaths) - max_callpaths
        if hidden > 0:
            lines.append(f"  ... {hidden} more call path(s)")
    lines.append("=" * 72)
    return "\n".join(lines) + "\n"


def format_summary_table(result: AnalysisResult) -> str:
    """One-line-per-property severity table (for benchmark output)."""
    lines = [f"{'property':<32}{'severity':>10}{'locations':>11}"]
    for prop, sev in result.ranked():
        nloc = len(result.locations_of(prop))
        lines.append(f"{prop:<32}{sev:>9.2%}{nloc:>11}")
    return "\n".join(lines) + "\n"
