"""A-ABL -- ablations over design choices the paper leaves open.

Paper section 3.3 closes with a portability question: "whether the
performance properties in such a program behave the same on different
computing platforms".  Platform differences enter the reproduction
through the transport cost model; these ablations quantify which
properties are robust to them:

* eager/rendezvous threshold vs. late-receiver visibility (a *late
  receiver* is only observable while the protocol makes senders block),
* interconnect latency vs. imbalance severities (imbalance properties
  are latency-robust; their waits are work-determined),
* distribution shape vs. total imbalance wait at a fixed work budget.
"""

import pytest

from repro.analysis import analyze_run
from repro.core import DistParam, get_property
from repro.simmpi import TransportParams


def test_eager_threshold_gates_late_receiver(benchmark):
    """A fixed-size message program shows late_receiver only while the
    protocol switch point keeps it in rendezvous.

    (The registry's ``late_receiver`` function sizes its buffer *off*
    the threshold to stay visible on any platform; this ablation pins
    the message size at 4 KiB instead and moves the switch point.)
    """
    from repro.simmpi import MPI_DOUBLE, alloc_mpi_buf, run_mpi
    from repro.work import do_work

    def fixed_size_late_receiver(comm):
        buf = alloc_mpi_buf(MPI_DOUBLE, 512)  # 4 KiB, always
        me = comm.rank()
        for _ in range(3):
            if me % 2 == 0:
                do_work(0.005)
                comm.send(buf, me + 1, tag=1)
            else:
                do_work(0.025)  # receiver late
                comm.recv(buf, me - 1, tag=1)

    def run():
        rows = []
        for threshold in (512, 2048, 1 << 20):
            transport = TransportParams(eager_threshold=threshold)
            result = run_mpi(
                fixed_size_late_receiver, 8, transport=transport,
                model_init_overhead=False,
            )
            sev = analyze_run(result).severity(property="late_receiver")
            rows.append((threshold, sev))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA-ABL eager threshold vs late_receiver severity (4 KiB msgs):")
    for threshold, sev in rows:
        print(f"  threshold {threshold:>8} B -> {sev:.2%}")
    assert rows[0][1] > 0.05 and rows[1][1] > 0.05   # rendezvous: visible
    assert rows[2][1] == 0.0                         # eager: invisible


def test_latency_robustness_of_imbalance_properties(benchmark):
    """Work-driven imbalance waits barely move across 100x latency."""

    def run():
        spec = get_property("imbalance_at_mpi_barrier")
        sevs = []
        for latency in (1e-6, 1e-5, 1e-4):
            transport = TransportParams(latency=latency)
            result = spec.run(size=8, transport=transport)
            sevs.append(
                analyze_run(result).severity(property="wait_at_barrier")
            )
        return sevs

    sevs = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA-ABL latency sweep, wait_at_barrier severity:",
          [f"{s:.2%}" for s in sevs])
    assert max(sevs) - min(sevs) < 0.1 * max(sevs)


def test_latency_sensitivity_of_transfer_bound_program(benchmark):
    """Control: a communication-bound program IS latency-sensitive."""
    from repro.simmpi import alloc_mpi_buf, MPI_INT, run_mpi

    def chatty(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        me = comm.rank()
        for _ in range(100):
            if me == 0:
                comm.send(buf, 1)
            elif me == 1:
                comm.recv(buf, 0)
            comm.barrier()

    def run():
        times = []
        for latency in (1e-6, 1e-4):
            result = run_mpi(
                chatty, 4,
                transport=TransportParams(latency=latency),
                model_init_overhead=False,
            )
            times.append(result.final_time)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  run time at 1us vs 100us latency: {times}")
    assert times[1] > 10 * times[0]


def test_bcast_algorithm_robustness_of_late_broadcast(benchmark):
    """Collective implementation choice (binomial vs naive linear
    broadcast) changes the operation's own duration but must not hide
    the late-broadcast property: non-roots still cannot proceed before
    the root arrives under either algorithm."""
    from repro.simmpi import CollectiveTuning

    def run():
        from repro.simmpi import run_mpi

        spec = get_property("late_broadcast")
        rows = []
        for algo in ("binomial", "linear"):
            kwargs = spec.materialize()

            def main(comm, kwargs=kwargs):
                spec.func(**kwargs, comm=comm)

            result = run_mpi(
                main, 16,
                collectives=CollectiveTuning(bcast=algo),
                model_init_overhead=False,
            )
            sev = analyze_run(result).severity(property="late_broadcast")
            rows.append((algo, sev, result.final_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA-ABL bcast algorithm vs late_broadcast:")
    for algo, sev, t in rows:
        print(f"  {algo:<9} severity={sev:.2%}  run time={t:.4f}s")
    sevs = [sev for _, sev, _ in rows]
    assert all(s > 0.3 for s in sevs)              # visible under both
    assert abs(sevs[0] - sevs[1]) < 0.15 * max(sevs)  # and comparable


@pytest.mark.parametrize(
    "shape,values",
    [
        ("block2", (0.005, 0.025)),
        ("cyclic2", (0.005, 0.025)),
        ("linear", (0.005, 0.025)),
        ("peak", (0.005, 0.025, 0)),
    ],
)
def test_distribution_shape_vs_total_wait(benchmark, shape, values):
    """Different shapes, same (low, high): the accumulated barrier wait
    ranks peak > linear ~ block2/cyclic2 at equal parameters, because
    peak leaves n-1 ranks at `low` while half/graded shapes do not."""
    spec = get_property("imbalance_at_mpi_barrier")

    def run():
        result = spec.run(
            size=8, params={"dist": DistParam(shape, values)}
        )
        analysis = analyze_run(result)
        return (
            analysis.severity(property="wait_at_barrier")
            * analysis.total_allocation
        )

    wait = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  {shape}: accumulated wait {wait:.4f}s")
    # every shape must produce a clearly detectable wait
    assert wait > 0.05
    # shape-specific totals (3 reps, 8 ranks, spread 0.02s):
    expected = {
        "block2": 3 * 4 * 0.02,      # half the ranks wait full spread
        "cyclic2": 3 * 4 * 0.02,
        "peak": 3 * 7 * 0.02,        # all but one wait full spread
        "linear": 3 * 0.02 * (7 / 2),  # graded: mean wait = spread/2
    }[shape]
    assert wait == pytest.approx(expected, rel=0.15)
