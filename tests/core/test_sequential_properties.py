"""Direct tests for sequential and additional OpenMP properties."""

import pytest

from repro.analysis import analyze_run
from repro.core import get_property
from repro.core.properties import (
    compute_bound_phases,
    io_bound_phases,
)
from repro.simkernel import SimulationCrashed, Simulator, current_process
from repro.simomp import run_omp
from repro.work import do_io


def test_do_io_advances_time_and_records_regions():
    from repro.trace import Location, TraceRecorder, bind_instrumentation

    rec = TraceRecorder()
    sim = Simulator()

    def body():
        bind_instrumentation(rec, Location(0, 0))
        do_io(0.5, kind="read")
        do_io(0.25, kind="write")

    sim.spawn(body)
    assert sim.run() == 0.75
    regions = [getattr(e, "region", None) for e in rec.events]
    assert regions == ["io_read", "io_read", "io_write", "io_write"]


def test_do_io_validates_arguments():
    sim = Simulator()

    def bad_kind():
        do_io(0.1, kind="scribble")

    sim.spawn(bad_kind)
    with pytest.raises(SimulationCrashed) as info:
        sim.run()
    assert isinstance(info.value.original, ValueError)


def test_io_bound_severity_tracks_io_fraction():
    result = run_omp(lambda: io_bound_phases(0.03, 0.01, 3))
    analysis = analyze_run(result)
    sev = analysis.severity(property="io_bound")
    assert sev == pytest.approx(0.75, abs=0.02)  # 3/4 of time in io


def test_compute_bound_negative_twin():
    result = run_omp(lambda: compute_bound_phases(0.001, 0.05, 3))
    analysis = analyze_run(result)
    assert analysis.severity(property="io_bound") < 0.03
    assert "io_bound" not in analysis.detected(0.05)


def test_io_bound_callpath_localization():
    result = get_property("io_bound_phases").run()
    analysis = analyze_run(result)
    (path, _), *_ = list(analysis.callpaths_of("io_bound").items())
    assert "io_bound_phases" in path
    assert path[-1] in ("io_read", "io_write")


def test_single_imbalance_waits_scale_with_team_size():
    spec = get_property("imbalance_at_omp_single")
    small = analyze_run(spec.run(num_threads=2))
    large = analyze_run(spec.run(num_threads=8))
    # severity fraction is roughly (n-1)/n: more threads, more waiting
    assert large.severity(
        property="imbalance_at_omp_single"
    ) > small.severity(property="imbalance_at_omp_single")


def test_omp_reduce_imbalance_located_at_reduce_barrier():
    spec = get_property("imbalance_at_omp_reduce")
    analysis = analyze_run(spec.run(num_threads=4))
    (path, _), *_ = list(
        analysis.callpaths_of("imbalance_at_omp_reduce").items()
    )
    assert path[-1] == "omp_ibarrier_reduce"
    assert "imbalance_at_omp_reduce" in path


def test_sequential_properties_listed_in_registry():
    from repro.core import list_properties

    names = {s.name for s in list_properties()}
    assert {"io_bound_phases", "imbalance_at_omp_single",
            "imbalance_at_omp_reduce"} <= names
