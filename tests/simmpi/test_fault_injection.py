"""Fault injection: crashes, deadlocks and teardown hygiene.

A test *suite* must fail loudly and cleanly when a synthetic program is
malformed -- stuck simulations or leaked OS threads would poison every
subsequent test.  Hypothesis drives random fault sites.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import DeadlockError, ProcState, SimulationCrashed
from repro.simmpi import (
    MPI_INT,
    MpiWorld,
    alloc_mpi_buf,
    run_mpi,
)
from repro.work import do_work

FAST = dict(model_init_overhead=False)


@given(
    crash_rank=st.integers(min_value=0, max_value=3),
    crash_step=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_random_crash_always_tears_down(crash_rank, crash_step):
    def main(comm):
        me = comm.rank()
        for step in range(5):
            do_work(0.001)
            if me == crash_rank and step == crash_step:
                raise RuntimeError(f"fault at {me}/{step}")
            comm.barrier()

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 4, **FAST)
    assert f"fault at {crash_rank}/{crash_step}" in str(
        info.value.original
    )


def test_crash_kills_every_rank_process():
    world = MpiWorld(4, model_init_overhead=False)

    def main(comm):
        if comm.rank() == 2:
            raise ValueError("boom")
        comm.barrier()

    world.launch(main)
    with pytest.raises(SimulationCrashed):
        world.sim.run()
    states = {p.state for p in world.sim.processes}
    assert states <= {ProcState.FAILED, ProcState.KILLED,
                      ProcState.FINISHED}


def test_no_thread_leak_after_crashes():
    """Repeated crashing simulations must not accumulate OS threads."""
    def main(comm):
        if comm.rank() == 0:
            raise RuntimeError("die")
        comm.barrier()

    for _ in range(5):
        with pytest.raises(SimulationCrashed):
            run_mpi(main, 4, **FAST)
    # Give the daemon threads a moment to unwind, then count.
    import time

    deadline = time.time() + 2.0
    while time.time() < deadline:
        alive = [
            t for t in threading.enumerate()
            if t.name.startswith("sim:")
        ]
        if len(alive) == 0:
            break
        time.sleep(0.01)
    assert len(alive) < 8, f"leaked simulation threads: {alive}"


@given(missing_rank=st.integers(min_value=0, max_value=3))
@settings(max_examples=8, deadline=None)
def test_partial_collective_participation_deadlocks(missing_rank):
    """One rank skipping a barrier must deadlock, not hang the host."""

    def main(comm):
        if comm.rank() != missing_rank:
            comm.barrier()

    with pytest.raises(DeadlockError) as info:
        run_mpi(main, 4, **FAST)
    assert "blocked" in str(info.value)


def test_mismatched_collective_order_detected():
    """Ranks issuing different collectives deadlock deterministically."""

    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 4)
        if comm.rank() == 0:
            comm.bcast(buf, root=0)
        else:
            comm.barrier()

    with pytest.raises((DeadlockError, SimulationCrashed)):
        run_mpi(main, 4, **FAST)


def test_send_to_self_without_recv_reports_leak():
    def main(comm):
        buf = alloc_mpi_buf(MPI_INT, 1)
        comm.isend(buf, comm.rank(), tag=1)

    from repro.simmpi import MpiError

    with pytest.raises(MpiError, match="unmatched"):
        run_mpi(main, 2, **FAST)


def test_send_recv_self_works():
    def main(comm):
        me = comm.rank()
        sb = alloc_mpi_buf(MPI_INT, 1)
        rb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = me + 42
        req = comm.irecv(rb, me, tag=1)
        comm.send(sb, me, tag=1)
        comm.wait(req)
        assert rb.data[0] == me + 42

    run_mpi(main, 3, **FAST)


def test_crashed_world_cannot_be_rerun():
    world = MpiWorld(2, model_init_overhead=False)

    def main(comm):
        raise RuntimeError("x")

    world.launch(main)
    with pytest.raises(SimulationCrashed):
        world.sim.run()
    from repro.simkernel import SimError

    with pytest.raises(SimError):
        world.sim.run()
