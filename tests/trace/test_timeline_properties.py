"""Property-based invariants of the timeline renderer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import Location, TraceRecorder, render_timeline

REGIONS = ["work", "MPI_Send", "MPI_Barrier", "omp_barrier", "userland"]


@st.composite
def balanced_traces(draw):
    """Random balanced traces over a handful of locations."""
    nloc = draw(st.integers(min_value=1, max_value=4))
    rec = TraceRecorder()
    for rank in range(nloc):
        loc = Location(rank, 0)
        t = 0.0
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            region = draw(st.sampled_from(REGIONS))
            start_gap = draw(st.floats(min_value=0.0, max_value=1.0))
            duration = draw(st.floats(min_value=0.01, max_value=2.0))
            t += start_gap
            rec.enter(t, loc, region)
            t += duration
            rec.exit(t, loc, region)
    return rec.events


@given(events=balanced_traces(), width=st.integers(min_value=5,
                                                   max_value=120))
@settings(max_examples=40, deadline=None)
def test_timeline_row_structure(events, width):
    text = render_timeline(events, width=width)
    lines = text.splitlines()
    rows = [l for l in lines if "|" in l and l.strip()[0].isdigit()]
    locations = {e.loc for e in events}
    assert len(rows) == len(locations)
    for row in rows:
        cells = row.split("|")[1]
        assert len(cells) == width


@given(events=balanced_traces())
@settings(max_examples=30, deadline=None)
def test_timeline_never_raises_and_has_legend(events):
    text = render_timeline(events, width=40)
    assert "legend" in text


@given(events=balanced_traces(), width=st.integers(min_value=10,
                                                   max_value=60))
@settings(max_examples=30, deadline=None)
def test_timeline_busy_cells_cover_busy_time(events, width):
    """Any bucket overlapping a region interval must be non-blank."""
    from repro.trace import Enter, Exit

    text = render_timeline(events, width=width)
    t_end = max(e.time for e in events)
    dt = (t_end if t_end > 0 else 1.0) / width
    rows = {}
    for line in text.splitlines():
        if "|" in line and line.strip()[0].isdigit():
            label, cells = line.split("|")[0], line.split("|")[1]
            rows[label.strip()] = cells
    # find per-location busy intervals
    open_at = {}
    for e in sorted(events, key=lambda e: e.time):
        key = str(e.loc)
        if isinstance(e, Enter):
            open_at.setdefault(key, []).append(e.time)
        elif isinstance(e, Exit) and open_at.get(key):
            start = open_at[key].pop()
            if key not in rows:
                continue
            first = max(0, min(width - 1, int(start / dt)))
            cell = rows[key][first]
            assert cell != " ", (key, start, first, rows[key])
