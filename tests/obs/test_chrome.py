"""Chrome trace-event export: simulated + host tracks."""

import json

from repro.obs import (
    build_chrome_trace,
    reset_spans,
    set_spans_enabled,
    span,
    span_log,
    write_chrome_trace,
)
from repro.obs.chrome import HOST_PID
from repro.trace import Location, TraceRecorder


def sample_events():
    rec = TraceRecorder()
    l0, l1 = Location(0, 0), Location(1, 0)
    rec.enter(0.0, l0, "main")
    rec.send(0.5, l0, peer=1, tag=9, comm_id=0, nbytes=64, msg_id=1)
    rec.exit(1.0, l0, "main")
    rec.enter(0.0, l1, "main")
    rec.recv(0.8, l1, peer=0, tag=9, comm_id=0, nbytes=64, msg_id=1,
             post_time=0.2)
    rec.exit(1.0, l1, "main")
    return rec.events


def test_sim_slices_and_flows():
    doc = build_chrome_trace(events=sample_events(), host_spans=[])
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 2
    for sl in slices:
        assert sl["cat"] == "sim"
        assert sl["dur"] == 1e6  # 1 virtual second in microseconds
        assert sl["args"]["callpath"] == "main"
    # ranks map to pid = rank + 1, never colliding with the host pid
    assert {sl["pid"] for sl in slices} == {1, 2}
    flows = sorted(e["ph"] for e in events if e["ph"] in ("s", "f"))
    assert flows == ["f", "s"]
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "rank 0 (virtual time)" in names


def test_host_spans_land_on_host_pid():
    set_spans_enabled(True)
    reset_spans()
    with span("analysis:index", cat="analysis", events=10):
        pass
    doc = build_chrome_trace(host_spans=span_log())
    host = [e for e in doc["traceEvents"] if e.get("pid") == HOST_PID]
    slices = [e for e in host if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["name"] == "analysis:index"
    assert slices[0]["args"] == {"events": 10}
    assert any(
        e["ph"] == "M" and e["args"]["name"] == "host (tool)" for e in host
    )


def test_write_chrome_trace_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    n = write_chrome_trace(
        path, events=sample_events(), metadata={"program": "demo"}
    )
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n > 0
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {"program": "demo"}


def test_empty_export_is_valid():
    doc = build_chrome_trace(host_spans=[])
    assert doc["traceEvents"] == []


def test_truncated_trace_still_renders_open_regions():
    rec = TraceRecorder()
    l0 = Location(0, 0)
    rec.enter(0.0, l0, "main")
    rec.enter(0.5, l0, "work")  # never exited: crashed run
    doc = build_chrome_trace(events=rec.events, host_spans=[])
    # open regions are dropped, not crashed on
    assert all(e["ph"] != "X" or e["dur"] >= 0 for e in doc["traceEvents"])
