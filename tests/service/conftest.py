"""Shared fixtures for the analysis-service tests.

Obs state is isolated per test (the service records into the global
registry), and ``service_env`` stands up a full archive + service +
HTTP thread with one pre-archived run -- the common scaffolding of
the integration tests.
"""

import pytest

from repro.archive import Archive
from repro.obs import (
    metrics_enabled,
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
    spans_enabled,
)
from repro.service import AnalysisService, run_service_in_thread


@pytest.fixture(autouse=True)
def _isolated_obs():
    prev_metrics = metrics_enabled()
    prev_spans = spans_enabled()
    reset_metrics()
    reset_spans()
    yield
    set_metrics_enabled(prev_metrics)
    set_spans_enabled(prev_spans)
    reset_metrics()
    reset_spans()


class ServiceEnv:
    """One running service plus the identity of its seeded run."""

    def __init__(self, service, handle, run):
        self.service = service
        self.handle = handle
        self.run = run

    @property
    def url(self):
        return self.handle.url


@pytest.fixture
def service_env(tmp_path):
    set_metrics_enabled(True)
    archive = Archive(tmp_path / "archive")
    from repro.core import get_property

    run = archive.archive_run(
        get_property("late_sender"), size=4, num_threads=2, seed=1
    )
    service = AnalysisService(archive, max_workers=2)
    handle = run_service_in_thread(service)
    env = ServiceEnv(service, handle, run)
    yield env
    handle.stop(drain=False)
