"""OpenMP constructs: parallel regions, worksharing, critical sections.

``omp_parallel(body, ...)`` is the ``#pragma omp parallel`` equivalent:
it forks a team, runs ``body`` on every thread, executes the implicit
barrier at region end and joins.  The other helpers mirror their
pragma counterparts and are valid only inside a region.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from ..simkernel import current_process
from ..trace.api import bind_instrumentation, current_instrumentation
from ..trace.events import Location
from .team import OmpError, Team, current_team, require_team

#: trace region names for the implicit barriers of each construct;
#: the analyzer distinguishes the OpenMP imbalance properties by them.
IBARRIER_PARALLEL = "omp_ibarrier_parallel"
IBARRIER_FOR = "omp_ibarrier_for"
IBARRIER_SINGLE = "omp_ibarrier_single"
IBARRIER_SECTIONS = "omp_ibarrier_sections"
EXPLICIT_BARRIER = "omp_barrier"


def _alloc_thread_ids(sim, rank: int, count: int) -> list[int]:
    """Allocate ``count`` fresh rank-local thread ids (for nesting)."""
    pool = getattr(sim, "_omp_tid_pool", None)
    if pool is None:
        pool = {}
        sim._omp_tid_pool = pool
    start = pool.get(rank, 1)
    pool[rank] = start + count
    return list(range(start, start + count))


def _next_team_id(sim) -> int:
    tid = getattr(sim, "_omp_team_counter", 0)
    sim._omp_team_counter = tid + 1
    return tid


def omp_parallel(
    body: Callable[..., Any],
    *args: Any,
    num_threads: Optional[int] = None,
    **kwargs: Any,
) -> list:
    """Fork a parallel region running ``body(*args, **kwargs)`` per thread.

    Returns the list of per-thread return values (indexed by thread
    number).  ``num_threads`` defaults to the process's
    ``omp_default_threads`` context entry (set by :func:`run_omp` /
    hybrid launchers), falling back to 4.
    """
    master = current_process()
    sim = master.sim
    n = (
        num_threads
        if num_threads is not None
        else master.context.get("omp_default_threads", 4)
    )
    if n < 1:
        raise OmpError(f"num_threads must be >= 1, got {n}")
    rec, master_loc = current_instrumentation()
    rank = master.context.get("mpi_rank", 0)
    team_id = _next_team_id(sim)
    # Thread 0 inherits the master's location; others get fresh ids.
    extra = _alloc_thread_ids(sim, rank, n - 1)
    locations = [master_loc] + [Location(rank, t) for t in extra]
    team = Team(sim, master, n, team_id, locations)
    if team._metrics is not None:
        team._metrics.forks.inc()
    if rec is not None:
        rec.fork(sim.now, master_loc, team_size=n, team_id=team_id)
        # Worker threads continue the master's call path (thread 0
        # shares the master's location/stack and needs no seeding).
        master_path = rec.path_of(master_loc)
        for loc in locations[1:]:
            rec.seed_base(loc, master_path)

    def thread_body(thread_num: int) -> Any:
        proc = current_process()
        # Inherit the master's execution context, then overlay team
        # membership and the thread's own trace location.
        proc.context.update(master.context)
        proc.context["omp_team"] = team
        proc.context["omp_thread_num"] = thread_num
        # Each thread gets its own RNG stream -- the paper's lock-free
        # parallel generator requirement (section 3.1.1).
        master_rng = master.context.get("rng")
        if master_rng is not None:
            proc.context["rng"] = master_rng.spawn(1000 + thread_num)
        loc = locations[thread_num]
        bind_instrumentation(rec, loc)
        if rec is not None:
            rec.enter(proc.sim.now, loc, "omp_parallel")
        try:
            result = body(*args, **kwargs)
        finally:
            # Implicit barrier at region end (no nowait in OpenMP).
            team.barrier(region=IBARRIER_PARALLEL)
            if rec is not None:
                rec.exit(proc.sim.now, loc, "omp_parallel")
        team._thread_done(thread_num, result)
        return result

    for thread_num in range(n):
        sim.spawn(
            thread_body,
            thread_num,
            name=f"{master.name}.t{team_id}.{thread_num}",
        )
    sim.passivate(f"omp_join(team{team_id})")
    if team._metrics is not None:
        team._metrics.joins.inc()
    if rec is not None:
        rec.join(sim.now, master_loc, team_id=team_id)
    return list(team.results)


def omp_barrier() -> None:
    """Explicit ``#pragma omp barrier``."""
    require_team().barrier(region=EXPLICIT_BARRIER)


def omp_for(
    iterations: int,
    body: Callable[[int], Any],
    schedule: str = "static",
    chunk: Optional[int] = None,
    nowait: bool = False,
) -> None:
    """``#pragma omp for``: workshare ``body(i)`` over the team.

    Traced as an ``omp_for`` region per thread, with the implicit
    end-of-loop barrier unless ``nowait``.
    """
    team = require_team()
    proc = current_process()
    rec, loc = current_instrumentation()
    if rec is not None:
        rec.enter(proc.sim.now, loc, "omp_for")
    try:
        for i in team.loop_chunks(iterations, schedule, chunk):
            body(i)
        if not nowait:
            team.barrier(region=IBARRIER_FOR)
    finally:
        if rec is not None:
            rec.exit(proc.sim.now, loc, "omp_for")


def omp_sections(
    bodies: list[Callable[[], Any]], nowait: bool = False
) -> None:
    """``#pragma omp sections``: distribute section bodies dynamically."""
    team = require_team()
    proc = current_process()
    rec, loc = current_instrumentation()
    if rec is not None:
        rec.enter(proc.sim.now, loc, "omp_sections")
    try:
        for i in team.loop_chunks(len(bodies), schedule="dynamic"):
            bodies[i]()
        if not nowait:
            team.barrier(region=IBARRIER_SECTIONS)
    finally:
        if rec is not None:
            rec.exit(proc.sim.now, loc, "omp_sections")


@contextmanager
def omp_critical(name: str = "default") -> Iterator[None]:
    """``#pragma omp critical``: named mutual exclusion, traced.

    The traced region covers lock acquisition, so contention shows up
    as time inside ``omp_critical`` -- the critical-section contention
    property.
    """
    team = require_team()
    proc = current_process()
    rec, loc = current_instrumentation()
    if rec is not None:
        rec.enter(proc.sim.now, loc, "omp_critical")
    mutex = team.critical(name)
    mutex.acquire()
    try:
        yield
    finally:
        mutex.release()
        if rec is not None:
            rec.exit(proc.sim.now, loc, "omp_critical")


@contextmanager
def omp_single(nowait: bool = False) -> Iterator[bool]:
    """``#pragma omp single``: the body runs on the first-arriving thread.

    Yields True on the executing thread, False elsewhere; all threads
    synchronize at the construct's implicit barrier unless ``nowait``.
    """
    team = require_team()
    chosen = team.single()
    try:
        yield chosen
    finally:
        if not nowait:
            team.barrier(region=IBARRIER_SINGLE)


def omp_master() -> bool:
    """``#pragma omp master``: True on thread 0 (no implied barrier)."""
    team = require_team()
    return team.thread_num_of(current_process()) == 0
