"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class DeadlockError(SimError):
    """Raised when no process is runnable but passive processes remain.

    This is the simulator-level analogue of an MPI deadlock: every
    remaining process is blocked waiting for an event that can no longer
    occur.  The error message lists the stuck processes and what they
    were waiting for, which makes ATS pattern bugs easy to diagnose.
    """

    def __init__(self, waiting: list[str], report=None):
        self.waiting = list(waiting)
        #: optional :class:`repro.simkernel.watchdog.DeadlockReport`
        #: with per-process pending-call detail (rank, peer, queue state)
        self.report = report
        super().__init__(
            "simulation deadlock: no runnable process, %d blocked: %s"
            % (len(self.waiting), ", ".join(self.waiting))
        )


class HangError(SimError):
    """Raised when a run exceeds its virtual-time budget or dispatch limit.

    Unlike :class:`DeadlockError` the simulation still *had* runnable
    work -- it was just never going to finish within its budget
    (livelock, runaway loop, pathological slowdown).  ``report`` is an
    optional :class:`repro.simkernel.watchdog.HangReport` snapshotting
    every live process and what it was doing.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class SimulationCrashed(SimError):
    """A process raised an exception; the whole simulation was torn down."""

    def __init__(self, process_name: str, original: BaseException):
        self.process_name = process_name
        self.original = original
        super().__init__(
            f"process {process_name!r} crashed: {original!r}"
        )


class ProcessKilled(BaseException):
    """Injected into a simulated process to unwind its stack on teardown.

    Derives from ``BaseException`` so that user code written with broad
    ``except Exception`` handlers cannot accidentally swallow teardown.
    """


class NotInProcessError(SimError):
    """A process-context operation was called from outside any process."""
