"""Trace persistence: JSON-lines writer and reader.

The format is deliberately simple and line-oriented so traces can be
inspected with standard text tools, diffed across runs (determinism
checks) and loaded back for offline analysis -- the workflow the paper
envisions between the ATS programs and the analysis tools under test.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from .events import Event, event_from_dict

FORMAT_VERSION = 1


def write_trace(
    path: Union[str, Path],
    events: Iterable[Event],
    metadata: dict | None = None,
) -> int:
    """Write events to ``path`` in JSONL format; returns event count.

    The first line is a header record with the format version and
    optional run metadata (program name, size, transport parameters...).
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        header = {"format": "ats-trace", "version": FORMAT_VERSION}
        if metadata:
            header["metadata"] = metadata
        fh.write(json.dumps(header) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_dict()) + "\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> tuple[list[Event], dict]:
    """Read a JSONL trace; returns ``(events, metadata)``."""
    path = Path(path)
    events: list[Event] = []
    metadata: dict = {}
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if header.get("format") != "ats-trace":
            raise ValueError(f"{path}: not an ats-trace file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        metadata = header.get("metadata", {})
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad event: {exc}") from exc
    return events, metadata
