"""Supervisor: classification, retry with deterministic backoff, quarantine."""

import time

import pytest

from repro.core.registry import PropertySpec
from repro.resilience import (
    FAILURE_KINDS,
    CellTimeout,
    Supervisor,
    classify_failure,
)
from repro.simkernel import DeadlockError, HangError
from repro.simmpi import MPI_DOUBLE, alloc_mpi_buf
from repro.trace.io import TraceFormatError
from repro.validation import run_robustness


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "exc, kind",
    [
        (DeadlockError(["rank0 (recv)"]), "deadlock"),
        (HangError("budget"), "hang"),
        (CellTimeout("wall"), "timeout"),
        (TraceFormatError("/tmp/x", "bad event", lineno=3), "trace-corrupt"),
        (ValueError("boom"), "crash"),
    ],
)
def test_classify_failure(exc, kind):
    assert kind in FAILURE_KINDS
    assert classify_failure(exc) == kind


# ----------------------------------------------------------------------
# cell lifecycle
# ----------------------------------------------------------------------

def test_ok_cell_passes_value_through():
    sup = Supervisor()
    outcome = sup.run_cell("k", lambda: {"answer": 42})
    assert outcome.ok
    assert outcome.value == {"answer": 42}
    assert outcome.attempts == 1
    assert not outcome.from_checkpoint
    assert sup.failures == []


def test_persistent_failure_is_quarantined_not_raised():
    sup = Supervisor()

    def bad():
        raise ValueError("synthetic crash")

    outcome = sup.run_cell("cell-1", bad)
    assert not outcome.ok
    assert outcome.failure.kind == "crash"
    assert outcome.failure.error == "ValueError: synthetic crash"
    assert outcome.failure.attempts == 1
    report = sup.failure_report()
    assert report.counts() == {"crash": 1}
    assert "cell-1" in report.format_table()
    assert report.to_json_dict()["format"] == "ats-failures"


def test_transient_failures_retry_then_succeed():
    delays = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ValueError("transient glitch")
        return "ok"

    sup = Supervisor(
        retries=3, transient=("crash",), sleep=delays.append
    )
    outcome = sup.run_cell("flaky-cell", flaky)
    assert outcome.ok
    assert outcome.value == "ok"
    assert outcome.attempts == 3
    assert len(delays) == 2
    # the slept schedule is exactly the advertised pure function
    assert delays == [
        sup.backoff_delay("flaky-cell", 1),
        sup.backoff_delay("flaky-cell", 2),
    ]


def test_retries_exhausted_quarantines_with_attempt_count():
    sup = Supervisor(retries=2, transient=("crash",), sleep=lambda _: None)

    def always_bad():
        raise RuntimeError("still broken")

    outcome = sup.run_cell("k", always_bad)
    assert not outcome.ok
    assert outcome.failure.attempts == 3  # 1 initial + 2 retries


def test_non_transient_kinds_never_retry():
    calls = {"n": 0}

    def deadlocks():
        calls["n"] += 1
        raise DeadlockError(["rank0 (recv)"])

    sup = Supervisor(retries=5, sleep=lambda _: None)  # transient=timeout
    outcome = sup.run_cell("k", deadlocks)
    assert calls["n"] == 1
    assert outcome.failure.kind == "deadlock"


def test_backoff_is_deterministic_and_seed_keyed():
    a = Supervisor(seed=7)
    b = Supervisor(seed=7)
    c = Supervisor(seed=8)
    key = "late_sender|m0.5|s1"
    assert a.backoff_delay(key, 1) == b.backoff_delay(key, 1)
    assert a.backoff_delay(key, 1) != c.backoff_delay(key, 1)
    assert a.backoff_delay(key, 1) != a.backoff_delay("other", 1)
    # capped exponential envelope with jitter in [0.5, 1.0] * base
    for attempt in range(1, 8):
        delay = a.backoff_delay(key, attempt)
        base = min(a.backoff_cap, a.backoff_base * 2 ** (attempt - 1))
        assert 0.5 * base <= delay <= base


def test_wall_clock_timeout_classified_and_quarantined():
    sup = Supervisor(timeout=0.05)

    def stuck():
        time.sleep(5)

    start = time.monotonic()
    outcome = sup.run_cell("k", stuck)
    assert time.monotonic() - start < 2
    assert not outcome.ok
    assert outcome.failure.kind == "timeout"
    assert "wall-clock timeout" in outcome.failure.error


def test_constructor_validation():
    with pytest.raises(ValueError, match="timeout"):
        Supervisor(timeout=0.0)
    with pytest.raises(ValueError, match="retries"):
        Supervisor(retries=-1)
    with pytest.raises(ValueError, match="unknown transient"):
        Supervisor(transient=("cosmic-rays",))


# ----------------------------------------------------------------------
# quarantine inside a real sweep
# ----------------------------------------------------------------------

def _crossed_sends(comm):
    buf = alloc_mpi_buf(MPI_DOUBLE, 4096)  # rendezvous-sized
    peer = 1 - comm.rank()
    comm.send(buf, peer, tag=0)
    comm.recv(buf, source=peer, tag=0)


def test_deadlocking_program_is_quarantined_and_sweep_completes():
    from repro.core.registry import get_property

    bad = PropertySpec(
        name="crossed_sends",
        func=_crossed_sends,
        paradigm="mpi",
        expected=(),
        negative=True,
    )
    good = get_property("late_sender")
    sup = Supervisor()
    result = run_robustness(
        specs=[bad, good],
        magnitudes=(0.0,),
        seeds=(0,),
        size=2,
        num_threads=2,
        supervisor=sup,
    )
    # the deadlocked cell is an error cell; the good cell is intact
    cells = {c.program: c for c in result.cells}
    assert cells["crossed_sends"].error is not None
    assert cells["crossed_sends"].error.startswith("DeadlockError")
    assert cells["late_sender"].error is None
    # the failure report carries the structured deadlock diagnosis
    (failure,) = sup.failures
    assert failure.kind == "deadlock"
    assert failure.report is not None
    assert failure.report["kind"] == "deadlock"
    assert {e["rank"] for e in failure.report["entries"]} == {0, 1}
