"""Automatic performance analysis (the EXPERT-tool equivalent).

The paper evaluates ATS by feeding its synthetic programs to automatic
analysis tools (EXPERT in figure 3.5).  This package is a from-scratch
implementation of that consumer: trace-pattern detectors for every ATS
performance property, ASL-style severities, and results on EXPERT's
three axes (property x call path x location).
"""

from .analyzer import ANALYZER_VERSION, analyze_events, analyze_run
from .index import RegionVisit, TraceIndex, replay_region_visits
from .compare import ComparisonReport, PropertyDelta, compare_analyses
from .hierarchy import (
    HierarchyNode,
    format_property_tree,
    severity_tree,
)
from .detectors import (
    DEFAULT_DETECTORS,
    AnalysisConfig,
    Detector,
)
from .model import AnalysisResult, Finding
from .report import format_expert_report, format_summary_table

__all__ = [
    "ANALYZER_VERSION",
    "AnalysisConfig",
    "AnalysisResult",
    "ComparisonReport",
    "PropertyDelta",
    "compare_analyses",
    "DEFAULT_DETECTORS",
    "Detector",
    "Finding",
    "RegionVisit",
    "TraceIndex",
    "replay_region_visits",
    "HierarchyNode",
    "format_property_tree",
    "severity_tree",
    "analyze_events",
    "analyze_run",
    "format_expert_report",
    "format_summary_table",
]
