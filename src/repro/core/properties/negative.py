"""Negative test programs: well-tuned code with no performance problem.

The paper's "negative correctness" requirement: tools "should not
diagnose performance problems for well-tuned programs without such
problems".  Each function here mirrors the communication structure of a
positive property function but with perfectly balanced work, so any
property a tool reports against these programs (above the noise floor
of transport costs) is a false positive.
"""

from __future__ import annotations

from typing import Optional

from ...distributions import Val1Distr, df_same
from ...simmpi.buffers import alloc_mpi_buf, free_mpi_buf
from ...simmpi.communicator import Communicator
from ...simmpi.datatypes import MPI_SUM
from ...simmpi.patterns import mpi_commpattern_sendrecv, mpi_commpattern_shift
from ...simmpi.status import DIR_UP
from ...simomp import omp_barrier, omp_for, omp_parallel
from ...trace.api import region
from ...work import do_work, par_do_mpi_work, par_do_omp_work
from ..base import alloc_base_buf, base_cnt, base_type


def balanced_mpi_barrier(
    work: float, r: int, comm: Communicator
) -> None:
    """Evenly distributed work before each barrier: no wait expected."""
    dd = Val1Distr(work)
    with region("balanced_mpi_barrier"):
        for _ in range(r):
            par_do_mpi_work(df_same, dd, 1.0, comm)
            comm.barrier()


def balanced_sendrecv(work: float, r: int, comm: Communicator) -> None:
    """Equal work on senders and receivers: negligible p2p waits."""
    dd = Val1Distr(work)
    buf = alloc_base_buf()
    with region("balanced_sendrecv"):
        for _ in range(r):
            par_do_mpi_work(df_same, dd, 1.0, comm)
            mpi_commpattern_sendrecv(buf, DIR_UP, False, False, comm)
    free_mpi_buf(buf)


def balanced_shift_ring(work: float, r: int, comm: Communicator) -> None:
    """Balanced cyclic shift: symmetric communication, no hot spot."""
    dd = Val1Distr(work)
    sbuf = alloc_base_buf()
    rbuf = alloc_base_buf()
    with region("balanced_shift_ring"):
        for _ in range(r):
            par_do_mpi_work(df_same, dd, 1.0, comm)
            mpi_commpattern_shift(sbuf, rbuf, DIR_UP, False, False, comm)
    free_mpi_buf(sbuf)
    free_mpi_buf(rbuf)


def balanced_collectives(work: float, r: int, comm: Communicator) -> None:
    """A balanced mix of collectives: bcast, allreduce, alltoall."""
    dd = Val1Distr(work)
    sz = comm.size()
    small_s = alloc_base_buf()
    small_r = alloc_base_buf()
    big_s = alloc_mpi_buf(base_type(), base_cnt() * sz)
    big_r = alloc_mpi_buf(base_type(), base_cnt() * sz)
    with region("balanced_collectives"):
        for _ in range(r):
            par_do_mpi_work(df_same, dd, 1.0, comm)
            comm.bcast(small_s, root=0)
            par_do_mpi_work(df_same, dd, 1.0, comm)
            comm.allreduce(small_s, small_r, MPI_SUM)
            par_do_mpi_work(df_same, dd, 1.0, comm)
            comm.alltoall(big_s, big_r)
    for b in (small_s, small_r, big_s, big_r):
        free_mpi_buf(b)


def balanced_omp_region(
    work: float, r: int, num_threads: Optional[int] = None
) -> None:
    """Evenly loaded parallel regions: no imbalance at the join."""
    dd = Val1Distr(work)

    def body() -> None:
        par_do_omp_work(df_same, dd, 1.0)

    with region("balanced_omp_region"):
        for _ in range(r):
            omp_parallel(body, num_threads=num_threads)


def balanced_omp_barrier_loop(
    work: float, r: int, num_threads: Optional[int] = None
) -> None:
    """Evenly loaded explicit-barrier loop: no barrier waits."""
    dd = Val1Distr(work)

    def body() -> None:
        for _ in range(r):
            par_do_omp_work(df_same, dd, 1.0)
            omp_barrier()

    with region("balanced_omp_barrier_loop"):
        omp_parallel(body, num_threads=num_threads)


def balanced_omp_loop(
    work: float,
    iterations_per_thread: int,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """Evenly costed worksharing loop under static schedule.

    The iteration count is a multiple of the team size so the static
    partition is exact -- a genuinely balanced loop.
    """
    from ...simomp import omp_get_num_threads

    def body() -> None:
        n = omp_get_num_threads() * iterations_per_thread
        for _ in range(r):
            omp_for(n, lambda i: do_work(work), schedule="static")

    with region("balanced_omp_loop"):
        omp_parallel(body, num_threads=num_threads)
