"""CLI tests (in-process via main(argv))."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
)


@pytest.fixture
def obs_reset():
    """Restore observability globals around tests that enable them."""
    yield
    set_metrics_enabled(False)
    set_spans_enabled(False)
    reset_metrics()
    reset_spans()


def test_list_shows_positive_properties(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "late_sender" in out
    assert "balanced_mpi_barrier" not in out  # negatives need --all


def test_list_all_includes_negatives(capsys):
    main(["list", "--all"])
    out = capsys.readouterr().out
    assert "balanced_mpi_barrier" in out


def test_list_paradigm_filter(capsys):
    main(["list", "--paradigm", "omp"])
    out = capsys.readouterr().out
    assert "imbalance_at_omp_barrier" in out
    assert "late_sender" not in out


def test_run_property_with_analysis(capsys):
    assert main(["run", "late_sender", "--size", "4"]) == 0
    out = capsys.readouterr().out
    assert "finished in" in out
    assert "late_sender" in out
    assert "ANALYSIS REPORT" in out


def test_run_with_timeline(capsys):
    main(["run", "late_sender", "--size", "4", "--timeline",
          "--no-analyze"])
    out = capsys.readouterr().out
    assert "legend" in out
    assert "ANALYSIS REPORT" not in out


def test_run_unknown_property_exits_cleanly(capsys):
    assert main(["run", "not_a_property"]) == 2
    err = capsys.readouterr().err
    assert "ats: error: unknown property function 'not_a_property'" in err


def test_chain_command(capsys):
    assert main(["chain", "--size", "4", "--no-analyze"]) == 0
    assert "finished in" in capsys.readouterr().out


def test_split_command(capsys):
    assert main(["split", "--size", "8", "--no-analyze"]) == 0
    assert "finished in" in capsys.readouterr().out


def test_generate_command(tmp_path, capsys):
    assert main(["generate", str(tmp_path), "--paradigm", "omp"]) == 0
    out = capsys.readouterr().out
    assert "programs generated" in out
    assert list(tmp_path.glob("test_*.py"))


def test_trace_roundtrip_through_cli(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main([
        "run", "late_broadcast", "--size", "4", "--no-analyze",
        "--trace-out", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["analyze", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "late_broadcast" in out


def test_matrix_command_subset_passes(capsys):
    # full matrix is exercised elsewhere; here just the exit path
    rc = main(["matrix", "--size", "4", "--threads", "2"])
    out = capsys.readouterr().out
    assert "positive detection rate" in out
    assert rc == 0


def test_certify_command(capsys):
    rc = main(["certify", "--size", "4", "--threads", "2"])
    out = capsys.readouterr().out
    assert "CERTIFIED" in out
    assert rc == 0


def test_suites_command(capsys):
    assert main(["suites"]) == 0
    assert "SKaMPI" in capsys.readouterr().out


def test_run_with_tree_prints_hierarchy(capsys):
    assert main(["run", "late_sender", "--size", "4", "--tree"]) == 0
    out = capsys.readouterr().out
    assert "property tree" in out
    assert "p2p_communication" in out


def test_run_metrics_out_stdout(obs_reset, capsys):
    assert main([
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--metrics-out", "-",
    ]) == 0
    out = capsys.readouterr().out
    assert "# HELP ats_sim_dispatches_total" in out
    assert "# TYPE ats_mpi_messages_total counter" in out


def test_run_metrics_out_json_file(obs_reset, tmp_path, capsys):
    dest = tmp_path / "metrics.json"
    assert main([
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--metrics-out", str(dest),
    ]) == 0
    doc = json.loads(dest.read_text())  # auto-detected JSON by suffix
    assert doc["format"] == "ats-metrics"
    names = {m["name"] for m in doc["metrics"]}
    assert "ats_trace_events_total" in names


def test_run_chrome_trace(obs_reset, tmp_path, capsys):
    dest = tmp_path / "chrome.json"
    assert main([
        "run", "late_sender", "--size", "4",
        "--chrome-trace", str(dest),
    ]) == 0
    doc = json.loads(dest.read_text())
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert "X" in phases          # slices on both timelines
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert 0 in pids and 1 in pids  # host track + at least rank 0


def test_metrics_command(obs_reset, capsys):
    assert main(["metrics", "--size", "4", "--threads", "2"]) == 0
    out = capsys.readouterr().out
    assert "ats_sim_dispatches_total" in out
    assert "ats_analysis_runs_total" in out


def test_metrics_command_json_to_file(obs_reset, tmp_path, capsys):
    dest = tmp_path / "m.json"
    assert main([
        "metrics", "late_broadcast", "--size", "4",
        "--out", str(dest), "--format", "json",
    ]) == 0
    doc = json.loads(dest.read_text())
    assert any(
        m["name"] == "ats_mpi_bytes_total" for m in doc["metrics"]
    )


def test_analyze_profile_flag(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main([
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--trace-out", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["analyze", str(trace), "--profile"]) == 0
    out = capsys.readouterr().out
    assert "incl(s)" in out        # the profile table
    assert "ANALYSIS REPORT" in out


def test_analyze_skip_bad_lines(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main([
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--trace-out", str(trace),
    ]) == 0
    with trace.open("a") as fh:
        fh.write("{not json at all\n")
    capsys.readouterr()
    assert main(["analyze", str(trace)]) == 2
    assert "bad event" in capsys.readouterr().err
    assert main(["analyze", str(trace), "--skip-bad-lines"]) == 0
    captured = capsys.readouterr()
    assert "skipped 1 corrupt trace line" in captured.err
    assert "ANALYSIS REPORT" in captured.out


def test_sweep_command_outputs_csv(capsys):
    assert main([
        "sweep", "late_sender", "--factors", "1,2", "--sizes", "4",
    ]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.strip().split("\n") if l]
    assert lines[0].startswith("property,")
    assert len(lines) == 3  # header + 2 factor rows
    assert "sev:late_sender" in lines[0]
