"""Core registry semantics and the two textual exporters."""

import json

import pytest

from repro.obs import (
    get_registry,
    kernel_metrics,
    metrics_enabled,
    null_registry,
    reset_metrics,
    set_metrics_enabled,
    span,
    to_json,
    to_prometheus,
    trace_metrics,
    transport_metrics,
)
from repro.obs.metrics import NOOP_METRIC
from repro.obs.spans import _NOOP_SPAN


def test_counter_and_gauge_math():
    reg = reset_metrics()
    c = reg.counter("t_total", "help")
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    g = reg.gauge("t_gauge", "help")
    g.set(10)
    g.dec(4)
    g.inc()
    assert g.value == pytest.approx(7.0)


def test_histogram_buckets_sum_count():
    reg = reset_metrics()
    h = reg.histogram("t_hist", "help", buckets=(1.0, 10.0))
    for v in (0.5, 0.7, 5.0, 100.0):
        h.observe(v)
    assert h.counts == [2, 1, 1]  # <=1, <=10, overflow
    assert h.count == 4
    assert h.sum == pytest.approx(106.2)


def test_labeled_children_are_cached():
    reg = reset_metrics()
    fam = reg.counter("t_labeled_total", "help", labelnames=("kind",))
    a = fam.labels(kind="x")
    b = fam.labels(kind="x")
    assert a is b
    assert fam.labels(kind="y") is not a


def test_label_name_mismatch_rejected():
    reg = reset_metrics()
    fam = reg.counter("t_labels_total", "help", labelnames=("kind",))
    with pytest.raises(ValueError, match="expected labels"):
        fam.labels(flavor="x")


def test_redeclaration_must_match():
    reg = reset_metrics()
    reg.counter("t_redeclare", "help")
    again = reg.counter("t_redeclare", "other help text is fine")
    assert again is reg.counter("t_redeclare", "help")
    with pytest.raises(ValueError, match="re-declared"):
        reg.gauge("t_redeclare", "help")


def test_disabled_accessors_return_none():
    set_metrics_enabled(False)
    reset_metrics()
    assert kernel_metrics() is None
    assert transport_metrics() is None
    assert trace_metrics() is None


def test_enabled_bundles_are_cached_per_registry():
    set_metrics_enabled(True)
    reset_metrics()
    assert kernel_metrics() is kernel_metrics()
    reset_metrics()
    # a fresh registry gets a fresh bundle
    first = transport_metrics()
    assert first is transport_metrics()


def test_null_registry_hands_out_shared_noop():
    reg = null_registry()
    assert reg.counter("x", "h") is NOOP_METRIC
    assert reg.histogram("y", "h").labels(a="b") is NOOP_METRIC
    NOOP_METRIC.inc()
    NOOP_METRIC.observe(3.0)  # no state, no error
    assert reg.collect() == []


def test_disabled_span_is_shared_singleton():
    assert span("anything") is _NOOP_SPAN
    with span("anything"):
        pass


def test_prometheus_exposition_format():
    reg = reset_metrics()
    c = reg.counter("t_requests_total", "Requests seen")
    c.inc(3)
    fam = reg.counter("t_by_kind_total", "By kind", labelnames=("kind",))
    fam.labels(kind='we"ird').inc()
    h = reg.histogram("t_lat_seconds", "Latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    text = to_prometheus(reg)
    assert "# HELP t_requests_total Requests seen\n" in text
    assert "# TYPE t_requests_total counter\n" in text
    assert "\nt_requests_total 3\n" in text
    assert 't_by_kind_total{kind="we\\"ird"} 1' in text
    # buckets are cumulative and +Inf matches the total count
    assert 't_lat_seconds_bucket{le="0.1"} 1' in text
    assert 't_lat_seconds_bucket{le="1"} 2' in text
    assert 't_lat_seconds_bucket{le="+Inf"} 3' in text
    assert "t_lat_seconds_count 3" in text


def test_json_snapshot_shape():
    reg = reset_metrics()
    reg.counter("t_a_total", "a").inc()
    h = reg.histogram("t_h_seconds", "h", buckets=(1.0,))
    h.observe(0.5)
    doc = to_json(reg)
    json.dumps(doc)  # fully serializable
    assert doc["format"] == "ats-metrics"
    by_name = {m["name"]: m for m in doc["metrics"]}
    assert by_name["t_a_total"]["samples"][0]["value"] == 1
    hist = by_name["t_h_seconds"]["samples"][0]
    assert hist["buckets"] == {"1": 1}
    assert hist["count"] == 1


def test_set_enabled_returns_previous():
    first = set_metrics_enabled(True)
    assert set_metrics_enabled(first) is True
    assert metrics_enabled() is first


def test_collectors_run_at_collect_time():
    reg = reset_metrics()
    calls = []
    reg.register_collector(lambda r: calls.append(r))
    reg.collect()
    assert calls == [reg]
    assert get_registry() is reg
