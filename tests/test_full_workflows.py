"""End-to-end workflow integration tests.

Each test stitches several subsystems together the way a tool
developer would actually use ATS, crossing process and file
boundaries where the real workflow does.
"""

import subprocess
import sys

import pytest

from repro.analysis import analyze_events, analyze_run
from repro.cli import main as cli_main
from repro.core import get_property, write_generated_programs
from repro.trace import read_trace


def test_generate_run_analyze_roundtrip(tmp_path, capsys):
    """generator -> standalone program (subprocess) -> trace file ->
    `ats analyze` -> same verdict as the in-process pipeline."""
    paths = write_generated_programs(tmp_path, paradigm="mpi")
    program = next(p for p in paths if p.name == "test_late_sender.py")
    trace_file = tmp_path / "run.jsonl"
    proc = subprocess.run(
        [
            sys.executable, str(program),
            "--size", "6", "--seed", "3",
            "--trace-out", str(trace_file),
        ],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, proc.stderr

    # offline CLI analysis of the persisted trace
    rc = cli_main(["analyze", str(trace_file)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "late_sender" in out

    # the persisted trace analyzes identically to an in-process run
    events, _ = read_trace(trace_file)
    offline = analyze_events(events)
    inproc = analyze_run(
        get_property("late_sender").run(size=6, seed=3)
    )
    off_sev = offline.severity(property="late_sender")
    in_sev = inproc.severity(property="late_sender")
    # offline total_time defaults to last event time; allow small slack
    assert off_sev == pytest.approx(in_sev, rel=0.05)


def test_sweep_csv_matches_direct_runs(tmp_path):
    """`run_sweep` rows agree with manually-launched runs."""
    from repro.validation import run_sweep

    sweep = run_sweep(
        "imbalance_at_mpi_barrier",
        severity_factors=[1.0, 2.0],
        sizes=[4],
        seed=1,
    )
    for point in sweep.points:
        spec = get_property("imbalance_at_mpi_barrier")
        direct = analyze_run(
            spec.run(
                size=4,
                params=spec.scaled_params(point.config["factor"]),
                seed=1,
            )
        )
        assert point.severity_of("wait_at_barrier") == pytest.approx(
            direct.severity(property="wait_at_barrier")
        )


def test_slice_analysis_agrees_with_full_on_isolated_half(tmp_path):
    """Analyzing a location slice of a split program reproduces the
    same per-property severities as scoping the full analysis."""
    from repro.core import run_split_program
    from repro.trace import Location, by_location

    result = run_split_program(
        lower=["late_sender"], upper=["early_reduce"], size=8
    )
    full = analyze_run(result)
    upper = analyze_events(
        by_location(result.events, ranks=range(4, 8)),
        total_time=result.final_time,
    )
    # early_reduce severity normalized per location count: full has 8
    # locations, the slice 4, so the slice severity is exactly double
    assert upper.severity(property="early_reduce") == pytest.approx(
        2 * full.severity(property="early_reduce"), rel=1e-6
    )
    assert upper.severity(property="late_sender") == 0.0


def test_matrix_cli_and_api_agree(capsys):
    from repro.validation import run_validation_matrix

    api = run_validation_matrix(size=4, num_threads=2, seed=0)
    rc = cli_main(["matrix", "--size", "4", "--threads", "2"])
    out = capsys.readouterr().out
    assert (rc == 0) == api.all_passed
    assert f"positive detection rate: " \
           f"{api.positive_detection_rate:.0%}" in out
