"""T-NEG -- negative correctness: the balanced program suite.

Paper section 1: "Negative synthetic test cases which have no known
performance problem" -- tools "should not diagnose performance problems
for well-tuned programs".  Shape claim: false-positive rate 0 across
the negative registry, at several sizes and sensitivities.
"""

from repro.analysis import analyze_run
from repro.core import list_properties
from repro.validation import run_validation_matrix


def run_negative_matrix(size=8):
    return run_validation_matrix(
        specs=list_properties(negative=True), size=size, num_threads=4
    )


def test_negative_suite_zero_false_positives(benchmark):
    matrix = benchmark.pedantic(
        run_negative_matrix, rounds=1, iterations=1
    )
    print("\nT-NEG false-positive table (negative programs):")
    print(matrix.format_table())
    assert matrix.false_positive_rate == 0.0
    assert matrix.all_passed


def test_negative_suite_at_larger_scale(benchmark):
    matrix = benchmark.pedantic(
        run_negative_matrix, args=(16,), rounds=1, iterations=1
    )
    assert matrix.false_positive_rate == 0.0


def test_negative_suite_headroom(benchmark):
    """Even at a 10x more sensitive threshold the balanced programs stay
    clean -- the residual severities are transport noise, orders of
    magnitude below real pathologies."""

    def run():
        rows = []
        for spec in list_properties(negative=True):
            result = spec.run(size=8, num_threads=4)
            analysis = analyze_run(result)
            worst = max(
                analysis.severities_by_property().values(), default=0.0
            )
            rows.append((spec.name, worst))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nworst residual severity per negative program:")
    for name, worst in rows:
        print(f"  {name:<30} {worst:.4%}")
    assert all(worst < 0.001 for _, worst in rows)
