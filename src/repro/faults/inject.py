"""The runtime fault injector.

One :class:`FaultInjector` carries the mutable state of an active
:class:`~repro.faults.spec.FaultPlan` for one run: a small tree of
:class:`~repro.simkernel.rng.Lcg64` streams (one per fault domain,
derived from the run seed through fixed spawn indices) plus the
pre-resolved plan knobs, so the hook sites pay a single attribute read
and an ``is not None`` branch when fault injection is off.

Hook sites (all duck-typed -- none of those modules imports this one):

* :meth:`perturb_hold` -- ``Simulator.hold`` in
  :mod:`repro.simkernel.scheduler` (stragglers + timing jitter),
* :meth:`wire_delay` / :meth:`reorder_sends` -- the matching engine in
  :mod:`repro.simmpi.transport` (latency noise + bounded reorder),
* :meth:`record_copies` / :meth:`truncate_at` -- the trace writer in
  :mod:`repro.trace.io` (drop / duplicate / mid-file truncation).

Because each domain owns its own stream, adding or removing one
perturbation never shifts the draws of another, and because every draw
happens at a deterministic point of the (deterministic) simulation,
``(seed, plan)`` fully determines the perturbed run -- traces are
byte-identical across invocations.

Fault activity is counted through the :mod:`repro.obs` registry (the
``ats_fault_*`` families) when metrics are enabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..obs.instruments import fault_metrics
from ..simkernel.rng import Lcg64
from .spec import (
    DropRecords,
    DuplicateRecords,
    FaultPlan,
    MessageLatencyNoise,
    MessageReorder,
    RankStragglers,
    TimingJitter,
    TruncateTrace,
)

#: root spawn index of the fault seed tree (distinct from the rank
#: streams, which spawn at small indices, and the OpenMP thread streams
#: at ``1000 + thread``).
_FAULT_ROOT = 0xFA_0175
#: per-domain child indices under the root
_TIMING, _LATENCY, _REORDER, _RECORDS = 1, 2, 3, 4


class FaultInjector:
    """Live fault state consulted by the instrumented runtime layers."""

    __slots__ = (
        "plan",
        "seed",
        "_straggler_slowdown",
        "_jitter",
        "_latency_mag",
        "_reorder_p",
        "_reorder_window",
        "_drop",
        "_dup",
        "_truncate_frac",
        "_timing_rng",
        "_latency_rng",
        "_reorder_rng",
        "_records_rng",
        "_metrics",
    )

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        root = Lcg64(seed).spawn(_FAULT_ROOT)
        self._timing_rng = root.spawn(_TIMING)
        self._latency_rng = root.spawn(_LATENCY)
        self._reorder_rng = root.spawn(_REORDER)
        self._records_rng = root.spawn(_RECORDS)
        # Resolve the plan once; repeated perturbations of one kind
        # compose (slowdowns/magnitudes/rates add, windows take max).
        stragglers: Dict[int, float] = {}
        jitter = latency = drop = dup = trunc = 0.0
        reorder_p, reorder_window = 0.0, 1
        for p in plan.perturbations:
            if p.is_noop:
                continue
            if isinstance(p, RankStragglers):
                for rank in p.ranks:
                    stragglers[rank] = (
                        stragglers.get(rank, 0.0) + p.slowdown
                    )
            elif isinstance(p, TimingJitter):
                jitter += p.magnitude
            elif isinstance(p, MessageLatencyNoise):
                latency += p.magnitude
            elif isinstance(p, MessageReorder):
                reorder_p = min(1.0, reorder_p + p.probability)
                reorder_window = max(reorder_window, p.window)
            elif isinstance(p, DropRecords):
                drop = min(1.0, drop + p.rate)
            elif isinstance(p, DuplicateRecords):
                dup = min(1.0, dup + p.rate)
            elif isinstance(p, TruncateTrace):
                trunc = min(0.999, trunc + p.drop_fraction)
        self._straggler_slowdown = stragglers
        self._jitter = jitter
        self._latency_mag = latency
        self._reorder_p = reorder_p
        self._reorder_window = reorder_window
        self._drop = drop
        self._dup = dup
        self._truncate_frac = trunc
        self._metrics = fault_metrics()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def coerce(
        cls,
        faults: Union["FaultInjector", FaultPlan, None],
        seed: int = 0,
    ) -> Optional["FaultInjector"]:
        """Normalize a user-facing ``faults=`` argument.

        ``None`` and no-op plans resolve to ``None`` (the hooks stay
        entirely cold, guaranteeing magnitude-0 runs take the exact
        clean-run code path); plans are bound to ``seed``; injectors
        pass through.
        """
        if faults is None:
            return None
        if isinstance(faults, FaultInjector):
            return faults
        if not isinstance(faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or FaultInjector, "
                f"got {type(faults).__name__}"
            )
        if faults.is_noop:
            return None
        return cls(faults, seed=seed)

    @property
    def has_trace_faults(self) -> bool:
        return bool(self._drop or self._dup or self._truncate_frac)

    # ------------------------------------------------------------------
    # simkernel hook
    # ------------------------------------------------------------------

    def perturb_hold(self, proc, dt: float) -> float:
        """Perturbed duration for a positive ``hold(dt)`` by ``proc``."""
        out = dt
        if self._straggler_slowdown:
            slow = self._straggler_slowdown.get(
                proc.context.get("mpi_rank", 0)
            )
            if slow:
                extra = dt * slow
                out += extra
                if self._metrics is not None:
                    self._metrics.straggler_seconds.inc(extra)
        if self._jitter:
            u = self._timing_rng.random()
            delta = dt * self._jitter * (2.0 * u - 1.0)
            out += delta
            if self._metrics is not None:
                self._metrics.holds_jittered.inc()
                self._metrics.jitter_seconds.inc(abs(delta))
        return out if out > 0.0 else 0.0

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------

    def wire_delay(self, base_latency: float) -> float:
        """Extra wire seconds added to one message transfer."""
        if not self._latency_mag:
            return 0.0
        extra = base_latency * self._latency_mag * self._latency_rng.random()
        if self._metrics is not None:
            self._metrics.latency_noise_seconds.inc(extra)
        return extra

    def reorder_sends(self, queue: List) -> None:
        """Maybe move the just-appended send toward the queue front.

        Displacement is bounded by the plan's reorder window; called by
        the matching engine right after an unmatched send is queued.
        """
        n = len(queue)
        if n < 2 or not self._reorder_p:
            return
        if self._reorder_rng.random() >= self._reorder_p:
            return
        hops = 1 + self._reorder_rng.randrange(self._reorder_window)
        pos = n - 1 - hops
        if pos < 0:
            pos = 0
        queue.insert(pos, queue.pop())
        if self._metrics is not None:
            self._metrics.messages_reordered.inc()

    # ------------------------------------------------------------------
    # trace-writer hooks
    # ------------------------------------------------------------------

    def record_copies(self) -> int:
        """How many copies of the next record to write (0, 1 or 2)."""
        if self._drop and self._records_rng.random() < self._drop:
            if self._metrics is not None:
                self._metrics.records_dropped.inc()
            return 0
        if self._dup and self._records_rng.random() < self._dup:
            if self._metrics is not None:
                self._metrics.records_duplicated.inc()
            return 2
        return 1

    def truncate_at(self, total_bytes: int) -> Optional[int]:
        """Byte offset to truncate a closed trace file at, or ``None``."""
        if not self._truncate_frac or total_bytes <= 0:
            return None
        cut = int(total_bytes * (1.0 - self._truncate_frac))
        if cut >= total_bytes:
            return None
        if self._metrics is not None:
            self._metrics.truncations.inc()
        return max(cut, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.seed}, plan={self.plan.describe()})"
        )
