"""A tiny urllib client for the analysis service.

Used by ``ats submit``/``ats watch``, the load bench and the tests --
anything that talks to a running ``ats serve`` without pulling in a
third-party HTTP library.  Every method returns the decoded JSON
payload; non-2xx responses raise :class:`ServiceHTTPError` carrying
the status code and (for 429/503) the parsed ``Retry-After`` hint.

**Restart tolerance.**  Idempotent GETs (``/jobs``, ``/status``,
``/metrics``...) retry through connection failures with a capped,
seeded-jitter exponential backoff -- so ``ats watch`` rides out a
service restart instead of crashing with ``ECONNREFUSED`` the moment
the old process dies.  POSTs never auto-retry: a submission that died
mid-flight may or may not have been journaled, and replaying it is
the caller's decision, not the transport's.

**Deadline propagation.**  Submissions accept ``deadline`` (seconds);
it travels as an ``X-Deadline-Ms`` header and the service cancels the
job (state ``expired``) if a worker cannot start it in time.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional
from urllib import error as urlerror
from urllib import request as urlrequest

from ..simkernel.rng import Lcg64

__all__ = ["ServiceClient", "ServiceHTTPError", "ServiceUnreachable"]


class ServiceUnreachable(Exception):
    """Connection attempts (and retries, if any) all failed."""

    def __init__(self, url: str, attempts: int, last: Exception):
        super().__init__(
            f"service unreachable after {attempts} attempt(s): "
            f"{url} ({last})"
        )
        self.url = url
        self.attempts = attempts
        self.last = last


class ServiceHTTPError(Exception):
    """A non-2xx service response."""

    def __init__(
        self,
        status: int,
        payload: Optional[dict] = None,
        retry_after: Optional[float] = None,
    ):
        message = (payload or {}).get("error", f"HTTP {status}")
        super().__init__(f"{status}: {message}")
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


class ServiceClient:
    """Synchronous client bound to one service base URL."""

    #: transient transport failures worth retrying on idempotent GETs.
    _RETRYABLE = (
        urlerror.URLError, ConnectionError, TimeoutError, OSError,
    )

    def __init__(
        self,
        base_url: str,
        tenant: str = "default",
        timeout: float = 30.0,
        retries: int = 4,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        backoff_seed: int = 0,
        sleep=time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        #: extra attempts for idempotent GETs (0 disables reconnect).
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = Lcg64(backoff_seed)
        self._sleep = sleep

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Capped exponential delay with seeded jitter (deterministic
        for a given ``backoff_seed`` -- tests assert exact schedules)."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return base * self._rng.uniform(0.5, 1.0)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        raw: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ):
        data = None
        send_headers = {"X-Tenant": self.tenant}
        if headers:
            send_headers.update(headers)
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        url = self.base_url + path
        # only idempotent reads ride through restarts; a replayed POST
        # could double-submit work the journal already acknowledged.
        attempts = 1 + (self.retries if method == "GET" else 0)
        last: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                self._sleep(self._backoff(attempt - 1))
            req = urlrequest.Request(
                url, data=data, headers=send_headers, method=method,
            )
            try:
                with urlrequest.urlopen(
                    req, timeout=self.timeout
                ) as resp:
                    payload = resp.read()
            except urlerror.HTTPError as exc:
                detail = None
                try:
                    detail = json.loads(exc.read())
                except ValueError:
                    pass
                retry_after = exc.headers.get("Retry-After")
                raise ServiceHTTPError(
                    exc.code,
                    detail,
                    float(retry_after) if retry_after else None,
                ) from None
            except self._RETRYABLE as exc:
                last = exc
                continue
            if raw:
                return payload.decode("utf-8")
            return json.loads(payload)
        raise ServiceUnreachable(url, attempts, last)

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------

    @staticmethod
    def _deadline_headers(
        deadline: Optional[float],
    ) -> Optional[Dict[str, str]]:
        if deadline is None:
            return None
        return {"X-Deadline-Ms": str(int(deadline * 1000))}

    def submit_run(
        self,
        property: str,
        wait: bool = False,
        deadline: Optional[float] = None,
        **params: Any,
    ) -> dict:
        body: Dict[str, Any] = {"property": property, **params}
        if wait:
            body["wait"] = True
        return self._request(
            "POST", "/submit-run", body,
            headers=self._deadline_headers(deadline),
        )

    def analyze(
        self,
        run: str,
        wait: bool = False,
        deadline: Optional[float] = None,
        **params: Any,
    ) -> dict:
        body: Dict[str, Any] = {"run": run, **params}
        if wait:
            body["wait"] = True
        return self._request(
            "POST", "/analyze", body,
            headers=self._deadline_headers(deadline),
        )

    def diff(
        self,
        before: str,
        after: str,
        wait: bool = False,
        deadline: Optional[float] = None,
        **params: Any,
    ) -> dict:
        body: Dict[str, Any] = {
            "before": before, "after": after, **params
        }
        if wait:
            body["wait"] = True
        return self._request(
            "POST", "/diff", body,
            headers=self._deadline_headers(deadline),
        )

    def campaign(
        self,
        wait: bool = False,
        deadline: Optional[float] = None,
        **params: Any,
    ) -> dict:
        body: Dict[str, Any] = dict(params)
        if wait:
            body["wait"] = True
        return self._request(
            "POST", "/campaign", body,
            headers=self._deadline_headers(deadline),
        )

    def synth(
        self,
        spec: Dict[str, Any],
        wait: bool = False,
        deadline: Optional[float] = None,
        **params: Any,
    ) -> dict:
        """Submit a synthesized-scenario campaign (a CampaignSpec dict)."""
        body: Dict[str, Any] = dict(params, spec=spec)
        if wait:
            body["wait"] = True
        return self._request(
            "POST", "/synth", body,
            headers=self._deadline_headers(deadline),
        )

    def export(
        self,
        runs: Optional[list] = None,
        csv: bool = False,
        wait: bool = False,
        deadline: Optional[float] = None,
        **params: Any,
    ) -> dict:
        """Submit a ground-truth dataset export over the archive."""
        body: Dict[str, Any] = dict(params)
        if runs:
            body["runs"] = list(runs)
        if csv:
            body["csv"] = True
        if wait:
            body["wait"] = True
        return self._request(
            "POST", "/export", body,
            headers=self._deadline_headers(deadline),
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def history(self) -> dict:
        return self._request("GET", "/history")

    def job(self, job_id: str, wait: bool = False) -> dict:
        suffix = "?wait=1" if wait else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def status(self) -> dict:
        return self._request("GET", "/status")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """Prometheus text exposition (raw string)."""
        return self._request("GET", "/metrics", raw=True)

    def metrics_json(self) -> dict:
        return self._request("GET", "/metrics.json")

    def drain(self, timeout: float = 30.0) -> dict:
        """Stop intake, wait for in-flight work, flush durable state."""
        return self._request("POST", "/drain", {"timeout": timeout})
