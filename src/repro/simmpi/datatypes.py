"""MPI datatypes and reduction operations.

Only the basic fixed-size types are provided -- the paper notes that
"for most purposes, simple MPI types like integers (MPI_INT) and
doubles (MPI_DOUBLE) will be sufficient" -- but the buffer layer keys
everything off the :class:`Datatype` object, so derived types could be
added without touching the transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype: a name, a byte size and a numpy dtype."""

    name: str
    size: int
    np_dtype: np.dtype

    def __str__(self) -> str:
        return self.name


MPI_CHAR = Datatype("MPI_CHAR", 1, np.dtype(np.int8))
MPI_BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
MPI_INT = Datatype("MPI_INT", 4, np.dtype(np.int32))
MPI_LONG = Datatype("MPI_LONG", 8, np.dtype(np.int64))
MPI_FLOAT = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
MPI_DOUBLE = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))

ALL_DATATYPES = (
    MPI_CHAR,
    MPI_BYTE,
    MPI_INT,
    MPI_LONG,
    MPI_FLOAT,
    MPI_DOUBLE,
)


@dataclass(frozen=True)
class Op:
    """A reduction operation over numpy arrays.

    All predefined operations are associative and commutative, which
    the tree-based reduce algorithms rely on.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.fn(a, b)

    def __str__(self) -> str:
        return self.name


MPI_SUM = Op("MPI_SUM", np.add)
MPI_PROD = Op("MPI_PROD", np.multiply)
MPI_MAX = Op("MPI_MAX", np.maximum)
MPI_MIN = Op("MPI_MIN", np.minimum)

ALL_OPS = (MPI_SUM, MPI_PROD, MPI_MAX, MPI_MIN)
