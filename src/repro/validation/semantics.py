"""Semantics-preservation checking (paper chapter 2).

"First, the test suite is executed on the target system.  Second, ...
the validation suite is executed again, but this time with
instrumentation added by the performance analysis tool.  The result of
both runs must be the same."

``check_semantics`` runs a program with and without instrumentation
(and optionally with intrusive instrumentation) and compares the
computed results -- the direct analogue of instrumenting an MPI
validation suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from ..simmpi.runtime import run_mpi
from ..simmpi.transport import TransportParams


def _results_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _results_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    return bool(a == b)


@dataclass
class SemanticsReport:
    """Outcome of one semantics-preservation check."""

    program: str
    results_equal: bool
    timing_distortion: float  # (instrumented - clean) / clean run time
    clean_time: float
    instrumented_time: float
    events_recorded: int

    @property
    def semantics_preserved(self) -> bool:
        return self.results_equal

    def format(self) -> str:
        verdict = "PASS" if self.results_equal else "FAIL"
        return (
            f"{self.program}: semantics {verdict}; run time "
            f"{self.clean_time:.6f}s -> {self.instrumented_time:.6f}s "
            f"({self.timing_distortion:+.2%} distortion, "
            f"{self.events_recorded} events)\n"
        )


def check_semantics(
    main: Callable,
    size: int = 4,
    intrusion: float = 0.0,
    transport: Optional[TransportParams] = None,
    seed: int = 0,
    name: Optional[str] = None,
    **kwargs: Any,
) -> SemanticsReport:
    """Run ``main`` uninstrumented and instrumented; compare results.

    With ``intrusion == 0`` the instrumented run must also take exactly
    the same virtual time (perfectly non-intrusive measurement); with
    ``intrusion > 0`` the report quantifies the timing distortion, the
    paper's *intrusiveness* aspect.
    """
    clean = run_mpi(
        main, size, transport=transport, trace=False, seed=seed, **kwargs
    )
    instrumented = run_mpi(
        main,
        size,
        transport=transport,
        trace=True,
        intrusion=intrusion,
        seed=seed,
        **kwargs,
    )
    distortion = (
        (instrumented.final_time - clean.final_time) / clean.final_time
        if clean.final_time > 0
        else 0.0
    )
    return SemanticsReport(
        program=name or getattr(main, "__name__", "program"),
        results_equal=_results_equal(
            clean.results, instrumented.results
        ),
        timing_distortion=distortion,
        clean_time=clean.final_time,
        instrumented_time=instrumented.final_time,
        events_recorded=len(instrumented.events),
    )
