"""NPB-style kernel skeletons (paper chapter 4's suggested collection).

The paper points at the NAS Parallel Benchmarks as a source of
applications with known performance behaviour.  Two archetypes that
complement the bundled apps:

* :func:`ep_like` -- "Embarrassingly Parallel": pure independent
  computation with a single reduction at the end.  Documented
  behaviour: near-perfect scaling, nothing to report (the large-scale
  negative case) -- unless ``work_skew`` is set, in which case the only
  communication point (the final reduce) absorbs all of it.
* :func:`is_like` -- "Integer Sort": bucket exchange via alltoallv-style
  traffic each iteration.  Documented behaviour: communication volume
  grows with key count; uneven bucket distributions create *wait at
  NxN* at the exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simkernel import current_process
from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_INT, MPI_LONG, MPI_SUM
from ..trace.api import region
from ..work import do_work

SECONDS_PER_SAMPLE = 5e-8
SECONDS_PER_KEY = 2e-8


@dataclass(frozen=True)
class EpConfig:
    """Embarrassingly-parallel kernel parameters."""

    samples_per_rank: int = 65536
    #: 0 = perfectly even; s skews per-rank sample counts linearly
    work_skew: float = 0.0


def ep_like(comm: Communicator, config: EpConfig = EpConfig()) -> int:
    """Run the EP kernel; every rank returns the global hit count."""
    me = comm.rank()
    sz = comm.size()
    skew = 1.0 + config.work_skew * (me / max(1, sz - 1))
    samples = int(config.samples_per_rank * skew)
    rng = current_process().context.get("rng")
    with region("ep_like"):
        with region("ep_compute"):
            # Real computation: Monte-Carlo quarter-circle hits,
            # deterministic per rank via the seeded stream.
            hits = 0
            for _ in range(min(samples, 2048)):  # bounded real part
                x = rng.random() if rng else 0.5
                y = rng.random() if rng else 0.5
                if x * x + y * y <= 1.0:
                    hits += 1
            do_work(samples * SECONDS_PER_SAMPLE)
        sb = alloc_mpi_buf(MPI_LONG, 1)
        rb = alloc_mpi_buf(MPI_LONG, 1)
        sb.data[0] = hits
        comm.allreduce(sb, rb, MPI_SUM)
    return int(rb.data[0])


@dataclass(frozen=True)
class IsConfig:
    """Integer-sort kernel parameters."""

    keys_per_rank: int = 4096
    iterations: int = 4
    #: 0 = uniform buckets; s skews the key distribution toward rank 0
    bucket_skew: float = 0.0


def is_like(comm: Communicator, config: IsConfig = IsConfig()) -> int:
    """Run the IS kernel; every rank returns its sorted-key checksum."""
    me = comm.rank()
    sz = comm.size()
    rng = current_process().context.get("rng")
    checksum = 0
    with region("is_like"):
        for _ in range(config.iterations):
            with region("is_generate"):
                # Keys drawn so bucket owner distribution can be skewed.
                keys = np.zeros(config.keys_per_rank, dtype=np.int64)
                for i in range(config.keys_per_rank):
                    u = rng.random() if rng else (i % 100) / 100
                    u = u ** (1.0 + config.bucket_skew)
                    keys[i] = int(u * sz * 1000) % (sz * 1000)
                do_work(config.keys_per_rank * SECONDS_PER_KEY)
            with region("is_exchange"):
                counts = np.zeros(sz, dtype=np.int64)
                owners = keys // 1000
                for owner in owners:
                    counts[owner] += 1
                # Exchange bucket counts, then the keys (fixed-width
                # slots keep the alltoall regular).
                csend = alloc_mpi_buf(MPI_INT, sz)
                crecv = alloc_mpi_buf(MPI_INT, sz)
                csend.data[:] = counts
                comm.alltoall(csend, crecv)
                slot = config.keys_per_rank
                ksend = alloc_mpi_buf(MPI_LONG, slot * sz)
                for owner in range(sz):
                    mine = keys[owners == owner]
                    ksend.data[owner * slot : owner * slot + len(mine)] = (
                        mine
                    )
                krecv = alloc_mpi_buf(MPI_LONG, slot * sz)
                comm.alltoall(ksend, krecv)
            with region("is_local_sort"):
                received = []
                for owner in range(sz):
                    n = int(crecv.data[owner])
                    received.append(
                        krecv.data[owner * slot : owner * slot + n]
                    )
                mine = np.sort(np.concatenate(received))
                do_work(len(mine) * SECONDS_PER_KEY)
                checksum = int(np.sum(mine) % (1 << 31))
    return checksum
