"""MPI-level error types."""

from __future__ import annotations


class MpiError(Exception):
    """Base class for errors raised by the simulated MPI runtime."""


class TruncationError(MpiError):
    """A received message was longer than the posted receive buffer.

    Mirrors ``MPI_ERR_TRUNCATE``: matching happens on the envelope only,
    so an undersized buffer is detected at delivery time.
    """


class InvalidRankError(MpiError):
    """A rank argument was outside the communicator's group."""


class InvalidTagError(MpiError):
    """A user message tag was negative (reserved for internal traffic)."""


class CommMismatchError(MpiError):
    """A buffer or operation was used with an incompatible communicator."""


class RequestError(MpiError):
    """Misuse of a request object (double wait, foreign process, ...)."""
