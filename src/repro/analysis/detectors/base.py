"""Detector infrastructure: the protocol and shared trace-replay helpers."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Protocol, Sequence, Tuple

from ...trace.events import (
    CallPath,
    CollExit,
    Enter,
    Event,
    Exit,
    Location,
    Recv,
    Send,
)
from ..model import Finding


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters the analyzer knows about the measured system.

    ``eager_threshold`` mirrors the transport configuration (a real
    tool would know the MPI library's protocol switch point);
    ``noise_floor`` discards waits below pure transport cost so
    microsecond-scale algorithm skew does not pollute negative tests.
    """

    eager_threshold: int = 8192
    noise_floor: float = 5e-5


class Detector(Protocol):
    """A pattern detector: trace events in, findings out."""

    #: analyzer property ids this detector can emit
    produces: Tuple[str, ...]

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RegionVisit:
    """One completed region instance at one location."""

    loc: Location
    region: str
    path: CallPath
    enter: float
    exit: float
    child_time: float

    @property
    def inclusive(self) -> float:
        return self.exit - self.enter

    @property
    def exclusive(self) -> float:
        return self.inclusive - self.child_time


def iter_region_visits(events: Sequence[Event]) -> Iterator[RegionVisit]:
    """Replay enter/exit events into completed :class:`RegionVisit`\\ s.

    Events must be time-ordered per location (they are, as recorded).
    Unclosed regions at the end of the trace are ignored.
    """
    stacks: dict[Location, list[list]] = defaultdict(list)
    # stack entry: [region, enter_time, path, child_time]
    for event in events:
        if isinstance(event, Enter):
            stacks[event.loc].append([event.region, event.time, event.path, 0.0])
        elif isinstance(event, Exit):
            stack = stacks[event.loc]
            if not stack or stack[-1][0] != event.region:
                continue
            region, enter, path, child_time = stack.pop()
            inclusive = event.time - enter
            if stack:
                stack[-1][3] += inclusive
            yield RegionVisit(
                loc=event.loc,
                region=region,
                path=path,
                enter=enter,
                exit=event.time,
                child_time=child_time,
            )


def matched_p2p_pairs(
    events: Sequence[Event],
) -> Iterator[Tuple[Send, Recv]]:
    """Yield matched user-level (send, recv) event pairs by msg_id."""
    sends: Dict[int, Send] = {}
    recvs: Dict[int, Recv] = {}
    for event in events:
        if isinstance(event, Send) and not event.internal:
            sends[event.msg_id] = event
        elif isinstance(event, Recv) and not event.internal:
            recvs[event.msg_id] = event
    for msg_id, recv in recvs.items():
        send = sends.get(msg_id)
        if send is not None:
            yield send, recv


def collective_instances(
    events: Sequence[Event],
) -> Dict[Tuple[int, int, str], list[CollExit]]:
    """Group CollExit events: (comm_id, instance, op) -> participants."""
    groups: Dict[Tuple[int, int, str], list[CollExit]] = defaultdict(list)
    for event in events:
        if isinstance(event, CollExit):
            groups[(event.comm_id, event.instance, event.op)].append(event)
    return dict(groups)
