"""Analysis data model: findings, results, severities.

Results follow EXPERT's three-dimensional structure (paper figure 3.5):
**performance property** x **call path** x **location**.  A
:class:`Finding` is one cell of that cube -- a waiting time attributed
to a property at a call path and location.  Severity follows the ASL
definition: the magnitude "specifies the importance of the property in
terms of its contribution to limiting the performance of the program"
-- here, waiting time as a fraction of total allocation time
(final time x number of locations).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..trace.events import CallPath, Location


@dataclass(frozen=True)
class Finding:
    """One attributed waiting time: (property, call path, location)."""

    property: str
    callpath: CallPath
    loc: Location
    wait_time: float

    def __post_init__(self) -> None:
        if self.wait_time < 0:
            raise ValueError("finding wait time must be non-negative")


@dataclass
class AnalysisResult:
    """Everything the analyzer concluded about one run."""

    findings: list[Finding]
    total_time: float
    locations: list[Location]
    #: comm_id -> member global ranks, from the trace
    comm_registry: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def total_allocation(self) -> float:
        """Total CPU allocation: run time times location count."""
        return self.total_time * max(1, len(self.locations))

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def severity(
        self,
        property: Optional[str] = None,
        callpath: Optional[CallPath] = None,
        loc: Optional[Location] = None,
    ) -> float:
        """Summed severity (fraction of allocation) of matching findings."""
        alloc = self.total_allocation
        if alloc <= 0:
            return 0.0
        total = 0.0
        for f in self.findings:
            if property is not None and f.property != property:
                continue
            if callpath is not None and f.callpath != callpath:
                continue
            if loc is not None and f.loc != loc:
                continue
            total += f.wait_time
        return total / alloc

    def severities_by_property(self) -> Dict[str, float]:
        """Property id -> severity, descending by severity."""
        sums: Dict[str, float] = defaultdict(float)
        for f in self.findings:
            sums[f.property] += f.wait_time
        alloc = self.total_allocation
        if alloc <= 0:
            return {}
        return dict(
            sorted(
                ((p, w / alloc) for p, w in sums.items()),
                key=lambda kv: -kv[1],
            )
        )

    def detected(self, threshold: float = 0.01) -> tuple[str, ...]:
        """Property ids whose severity exceeds ``threshold`` (fraction).

        The threshold models a tool's sensitivity; the paper stresses
        that "automatic performance tools have different thresholds/
        sensitivities", hence the parameter.
        """
        return tuple(
            p
            for p, s in self.severities_by_property().items()
            if s >= threshold
        )

    def callpaths_of(self, property: str) -> Dict[CallPath, float]:
        """Call path -> severity for one property (EXPERT middle pane)."""
        sums: Dict[CallPath, float] = defaultdict(float)
        for f in self.findings:
            if f.property == property:
                sums[f.callpath] += f.wait_time
        alloc = self.total_allocation
        return dict(
            sorted(
                ((c, w / alloc) for c, w in sums.items()),
                key=lambda kv: -kv[1],
            )
        )

    def locations_of(
        self, property: str, callpath: Optional[CallPath] = None
    ) -> Dict[Location, float]:
        """Location -> severity for one property (EXPERT right pane)."""
        sums: Dict[Location, float] = defaultdict(float)
        for f in self.findings:
            if f.property != property:
                continue
            if callpath is not None and f.callpath != callpath:
                continue
            sums[f.loc] += f.wait_time
        alloc = self.total_allocation
        return {loc: w / alloc for loc, w in sorted(sums.items())}

    def ranked(self) -> list[tuple[str, float]]:
        """Properties ranked by severity, most severe first."""
        return list(self.severities_by_property().items())
