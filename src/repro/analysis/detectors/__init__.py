"""Pattern detectors: one class per performance-property family."""

from .base import (
    AnalysisConfig,
    Detector,
    RegionVisit,
    TraceIndex,
    collective_instances,
    iter_region_visits,
    matched_p2p_pairs,
)
from .collective import (
    EarlyRootDetector,
    InitOverheadDetector,
    LateRootDetector,
    WaitAtBarrierDetector,
    WaitAtNxNDetector,
)
from .omp import OmpCriticalContentionDetector, OmpImbalanceDetector
from .sequential import IoBoundDetector
from .p2p import LateReceiverDetector, LateSenderDetector, WrongOrderDetector

#: the default detector battery, covering every registry property
DEFAULT_DETECTORS = (
    LateSenderDetector(),
    LateReceiverDetector(),
    WrongOrderDetector(),
    WaitAtBarrierDetector(),
    WaitAtNxNDetector(),
    LateRootDetector(),
    EarlyRootDetector(),
    InitOverheadDetector(),
    OmpImbalanceDetector(),
    OmpCriticalContentionDetector(),
    IoBoundDetector(),
)

__all__ = [
    "AnalysisConfig",
    "DEFAULT_DETECTORS",
    "Detector",
    "EarlyRootDetector",
    "InitOverheadDetector",
    "IoBoundDetector",
    "LateReceiverDetector",
    "LateRootDetector",
    "LateSenderDetector",
    "OmpCriticalContentionDetector",
    "OmpImbalanceDetector",
    "RegionVisit",
    "TraceIndex",
    "WaitAtBarrierDetector",
    "WaitAtNxNDetector",
    "WrongOrderDetector",
    "collective_instances",
    "iter_region_visits",
    "matched_p2p_pairs",
]
