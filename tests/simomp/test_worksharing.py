"""Worksharing loops, sections, critical sections, reductions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import SimulationCrashed, current_process
from repro.simomp import (
    OmpError,
    omp_critical,
    omp_for,
    omp_get_thread_num,
    omp_parallel,
    omp_sections,
    require_team,
    run_omp,
)
from repro.work import do_work


def collect_schedule(iterations, schedule, chunk, num_threads):
    """Run an omp_for and return {thread: [iterations executed]}."""
    executed = {}

    def body():
        me = omp_get_thread_num()
        mine = executed.setdefault(me, [])
        omp_for(
            iterations,
            lambda i: mine.append(i),
            schedule=schedule,
            chunk=chunk,
        )

    run_omp(lambda: omp_parallel(body, num_threads=num_threads))
    return executed


def test_static_schedule_contiguous_blocks():
    executed = collect_schedule(10, "static", None, 3)
    assert executed[0] == [0, 1, 2, 3]
    assert executed[1] == [4, 5, 6]
    assert executed[2] == [7, 8, 9]


def test_static_chunked_round_robin():
    executed = collect_schedule(10, "static", 2, 2)
    assert executed[0] == [0, 1, 4, 5, 8, 9]
    assert executed[1] == [2, 3, 6, 7]


def test_dynamic_schedule_covers_all_iterations():
    executed = collect_schedule(20, "dynamic", 3, 4)
    all_iters = sorted(i for mine in executed.values() for i in mine)
    assert all_iters == list(range(20))


def test_guided_schedule_covers_all_iterations():
    executed = collect_schedule(50, "guided", None, 4)
    all_iters = sorted(i for mine in executed.values() for i in mine)
    assert all_iters == list(range(50))


def test_guided_chunk_sizes_decrease():
    grabs = []

    def body():
        team = require_team()
        last = None
        mine = []
        for i in team.loop_chunks(64, "guided"):
            mine.append(i)
        # consecutive runs in `mine` are this thread's grabs
        runs = []
        for i in mine:
            if runs and i == runs[-1][-1] + 1 and len(runs[-1]) > 0:
                runs[-1].append(i)
            else:
                runs.append([i])
        grabs.extend(len(r) for r in runs)

    run_omp(lambda: omp_parallel(body, num_threads=4))
    assert max(grabs) >= 64 // 4  # first grab is remaining/size


@given(
    iterations=st.integers(min_value=0, max_value=200),
    num_threads=st.integers(min_value=1, max_value=8),
    schedule=st.sampled_from(["static", "dynamic", "guided"]),
    chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=7)),
)
@settings(max_examples=25, deadline=None)
def test_every_schedule_partitions_iterations_exactly(
    iterations, num_threads, schedule, chunk
):
    """Invariant: each iteration executes exactly once, on one thread."""
    executed = collect_schedule(iterations, schedule, chunk, num_threads)
    all_iters = sorted(i for mine in executed.values() for i in mine)
    assert all_iters == list(range(iterations))


def test_for_outside_region_rejected():
    def main():
        omp_for(4, lambda i: None)

    with pytest.raises(SimulationCrashed) as info:
        run_omp(main)
    assert isinstance(info.value.original, OmpError)


def test_bad_schedule_rejected():
    def body():
        omp_for(4, lambda i: None, schedule="magic")

    with pytest.raises(SimulationCrashed) as info:
        run_omp(lambda: omp_parallel(body, num_threads=2))
    assert isinstance(info.value.original, OmpError)


def test_for_has_implicit_barrier():
    after = {}

    def body():
        me = omp_get_thread_num()
        omp_for(4, lambda i: do_work(0.01 * (i + 1)), schedule="static")
        after[me] = current_process().sim.now

    run_omp(lambda: omp_parallel(body, num_threads=4))
    # static: thread i runs iteration i; slowest is 0.04
    assert all(t >= 0.04 for t in after.values())


def test_for_nowait_skips_barrier():
    after = {}

    def body():
        me = omp_get_thread_num()
        omp_for(
            4,
            lambda i: do_work(0.01 * (i + 1)),
            schedule="static",
            nowait=True,
        )
        after[me] = current_process().sim.now

    run_omp(lambda: omp_parallel(body, num_threads=4))
    assert after[0] == pytest.approx(0.01)
    assert after[3] == pytest.approx(0.04)


def test_sections_distribute_all_bodies():
    ran = []

    def body():
        omp_sections(
            [lambda i=i: ran.append(i) for i in range(6)]
        )

    run_omp(lambda: omp_parallel(body, num_threads=3))
    assert sorted(ran) == list(range(6))


def test_critical_serializes_threads():
    spans = []

    def body():
        with omp_critical("zone"):
            start = current_process().sim.now
            do_work(0.01)
            spans.append((start, current_process().sim.now))

    run_omp(lambda: omp_parallel(body, num_threads=4))
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-12  # no overlap


def test_critical_different_names_do_not_serialize():
    spans = []

    def body():
        name = f"zone{omp_get_thread_num()}"
        with omp_critical(name):
            start = current_process().sim.now
            do_work(0.01)
            spans.append((start, current_process().sim.now))

    run_omp(lambda: omp_parallel(body, num_threads=4))
    assert all(s == 0.0 for s, _ in spans)  # all ran concurrently


def test_team_reduce_deterministic_order():
    def body():
        me = omp_get_thread_num()
        team = require_team()
        return team.reduce([me], lambda a, b: a + b)

    result = run_omp(lambda: omp_parallel(body, num_threads=4))
    assert result.result == [[0, 1, 2, 3]] * 4


def test_team_reduce_numeric():
    def body():
        me = omp_get_thread_num()
        team = require_team()
        return team.reduce(me + 1, lambda a, b: a + b)

    result = run_omp(lambda: omp_parallel(body, num_threads=5))
    assert result.result == [15] * 5


def test_negative_iterations_rejected():
    def body():
        omp_for(-1, lambda i: None)

    with pytest.raises(SimulationCrashed) as info:
        run_omp(lambda: omp_parallel(body, num_threads=2))
    assert isinstance(info.value.original, OmpError)


def test_zero_chunk_rejected():
    def body():
        omp_for(4, lambda i: None, schedule="dynamic", chunk=0)

    with pytest.raises(SimulationCrashed) as info:
        run_omp(lambda: omp_parallel(body, num_threads=2))
    assert isinstance(info.value.original, OmpError)
