"""Buffered TraceWriter and recorder sink/flush semantics."""

import json

import pytest

from repro.trace import TraceRecorder, TraceWriter, read_trace
from repro.trace.events import Location


def _record_some(rec: TraceRecorder, n: int = 3) -> None:
    loc = Location(0, 0)
    for i in range(n):
        rec.enter(float(i), loc, f"r{i}")
    for i in reversed(range(n)):
        rec.exit(float(n + i), loc, f"r{i}")


def test_writer_buffers_until_flush(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder()
    _record_some(rec)
    writer = TraceWriter(path, buffer_lines=10_000)
    writer.write_many(rec.events)
    # Everything still in the line buffer: not even the header is out.
    assert path.read_text() == ""
    writer.flush()
    lines = path.read_text().splitlines()
    assert len(lines) == 1 + len(rec.events)
    assert json.loads(lines[0])["format"] == "ats-trace"
    writer.close()


def test_writer_close_drains_tail(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder()
    _record_some(rec)
    with TraceWriter(path, metadata={"program": "x"}) as writer:
        writer.write_many(rec.events)
    events, metadata = read_trace(path)
    assert len(events) == len(rec.events)
    assert metadata == {"program": "x"}
    # Idempotent close; writes after close are rejected.
    writer.close()
    with pytest.raises(ValueError):
        writer.write(rec.events[0])


def test_recorder_context_manager_flushes_on_crash(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder()
    rec.attach_sink(TraceWriter(path, buffer_lines=10_000))
    with pytest.raises(RuntimeError):
        with rec:
            _record_some(rec)
            raise RuntimeError("simulated crash")
    # The buffered tail still reached disk.
    events, _ = read_trace(path)
    assert len(events) == len(rec.events)


def test_recorder_flush_is_incremental(tmp_path):
    path = tmp_path / "t.jsonl"
    rec = TraceRecorder()
    writer = TraceWriter(path)
    rec.attach_sink(writer)
    loc = Location(1, 0)
    rec.enter(0.0, loc, "a")
    assert rec.flush() == 1
    rec.exit(1.0, loc, "a")
    assert rec.flush() == 1
    assert rec.flush() == 0
    rec.close()
    events, _ = read_trace(path)
    assert [e.kind for e in events] == ["enter", "exit"]
    assert writer.count == 2


def test_recorder_rejects_second_sink(tmp_path):
    rec = TraceRecorder()
    w1 = TraceWriter(tmp_path / "a.jsonl")
    w2 = TraceWriter(tmp_path / "b.jsonl")
    rec.attach_sink(w1)
    rec.attach_sink(w1)  # same sink again is fine
    from repro.trace import TraceError

    with pytest.raises(TraceError):
        rec.attach_sink(w2)
    w1.close()
    w2.close()
