"""The statistical detector family: similarity analysis as a Detector.

Rule-based detectors name the exact ASL property a wait belongs to; a
statistical detector cannot -- it only knows that some ranks behave
unlike the others.  The family therefore emits its own property ids
(``similarity_rank_outlier``, ``similarity_phase_anomaly``) and a
**class taxonomy** maps them onto the analyzer catalog: every ASL
property id belongs to one behavior class (imbalance, straggler,
contention, ordering, overhead, io), and each statistical property
declares which classes an emission of it plausibly explains.  The
robustness harness and the synth scorer use that mapping to grade
rule-based and statistical recall side by side on the same
ground-truth manifests.

Both detectors satisfy the :class:`~repro.analysis.detectors.Detector`
protocol, so they run through ``analyze()``, the archive's incremental
cache (their fingerprints cover the delegated feature/similarity
modules -- see ``fingerprint_modules``), the robustness harness and
synth campaign scoring like any rule-based detector.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from ..analysis.detectors.base import AnalysisConfig
from ..analysis.index import TraceIndex
from ..analysis.model import Finding
from ..obs.instruments import stats_metrics
from ..obs.spans import span
from ..trace.events import Event
from .features import FeatureMatrix, behavior_matrix
from .similarity import cluster_rows

#: analyzer property id -> behavior class
PROPERTY_CLASSES: Dict[str, str] = {
    "late_sender": "straggler",
    "late_receiver": "straggler",
    "late_broadcast": "straggler",
    "late_scatter": "straggler",
    "late_scatterv": "straggler",
    "early_reduce": "straggler",
    "early_gather": "straggler",
    "early_gatherv": "straggler",
    "wait_at_barrier": "imbalance",
    "wait_at_nxn": "imbalance",
    "imbalance_at_omp_barrier": "imbalance",
    "imbalance_in_omp_pregion": "imbalance",
    "imbalance_in_omp_loop": "imbalance",
    "imbalance_in_omp_sections": "imbalance",
    "imbalance_at_omp_single": "imbalance",
    "imbalance_at_omp_reduce": "imbalance",
    "omp_critical_contention": "contention",
    "omp_lock_contention": "contention",
    "messages_in_wrong_order": "ordering",
    "mpi_init_overhead": "overhead",
    "io_bound": "io",
}

#: statistical property id -> behavior classes an emission reliably
#: explains.  Deliberately conservative: the "io" class maps to
#: nothing because IO-boundedness is uniform across ranks -- there is
#: no outlier structure for a similarity method to find -- and
#: contention (serialized access, every thread delayed) shows up as a
#: per-phase anomaly rather than a whole-vector outlier.
SIMILARITY_COVERS: Dict[str, FrozenSet[str]] = {
    "similarity_rank_outlier": frozenset(
        {"imbalance", "straggler", "ordering"}
    ),
    "similarity_phase_anomaly": frozenset(
        {"imbalance", "straggler", "contention"}
    ),
}

#: every property id the statistical family can emit
SIMILARITY_PROPERTY_IDS: Tuple[str, ...] = tuple(
    sorted(SIMILARITY_COVERS)
)


def property_class(pid: str) -> str:
    """Behavior class of an analyzer property id ('' when unknown)."""
    return PROPERTY_CLASSES.get(pid, "")


def covers(stat_pid: str, pid: str) -> bool:
    """Does a statistical emission plausibly explain analyzer ``pid``?"""
    return property_class(pid) in SIMILARITY_COVERS.get(
        stat_pid, frozenset()
    )


def statistical_expectations(
    expected: Iterable[str],
) -> Tuple[str, ...]:
    """The statistical property ids a ground truth obliges to fire.

    Given a manifest's expected analyzer property ids, returns the
    sorted statistical ids whose covered classes intersect them --
    what the robustness harness adds to a cell's ``expected`` when the
    similarity family is enabled.
    """
    classes = {property_class(pid) for pid in expected} - {""}
    return tuple(
        pid
        for pid in SIMILARITY_PROPERTY_IDS
        if SIMILARITY_COVERS[pid] & classes
    )


def _as_matrix(
    events: Sequence[Event], total_time_hint: float = 0.0
) -> FeatureMatrix:
    index = (
        events
        if isinstance(events, TraceIndex)
        else TraceIndex(list(events))
    )
    metrics = stats_metrics()
    with span("stats:features", cat="stats", rows=len(index.locations)):
        if metrics is None:
            return behavior_matrix(index)
        from time import perf_counter

        t0 = perf_counter()
        matrix = behavior_matrix(index)
        metrics.feature_seconds.inc(perf_counter() - t0)
        metrics.feature_rows.inc(len(matrix))
        return matrix


class SimilarityDetector:
    """Flags ranks whose behavior vector separates from the baseline.

    Clusters the per-rank vectors (``k`` clusters, ``metric``
    distance, seeded deterministic k-medoids by default) and gates on
    the silhouette coefficient: below ``threshold`` the trace has no
    statistically separable structure and nothing is emitted -- the
    guard that keeps negative programs clean.  With structure present,
    the cluster with the *lowest* mean overhead (comm + wait seconds)
    is the healthy baseline, and every row outside it yields one
    ``similarity_rank_outlier`` finding whose wait time is the row's
    overhead excess over that baseline -- a statistical deviation
    expressed in the analyzer's severity currency.
    """

    produces = ("similarity_rank_outlier",)
    #: delegate modules digested into this detector's cache fingerprint
    fingerprint_modules = (
        "repro.stats.features",
        "repro.stats.similarity",
    )

    def __init__(
        self,
        k: int = 2,
        metric: str = "euclidean",
        method: str = "kmedoids",
        threshold: float = 0.35,
        min_rows: int = 4,
        seed: int = 0,
    ) -> None:
        self.k = k
        self.metric = metric
        self.method = method
        self.threshold = threshold
        self.min_rows = min_rows
        self.seed = seed

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        matrix = _as_matrix(events)
        if len(matrix) < self.min_rows:
            return
        metrics = stats_metrics()
        with span("stats:cluster", cat="stats", rows=len(matrix)):
            if metrics is None:
                assign = cluster_rows(
                    matrix.rows,
                    k=self.k,
                    metric=self.metric,
                    method=self.method,
                    seed=self.seed,
                )
            else:
                from time import perf_counter

                t0 = perf_counter()
                assign = cluster_rows(
                    matrix.rows,
                    k=self.k,
                    metric=self.metric,
                    method=self.method,
                    seed=self.seed,
                )
                metrics.cluster_seconds.inc(perf_counter() - t0)
        if assign.silhouette < self.threshold:
            return
        by_label: Dict[int, list] = {}
        for i, label in enumerate(assign.labels):
            by_label.setdefault(label, []).append(i)
        means = {
            label: sum(matrix.overhead(i) for i in rows) / len(rows)
            for label, rows in sorted(by_label.items())
        }
        baseline = min(sorted(means), key=lambda label: means[label])
        floor = means[baseline]
        for i in range(len(matrix)):
            if assign.labels[i] == baseline:
                continue
            excess = matrix.overhead(i) - floor
            if excess <= config.noise_floor:
                continue
            yield Finding(
                "similarity_rank_outlier",
                matrix.dominant_path(i),
                matrix.locs[i],
                excess,
            )


class PhaseAnomalyDetector:
    """Flags call paths where a rank's overhead dwarfs the quiet floor.

    Per significant call path (the feature layer's ``path:*``
    columns), compares each row's overhead seconds against the column
    minimum -- the quiet floor.  Any higher percentile (median, lower
    quartile) gets dragged up when most ranks are pathological, as in
    collective stragglers where n-1 ranks wait on one.  A row at least
    ``ratio`` times the floor (and above the noise floor) yields one
    ``similarity_phase_anomaly`` finding carrying the excess over the
    floor.  Catches localized phase
    problems -- ranks stuck in one phase -- that whole-vector
    clustering can average away.
    """

    produces = ("similarity_phase_anomaly",)
    fingerprint_modules = (
        "repro.stats.features",
        "repro.stats.similarity",
    )

    def __init__(self, ratio: float = 3.0, min_rows: int = 4) -> None:
        self.ratio = ratio
        self.min_rows = min_rows

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        matrix = _as_matrix(events)
        n = len(matrix)
        if n < self.min_rows:
            return
        for j, path in enumerate(matrix.paths):
            floor = min(
                matrix.path_overhead[i][j] for i in range(n)
            )
            for i in range(n):
                value = matrix.path_overhead[i][j]
                excess = value - floor
                if excess <= config.noise_floor:
                    continue
                if floor > 0.0 and value < self.ratio * floor:
                    continue
                yield Finding(
                    "similarity_phase_anomaly",
                    path,
                    matrix.locs[i],
                    excess,
                )


#: the statistical battery, the peer of
#: :data:`repro.analysis.detectors.DEFAULT_DETECTORS`
STATISTICAL_DETECTORS: Tuple[object, ...] = (
    SimilarityDetector(),
    PhaseAnomalyDetector(),
)
