"""Pending-event queues for the scheduler: calendar buckets vs heap.

The scheduler orders future events by ``(time, seq)``.  Two
interchangeable implementations live here:

* :class:`CalendarEventQueue` (the default) -- a timestamp-radix
  bucketed queue.  Events are grouped into per-timestamp *buckets*
  (slab-allocated flat ``[head, seq0, proc0, seq1, proc1, ...]``
  records, recycled through a free pool so steady-state scheduling
  allocates no fresh lists), and a min-heap orders only the *distinct*
  timestamps.  SPMD programs are massively time-degenerate -- a barrier
  or a uniform ``hold`` schedules every rank for the same instant -- so
  the heap stays tiny while buckets absorb the volume: pushing the
  1024th rank into an existing bucket is one dict hit and two appends,
  not an O(log n) tuple-comparison sift.  :meth:`transfer` hands a
  whole bucket to the scheduler's FIFO run queue in one call (batched
  dispatch): one heap pop amortized over every same-time event.
* :class:`HeapEventQueue` -- the classic single ``heapq`` of
  ``(time, seq, proc)`` tuples the kernel used before.  Kept as the
  reference implementation for the ordering-equivalence property tests
  and as a fallback (``ATS_SCHEDULER=heap``).

Both serve events in exactly ``(time, seq)`` order, so traces are
bit-identical per seed whichever queue a simulator uses.  Within one
bucket no explicit sort ever runs: sequence numbers only grow, so
append order *is* ``seq`` order.

A note on numpy: the bucket design was benchmarked against a
numpy-backed timestamp-array variant; per-event ndarray indexing costs
more than CPython's C-level float heap at the queue depths a simulation
sustains, so numpy is used by the microbenchmarks (bulk stream
generation and reference ordering at scale), not by this hot path.
The batching win lives in :meth:`transfer` instead.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Optional, Tuple

__all__ = [
    "CalendarEventQueue",
    "HeapEventQueue",
    "default_queue_class",
]

#: retired bucket slabs kept for reuse per queue
_POOL_LIMIT = 256


class CalendarEventQueue:
    """Timestamp-bucketed pending-event queue (see module docstring)."""

    __slots__ = ("_times", "_buckets", "_pool", "_len")

    def __init__(self) -> None:
        #: min-heap of the *distinct* pending timestamps
        self._times: list[float] = []
        #: timestamp -> slab record ``[head, seq0, proc0, seq1, ...]``
        self._buckets: dict[float, list] = {}
        #: retired slabs awaiting reuse
        self._pool: list[list] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def distinct_times(self) -> int:
        """Number of distinct pending timestamps (the heap's size)."""
        return len(self._times)

    def push(self, at: float, seq: int, proc) -> None:
        bucket = self._buckets.get(at)
        if bucket is None:
            pool = self._pool
            if pool:
                bucket = pool.pop()
                bucket.append(seq)
                bucket.append(proc)
            else:
                bucket = [1, seq, proc]
            self._buckets[at] = bucket
            heappush(self._times, at)
        else:
            bucket.append(seq)
            bucket.append(proc)
        self._len += 1

    def head(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the earliest entry, or ``None``."""
        if not self._len:
            return None
        at = self._times[0]
        bucket = self._buckets[at]
        return at, bucket[bucket[0]]

    def pop(self) -> Tuple[float, int, object]:
        """Remove and return the earliest ``(time, seq, proc)`` entry."""
        at = self._times[0]
        bucket = self._buckets[at]
        i = bucket[0]
        seq = bucket[i]
        proc = bucket[i + 1]
        i += 2
        if i == len(bucket):
            heappop(self._times)
            del self._buckets[at]
            self._retire(bucket)
        else:
            bucket[0] = i
        self._len -= 1
        return at, seq, proc

    def transfer(self, ready) -> float:
        """Move the entire earliest bucket onto the ``ready`` FIFO.

        Appends ``(time, seq, proc)`` tuples in seq order and returns
        the bucket's timestamp.  The caller must only do this when the
        FIFO holds nothing that should run first -- the scheduler calls
        it with an empty FIFO when advancing the clock.
        """
        at = heappop(self._times)
        bucket = self._buckets.pop(at)
        i = bucket[0]
        n = len(bucket)
        self._len -= (n - i) >> 1
        append = ready.append
        while i < n:
            append((at, bucket[i], bucket[i + 1]))
            i += 2
        self._retire(bucket)
        return at

    def _retire(self, bucket: list) -> None:
        pool = self._pool
        if len(pool) < _POOL_LIMIT:
            bucket.clear()
            bucket.append(1)
            pool.append(bucket)


class HeapEventQueue:
    """The classic single-heap queue (reference / fallback)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[Tuple[float, int, object]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def distinct_times(self) -> int:
        return len({entry[0] for entry in self._heap})

    def push(self, at: float, seq: int, proc) -> None:
        heappush(self._heap, (at, seq, proc))

    def head(self) -> Optional[Tuple[float, int]]:
        if not self._heap:
            return None
        entry = self._heap[0]
        return entry[0], entry[1]

    def pop(self) -> Tuple[float, int, object]:
        return heappop(self._heap)

    def transfer(self, ready) -> float:
        """Move every entry sharing the earliest timestamp onto ``ready``.

        Same-time heap entries pop in seq order, so this produces the
        exact tuple sequence :meth:`CalendarEventQueue.transfer` does.
        """
        heap = self._heap
        entry = heappop(heap)
        at = entry[0]
        ready.append(entry)
        while heap and heap[0][0] == at:
            ready.append(heappop(heap))
        return at


_QUEUE_CLASSES = {
    "calendar": CalendarEventQueue,
    "heap": HeapEventQueue,
}


def default_queue_class():
    """The event-queue class selected by ``ATS_SCHEDULER``.

    ``calendar`` (the default) is the bucketed scheduler; ``heap`` is
    the reference single-heap implementation.
    """
    name = os.environ.get("ATS_SCHEDULER", "calendar").strip().lower()
    try:
        return _QUEUE_CLASSES[name or "calendar"]
    except KeyError:
        raise ValueError(
            f"unknown ATS_SCHEDULER value {name!r}; "
            f"choose from {sorted(_QUEUE_CLASSES)}"
        ) from None
