"""Sequential performance property functions.

The paper's future-work list: "We also need test functions for
sequential performance properties."  These run on a single locus of
execution (or on every rank independently) and exhibit properties that
need no communication to diagnose.
"""

from __future__ import annotations

from typing import Optional

from ...simkernel import current_process
from ...simomp import omp_parallel, omp_single, require_team
from ...trace.api import region
from ...work import do_work
from ...work.io import do_io


def io_bound_phases(
    iotime: float,
    cputime: float,
    r: int,
) -> None:
    """*I/O bound*: alternating I/O and compute with I/O dominating.

    ``iotime``/``cputime`` control the severity directly; a well-tuned
    variant simply flips the ratio.
    """
    with region("io_bound_phases"):
        for i in range(r):
            do_io(iotime, kind="read" if i % 2 == 0 else "write")
            do_work(cputime)


def compute_bound_phases(
    iotime: float,
    cputime: float,
    r: int,
) -> None:
    """Negative twin of :func:`io_bound_phases`: compute dominates."""
    with region("compute_bound_phases"):
        for i in range(r):
            do_io(iotime, kind="read")
            do_work(cputime)


def imbalance_at_omp_single(
    singlework: float,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """*Imbalance at single*: one thread works, the team waits.

    The first thread to reach the ``single`` construct executes
    ``singlework`` seconds while everyone else idles at the construct's
    implicit barrier -- serialization inside a parallel region.
    """

    def body() -> None:
        for _ in range(r):
            with omp_single() as chosen:
                if chosen:
                    do_work(singlework)

    with region("imbalance_at_omp_single"):
        omp_parallel(body, num_threads=num_threads)


def imbalance_at_omp_reduce(
    basework: float,
    extrawork: float,
    r: int,
    num_threads: Optional[int] = None,
) -> None:
    """*Imbalance at reduction*: uneven arrival at a team reduction.

    Even threads carry extra work, so odd threads wait inside the
    reduction's synchronization.
    """

    def body() -> None:
        team = require_team()
        me = team.thread_num_of(current_process())
        for _ in range(r):
            do_work(basework + (extrawork if me % 2 == 0 else 0.0))
            team.reduce(me, lambda a, b: a + b)

    with region("imbalance_at_omp_reduce"):
        omp_parallel(body, num_threads=num_threads)
