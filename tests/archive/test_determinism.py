"""Archive determinism: identical identity -> identical bytes.

The archive's dedupe and the diff gate both assume that one
``(program, params, size, threads, seed, plan)`` identity always
produces the same trace blob, regardless of incidental process state:
how many pooled workers exist, whether metrics are on, whether the
batch analyzer ran serial or parallel.
"""

from repro.archive import Archive, result_to_json_bytes
from repro.core import get_property
from repro.simkernel import run_host_tasks, worker_pool


def _archive_once(root, seed=7):
    archive = Archive(root)
    spec = get_property("late_sender")
    return archive.archive_run(spec, size=4, seed=seed)


def test_trace_digest_stable_across_pool_sizes(tmp_path):
    worker_pool().drain()  # cold pool: workers created on demand
    a = _archive_once(tmp_path / "a")
    # Pre-warm a large pool by running a throwaway parallel batch.
    run_host_tasks([lambda i=i: i for i in range(16)], max_workers=16)
    b = _archive_once(tmp_path / "b")
    assert a.run_id == b.run_id
    assert a.trace_digest == b.trace_digest


def test_trace_digest_stable_under_metrics(tmp_path):
    from repro.obs import reset_metrics, set_metrics_enabled

    a = _archive_once(tmp_path / "a")
    set_metrics_enabled(True)
    reset_metrics()
    try:
        b = _archive_once(tmp_path / "b")
    finally:
        set_metrics_enabled(False)
        reset_metrics()
    assert a.trace_digest == b.trace_digest


def test_parallel_batch_equals_serial(tmp_path):
    archive = Archive(tmp_path)
    for name in ("late_sender", "late_broadcast", "early_reduce"):
        archive.archive_run(get_property(name), size=4, seed=1)
    serial = archive.analyze_many(parallel=False)
    parallel = archive.analyze_many(parallel=True, max_workers=4)
    assert list(serial) == list(parallel)
    for run_id in serial:
        assert result_to_json_bytes(serial[run_id]) == (
            result_to_json_bytes(parallel[run_id])
        )


def test_run_host_tasks_orders_results_and_raises_first_error():
    import pytest

    results = run_host_tasks(
        [lambda i=i: i * i for i in range(20)], max_workers=3
    )
    assert results == [i * i for i in range(20)]

    def boom():
        raise ValueError("task 3 failed")

    fns = [lambda i=i: i for i in range(6)]
    fns[3] = boom
    with pytest.raises(ValueError, match="task 3 failed"):
        run_host_tasks(fns, max_workers=2)


def test_rearchiving_is_idempotent(tmp_path):
    archive = Archive(tmp_path)
    spec = get_property("late_sender")
    first = archive.archive_run(spec, size=4, seed=9)
    second = archive.archive_run(spec, size=4, seed=9)
    assert first == second
    assert len(archive.history()) == 1
