"""Detector infrastructure: the protocol and shared trace-replay helpers.

The helpers accept either a plain event sequence or a prebuilt
:class:`~repro.analysis.index.TraceIndex`; the analyzer passes an index
so the whole detector battery shares one scan of the trace instead of
rescanning per detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Protocol, Sequence, Tuple

from ...trace.events import CollExit, Event, Recv, Send
from ..index import RegionVisit, TraceIndex, replay_region_visits
from ..model import Finding

__all__ = [
    "AnalysisConfig",
    "Detector",
    "RegionVisit",
    "TraceIndex",
    "collective_instances",
    "iter_region_visits",
    "matched_p2p_pairs",
]


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters the analyzer knows about the measured system.

    ``eager_threshold`` mirrors the transport configuration (a real
    tool would know the MPI library's protocol switch point);
    ``noise_floor`` discards waits below pure transport cost so
    microsecond-scale algorithm skew does not pollute negative tests.
    """

    eager_threshold: int = 8192
    noise_floor: float = 5e-5


class Detector(Protocol):
    """A pattern detector: trace events in, findings out."""

    #: analyzer property ids this detector can emit
    produces: Tuple[str, ...]

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]: ...  # pragma: no cover - protocol


def iter_region_visits(events: Sequence[Event]) -> Iterator[RegionVisit]:
    """Completed :class:`RegionVisit`\\ s of the trace (exit order).

    Given a :class:`TraceIndex`, returns the precomputed visits;
    otherwise replays enter/exit events (which must be time-ordered per
    location, as recorded).  Unclosed regions are ignored.
    """
    if isinstance(events, TraceIndex):
        return iter(events.region_visits)
    return replay_region_visits(events)


def matched_p2p_pairs(
    events: Sequence[Event],
) -> Iterator[Tuple[Send, Recv]]:
    """Yield matched user-level (send, recv) event pairs by msg_id."""
    if isinstance(events, TraceIndex):
        return iter(events.p2p_pairs)
    sends: Dict[int, Send] = {}
    recvs: Dict[int, Recv] = {}
    for event in events:
        if isinstance(event, Send) and not event.internal:
            sends[event.msg_id] = event
        elif isinstance(event, Recv) and not event.internal:
            recvs[event.msg_id] = event
    return (
        (sends[msg_id], recv)
        for msg_id, recv in recvs.items()
        if msg_id in sends
    )


def collective_instances(
    events: Sequence[Event],
) -> Dict[Tuple[int, int, str], list[CollExit]]:
    """Group CollExit events: (comm_id, instance, op) -> participants."""
    if isinstance(events, TraceIndex):
        return dict(events.collectives)
    groups: Dict[Tuple[int, int, str], list[CollExit]] = {}
    for event in events:
        if isinstance(event, CollExit):
            groups.setdefault(
                (event.comm_id, event.instance, event.op), []
            ).append(event)
    return groups
