"""Grade detectors against synthesized ground-truth manifests.

Works from a campaign result (or its JSON artifact): for every analyzer
property id, each cell is a trial -- expected properties count toward
recall (TP/FN), properties neither expected nor allowed count toward
precision (FP/TN).  Errored cells count as detecting nothing, matching
the robustness harness.  Output is deterministic: the same campaign
JSON always scores to the same bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DetectorScore:
    """Confusion counts of one analyzer property over a campaign."""

    property: str
    tp: int
    fn: int
    fp: int
    tn: int

    @property
    def recall(self) -> Optional[float]:
        total = self.tp + self.fn
        return self.tp / total if total else None

    @property
    def precision(self) -> Optional[float]:
        total = self.tp + self.fp
        return self.tp / total if total else None

    def to_dict(self) -> dict:
        return {
            "property": self.property,
            "tp": self.tp,
            "fn": self.fn,
            "fp": self.fp,
            "tn": self.tn,
            "recall": self.recall,
            "precision": self.precision,
        }


@dataclass(frozen=True)
class BandScore:
    """Recall of expected findings within one severity band."""

    band: str
    opportunities: int
    detections: int

    @property
    def recall(self) -> Optional[float]:
        if not self.opportunities:
            return None
        return self.detections / self.opportunities

    def to_dict(self) -> dict:
        return {
            "band": self.band,
            "opportunities": self.opportunities,
            "detections": self.detections,
            "recall": self.recall,
        }


@dataclass(frozen=True)
class ScoreReport:
    """Per-detector and per-band grades of one campaign."""

    campaign: str
    cells: int
    errors: int
    detectors: Tuple[DetectorScore, ...]
    bands: Tuple[BandScore, ...]

    def to_json_dict(self) -> dict:
        return {
            "format": "ats-synth-score",
            "version": 1,
            "campaign": self.campaign,
            "cells": self.cells,
            "errors": self.errors,
            "detectors": [d.to_dict() for d in self.detectors],
            "bands": [b.to_dict() for b in self.bands],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    def format_table(self) -> str:
        def pct(rate: Optional[float]) -> str:
            return "    -" if rate is None else f"{rate:5.0%}"

        lines = []
        if self.campaign:
            lines.append(f"campaign {self.campaign}")
        lines.append(
            f"{'detector':<28}{'TP':>6}{'FN':>6}{'FP':>6}{'TN':>6}"
            f"{'recall':>9}{'prec':>7}"
        )
        for d in self.detectors:
            lines.append(
                f"{d.property:<28}{d.tp:>6}{d.fn:>6}{d.fp:>6}{d.tn:>6}"
                f"{pct(d.recall):>9}{pct(d.precision):>7}"
            )
        for b in self.bands:
            lines.append(
                f"band {b.band:<23}{b.detections:>6}"
                f"{b.opportunities - b.detections:>6}{'':>12}"
                f"{pct(b.recall):>9}"
            )
        lines.append(
            f"{self.cells} scenario cell(s)"
            + (f", {self.errors} errored" if self.errors else "")
        )
        return "\n".join(lines) + "\n"


def score_cells(cells: List[dict], campaign: str = "") -> ScoreReport:
    """Score raw cell dicts (the campaign JSON's ``cells`` list)."""
    properties: set = set()
    for cell in cells:
        properties.update(cell["manifest"]["expected"])
        properties.update(cell["detected"])
    counts: Dict[str, List[int]] = {
        p: [0, 0, 0, 0] for p in sorted(properties)
    }
    band_counts: Dict[str, List[int]] = {}
    errors = 0
    for cell in cells:
        if cell.get("error") is not None:
            errors += 1
        manifest = cell["manifest"]
        expected = set(manifest["expected"])
        allowed = set(manifest["allowed"])
        detected = set(cell["detected"])
        for prop, c in counts.items():
            if prop in expected:
                if prop in detected:
                    c[0] += 1  # TP
                else:
                    c[1] += 1  # FN
            elif prop not in allowed:
                if prop in detected:
                    c[2] += 1  # FP
                else:
                    c[3] += 1  # TN
        for prop, band in sorted(
            manifest.get("severity_bands", {}).items()
        ):
            bc = band_counts.setdefault(band, [0, 0])
            bc[0] += 1
            if prop in detected:
                bc[1] += 1
    return ScoreReport(
        campaign=campaign,
        cells=len(cells),
        errors=errors,
        detectors=tuple(
            DetectorScore(p, c[0], c[1], c[2], c[3])
            for p, c in counts.items()
        ),
        bands=tuple(
            BandScore(band, bc[0], bc[1])
            for band, bc in sorted(band_counts.items())
        ),
    )


def score_campaign_json(payload: dict) -> ScoreReport:
    """Score an ``ats-synth-campaign`` JSON payload."""
    if payload.get("format") != "ats-synth-campaign":
        raise ValueError(
            "not an ats-synth-campaign artifact "
            f"(format={payload.get('format')!r})"
        )
    return score_cells(
        payload.get("cells", []),
        campaign=payload.get("spec", {}).get("name", ""),
    )


def score_result(result) -> ScoreReport:
    """Score a :class:`.campaign.CampaignResult` in memory."""
    return score_cells(
        [c.to_dict() for c in result.cells], campaign=result.spec.name
    )
