"""Report rendering tests."""

from repro.analysis import (
    AnalysisResult,
    Finding,
    analyze_run,
    format_expert_report,
    format_summary_table,
)
from repro.core import get_property
from repro.trace import Location

L0, L1 = Location(0, 0), Location(1, 0)


def test_report_shows_three_panes():
    result = get_property("late_broadcast").run(size=4)
    text = format_expert_report(analyze_run(result))
    assert "performance properties" in text
    assert "call paths for late_broadcast" in text
    assert "MPI_Bcast" in text
    # location pane shows per-rank rows (root=1 has no wait; rank 2 does)
    assert "2.0" in text


def test_report_threshold_hides_minor_properties():
    result = get_property("late_broadcast").run(size=4)
    text = format_expert_report(analyze_run(result), threshold=0.99)
    assert "no property above" in text


def test_report_empty_result():
    empty = AnalysisResult(findings=[], total_time=1.0, locations=[L0])
    text = format_expert_report(empty)
    assert "no property above" in text


def test_report_ranks_most_severe_first():
    res = AnalysisResult(
        findings=[
            Finding("minor", ("a",), L0, 1.0),
            Finding("major", ("b",), L1, 5.0),
        ],
        total_time=10.0,
        locations=[L0, L1],
    )
    text = format_expert_report(res, threshold=0.0)
    assert text.index("major") < text.index("minor")


def test_summary_table_lists_all_properties():
    res = AnalysisResult(
        findings=[
            Finding("late_sender", ("a",), L0, 1.0),
            Finding("wait_at_barrier", ("b",), L1, 2.0),
        ],
        total_time=10.0,
        locations=[L0, L1],
    )
    table = format_summary_table(res)
    assert "late_sender" in table and "wait_at_barrier" in table
    assert "severity" in table


def test_report_max_callpaths_truncation():
    findings = [
        Finding("p", (f"path{i}",), L0, 1.0) for i in range(10)
    ]
    res = AnalysisResult(findings=findings, total_time=100.0,
                         locations=[L0])
    text = format_expert_report(res, threshold=0.0, max_callpaths=2)
    assert "more call path(s)" in text
