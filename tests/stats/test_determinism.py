"""Statistical findings must be byte-identical everywhere they run.

The similarity family's clustering is pure stdlib arithmetic with
fixed tie-breaking, so the same trace digest must yield the same
findings in-process, through the archive cache (warm or cold), and in
a forked robustness/campaign sweep at any worker count.
"""

import json

import pytest

from repro.analysis import analyze_run
from repro.archive import Archive, CacheStats, result_to_json_bytes
from repro.core import get_property
from repro.stats import STATISTICAL_DETECTORS, battery_for
from repro.synth import CampaignSpec, run_campaign
from repro.validation import run_robustness
from repro.work.forkexec import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)

FAMILIES = ("rule", "similarity")


def _findings_json(result):
    return json.dumps(
        [
            {
                "property": f.property,
                "path": list(f.callpath),
                "loc": str(f.loc),
                "wait": f.wait_time,
            }
            for f in result.findings
        ],
        sort_keys=True,
    )


def test_repeated_analysis_byte_identical():
    run = get_property("late_sender").run(size=8, seed=0)
    a = analyze_run(run, detectors=STATISTICAL_DETECTORS)
    b = analyze_run(run, detectors=STATISTICAL_DETECTORS)
    assert _findings_json(a) == _findings_json(b)
    assert a.findings  # the comparison is not vacuous


def test_warm_cache_byte_identical_to_cold(tmp_path):
    archive = Archive(tmp_path)
    run = archive.archive_run(
        get_property("late_sender"), size=8, seed=0
    )
    battery = battery_for(FAMILIES)
    cold = archive.analyze(run, detectors=battery)
    warm_stats = CacheStats()
    warm = archive.analyze(run, detectors=battery, stats=warm_stats)
    assert warm_stats.misses == 0
    assert result_to_json_bytes(warm) == result_to_json_bytes(cold)


@needs_fork
def test_robustness_with_similarity_identical_across_workers():
    specs = [
        get_property("late_sender"),
        get_property("balanced_sendrecv"),
    ]

    def sweep(workers):
        return run_robustness(
            specs=specs,
            magnitudes=(0.0, 0.7),
            seeds=(0, 1),
            size=6,
            num_threads=2,
            workers=workers,
            families=FAMILIES,
        ).to_json_str()

    serial = sweep(1)
    assert '"families"' in serial
    for workers in (2, 3):
        assert sweep(workers) == serial


@needs_fork
def test_campaign_with_similarity_identical_across_workers():
    spec = CampaignSpec(
        name="det-par", scenarios=4, sizes=(4,), seed=11
    )
    serial = run_campaign(spec, families=FAMILIES).to_json_str()
    forked = run_campaign(
        spec, workers=2, families=FAMILIES
    ).to_json_str()
    assert forked == serial


def test_rule_only_campaign_unchanged_by_families_plumbing():
    """The default family keeps the pre-existing artifact bytes."""
    spec = CampaignSpec(
        name="det-rule", scenarios=3, sizes=(4,), seed=5
    )
    a = run_campaign(spec).to_json_str()
    b = run_campaign(spec, families=("rule",)).to_json_str()
    assert a == b
