"""Unit and property-based tests for the ATS distribution functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Val1Distr,
    Val2Distr,
    Val2NDistr,
    Val3Distr,
    df_block2,
    df_block3,
    df_cyclic2,
    df_cyclic3,
    df_linear,
    df_peak,
    df_same,
    get_distribution,
    list_distributions,
    register_distribution,
)

SIZES = st.integers(min_value=1, max_value=64)
VALUES = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
SCALES = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


# ----------------------------------------------------------------------
# exact shapes
# ----------------------------------------------------------------------

def test_same_gives_everyone_the_value():
    dd = Val1Distr(3.0)
    assert [df_same(i, 5, 2.0, dd) for i in range(5)] == [6.0] * 5


def test_cyclic2_alternates():
    dd = Val2Distr(low=1.0, high=9.0)
    assert [df_cyclic2(i, 6, 1.0, dd) for i in range(6)] == [
        1.0, 9.0, 1.0, 9.0, 1.0, 9.0,
    ]


def test_block2_even_split():
    dd = Val2Distr(low=1.0, high=2.0)
    assert [df_block2(i, 4, 1.0, dd) for i in range(4)] == [
        1.0, 1.0, 2.0, 2.0,
    ]


def test_block2_odd_split_gives_extra_to_low():
    dd = Val2Distr(low=1.0, high=2.0)
    assert [df_block2(i, 5, 1.0, dd) for i in range(5)] == [
        1.0, 1.0, 1.0, 2.0, 2.0,
    ]


def test_linear_endpoints_and_midpoint():
    dd = Val2Distr(low=2.0, high=10.0)
    assert df_linear(0, 5, 1.0, dd) == 2.0
    assert df_linear(4, 5, 1.0, dd) == 10.0
    assert df_linear(2, 5, 1.0, dd) == 6.0


def test_linear_single_rank_gets_low():
    assert df_linear(0, 1, 1.0, Val2Distr(3.0, 99.0)) == 3.0


def test_peak_hits_exactly_one_rank():
    dd = Val2NDistr(low=1.0, high=50.0, n=2)
    values = [df_peak(i, 6, 1.0, dd) for i in range(6)]
    assert values == [1.0, 1.0, 50.0, 1.0, 1.0, 1.0]


def test_peak_index_wraps_modulo_size():
    dd = Val2NDistr(low=0.0, high=5.0, n=7)
    values = [df_peak(i, 4, 1.0, dd) for i in range(4)]
    assert values == [0.0, 0.0, 0.0, 5.0]  # 7 % 4 == 3


def test_cyclic3_cycles_low_med_high():
    dd = Val3Distr(low=1.0, high=3.0, med=2.0)
    assert [df_cyclic3(i, 7, 1.0, dd) for i in range(7)] == [
        1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0,
    ]


def test_block3_balanced_blocks():
    dd = Val3Distr(low=1.0, high=3.0, med=2.0)
    assert [df_block3(i, 6, 1.0, dd) for i in range(6)] == [
        1.0, 1.0, 2.0, 2.0, 3.0, 3.0,
    ]


def test_block3_remainder_goes_to_early_blocks():
    dd = Val3Distr(low=1.0, high=3.0, med=2.0)
    # sz=7 -> blocks of 3, 2, 2
    assert [df_block3(i, 7, 1.0, dd) for i in range(7)] == [
        1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0,
    ]
    # sz=8 -> blocks of 3, 3, 2
    assert [df_block3(i, 8, 1.0, dd) for i in range(8)] == [
        1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0,
    ]


# ----------------------------------------------------------------------
# error handling
# ----------------------------------------------------------------------

def test_rank_out_of_range_rejected():
    with pytest.raises(ValueError):
        df_same(5, 5, 1.0, Val1Distr(1.0))
    with pytest.raises(ValueError):
        df_same(-1, 5, 1.0, Val1Distr(1.0))
    with pytest.raises(ValueError):
        df_same(0, 0, 1.0, Val1Distr(1.0))


def test_wrong_descriptor_type_rejected():
    with pytest.raises(TypeError):
        df_cyclic2(0, 4, 1.0, Val1Distr(1.0))
    with pytest.raises(TypeError):
        df_same(0, 4, 1.0, Val2Distr(1.0, 2.0))
    with pytest.raises(TypeError):
        df_peak(0, 4, 1.0, Val2Distr(1.0, 2.0))


def test_negative_descriptor_values_rejected():
    with pytest.raises(ValueError):
        Val1Distr(-1.0)
    with pytest.raises(ValueError):
        Val2Distr(1.0, -2.0)
    with pytest.raises(ValueError):
        Val2NDistr(1.0, 2.0, -1)
    with pytest.raises(ValueError):
        Val3Distr(1.0, -2.0, 3.0)


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------

@given(SIZES, VALUES, SCALES)
@settings(max_examples=60)
def test_same_is_scale_times_value_everywhere(sz, val, scale):
    dd = Val1Distr(val)
    for me in range(sz):
        assert df_same(me, sz, scale, dd) == pytest.approx(scale * val)


@given(SIZES, VALUES, VALUES, SCALES)
@settings(max_examples=60)
def test_two_value_shapes_stay_within_range(sz, low, high, scale):
    dd = Val2Distr(low, high)
    lo, hi = sorted([low, high])
    for df in (df_cyclic2, df_block2, df_linear):
        for me in range(sz):
            v = df(me, sz, scale, dd)
            slack = 1e-9 + 1e-12 * scale * (hi + 1.0)
            assert scale * lo - slack <= v <= scale * hi + slack


@given(SIZES, VALUES, VALUES)
@settings(max_examples=60)
def test_scaling_is_proportional(sz, low, high):
    dd = Val2Distr(low, high)
    for df in (df_cyclic2, df_block2, df_linear):
        for me in range(sz):
            assert df(me, sz, 3.0, dd) == pytest.approx(
                3.0 * df(me, sz, 1.0, dd)
            )


@given(SIZES, VALUES, VALUES, st.integers(min_value=0, max_value=200))
@settings(max_examples=60)
def test_peak_total_is_one_high_rest_low(sz, low, high, n):
    dd = Val2NDistr(low, high, n)
    values = [df_peak(me, sz, 1.0, dd) for me in range(sz)]
    assert values.count(high) >= 1
    total = sum(values)
    assert total == pytest.approx((sz - 1) * low + high)


@given(SIZES, VALUES, VALUES, VALUES)
@settings(max_examples=60)
def test_block3_is_monotone_in_block_order(sz, low, med, high):
    dd = Val3Distr(low=low, high=high, med=med)
    values = [df_block3(me, sz, 1.0, dd) for me in range(sz)]
    # Values appear in (low, med, high) block order.
    expected_order = [low, med, high]
    idx = 0
    for v in values:
        while idx < 2 and v != expected_order[idx]:
            idx += 1
        assert v == expected_order[idx]


@given(SIZES, VALUES, VALUES)
@settings(max_examples=60)
def test_linear_is_monotone(sz, low, high):
    dd = Val2Distr(low, high)
    values = [df_linear(me, sz, 1.0, dd) for me in range(sz)]
    diffs = [b - a for a, b in zip(values, values[1:])]
    if high >= low:
        assert all(d >= -1e-9 for d in diffs)
    else:
        assert all(d <= 1e-9 for d in diffs)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_registry_contains_the_paper_set():
    names = {spec.name for spec in list_distributions()}
    assert {
        "same", "cyclic2", "block2", "linear", "peak", "cyclic3", "block3",
    } <= names


def test_registry_lookup_and_descriptor_construction():
    spec = get_distribution("cyclic2")
    dd = spec.make_descriptor(1.0, 2.0)
    assert spec.func(1, 4, 1.0, dd) == 2.0


def test_registry_unknown_name_lists_candidates():
    with pytest.raises(KeyError, match="cyclic2"):
        get_distribution("nope")


def test_registry_rejects_duplicates():
    with pytest.raises(ValueError):
        register_distribution("same", df_same, Val1Distr)


def test_user_extension_registers_and_works():
    def df_reverse_linear(me, sz, scale, dd):
        return df_linear(sz - 1 - me, sz, scale, dd)

    spec = register_distribution(
        "reverse_linear_test", df_reverse_linear, Val2Distr, "test only"
    )
    assert get_distribution("reverse_linear_test") is spec
    assert spec.func(0, 5, 1.0, Val2Distr(0.0, 8.0)) == 8.0
