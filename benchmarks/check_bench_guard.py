#!/usr/bin/env python
"""Performance-regression guard for CI.

Measures the hybrid-64 composite fresh (best-of-N wall time) and
compares it against every committed baseline that covers that shape:

* ``BENCH_CORE.json``        -> ``current.rows[size].hybrid.wall_s``
* ``BENCH_OBS.json``         -> ``hybrid-64.modes.off.wall_s``
* ``BENCH_RESILIENCE.json``  -> ``hybrid-64.modes.direct.wall_s``

A baseline that is missing (file or key) is reported and skipped, so
the guard keeps working while baselines are introduced PR by PR.  The
run fails (exit 1) when the fresh time exceeds a baseline by more than
the slack factor -- default 25%, overridable for noisy runners with
``ATS_BENCH_SLACK=0.5`` or ``--slack``.

It also validates committed acceptance bars:

* ``BENCH_ARCHIVE.json`` -- warm-cache speedup >= 5x with zero warm
  misses,
* ``BENCH_CORE.json`` ``current.kilo`` -- the size-1024 row must hold
  the ranks-per-second floor,
* ``BENCH_CORE.json`` ``current.parallel_sweep`` -- the fork-sweep
  speedup must meet the bar for the CPU count it was measured on
  (>=2x at 4+ cores; relaxed below, skipped on one core),
* ``BENCH_SERVICE.json`` -- the 1000-request burst must have
  collapsed >= 90% of duplicate in-flight analyzes, and warm-cache
  analyzes must hold p99 < 50 ms,
* ``BENCH_SYNTH.json`` -- the synthesized-campaign executor must hold
  its cells/s floor and project the CI 1000-scenario smoke campaign
  inside its wall-clock budget,
* ``BENCH_STATS.json`` -- the statistical layer must hold its
  feature-extraction and kilo-pipeline rate floors, and the warm
  dataset export must assemble from cached feature cells alone.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/check_bench_guard.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import run_hybrid_composite  # noqa: E402

from bench_perf_core import (  # noqa: E402
    HYBRID_MPI_STEPS,
    HYBRID_OMP_STEPS,
)


def measure(size: int, num_threads: int, repeats: int) -> float:
    run_hybrid_composite(
        HYBRID_MPI_STEPS, HYBRID_OMP_STEPS, size=size, num_threads=num_threads
    )  # warm-up
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_hybrid_composite(
            HYBRID_MPI_STEPS,
            HYBRID_OMP_STEPS,
            size=size,
            num_threads=num_threads,
        )
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def _load(name: str):
    path = REPO_ROOT / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def collect_baselines(size: int) -> dict:
    """``label -> wall_s`` for every committed baseline covering hybrid-size."""
    baselines = {}

    core = _load("BENCH_CORE.json")
    if core:
        for row in core.get("current", {}).get("rows", []):
            if row.get("size") == size and "hybrid" in row:
                baselines["BENCH_CORE current.hybrid"] = row["hybrid"]["wall_s"]

    obs = _load("BENCH_OBS.json")
    if obs:
        try:
            baselines["BENCH_OBS modes.off"] = (
                obs[f"hybrid-{size}"]["modes"]["off"]["wall_s"]
            )
        except KeyError:
            pass

    res = _load("BENCH_RESILIENCE.json")
    if res:
        try:
            baselines["BENCH_RESILIENCE modes.direct"] = (
                res[f"hybrid-{size}"]["modes"]["direct"]["wall_s"]
            )
        except KeyError:
            pass

    return baselines


#: acceptance bar for the archive cache (warm analyze-all vs cold)
ARCHIVE_MIN_SPEEDUP = 5.0

#: ranks-per-second floor on the committed size-1024 BENCH_CORE row.
#: Conservative (the reference box measures ~500-650 ranks/s) so noisy
#: CI runners do not flap, but low enough that a scheduler regression
#: to super-linear event cost would trip it.
KILO_MIN_RANKS_PER_S = 250.0

#: minimum parallel-sweep speedup, tiered by the CPU count the
#: benchmark recorded: a >=2x fork speedup is physically impossible on
#: fewer than 2 cores, so the bar only fully applies at 4+ cores.
PARALLEL_MIN_SPEEDUP_4CPU = 2.0
PARALLEL_MIN_SPEEDUP_2CPU = 1.2


def check_kilo_baseline() -> bool:
    """Validate the committed size-1024 throughput row; True when OK."""
    core = _load("BENCH_CORE.json")
    kilo = (core or {}).get("current", {}).get("kilo")
    if not kilo:
        print("no BENCH_CORE kilo baseline; kilo check skipped")
        return True
    try:
        ranks_per_s = float(kilo["ranks_per_s"])
        size = kilo["size"]
    except KeyError as exc:
        print(f"BENCH_CORE kilo entry malformed (missing {exc}); FAIL")
        return False
    ok = ranks_per_s >= KILO_MIN_RANKS_PER_S
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"  BENCH_CORE kilo-{size} throughput {ranks_per_s:7.1f} ranks/s "
        f"(floor {KILO_MIN_RANKS_PER_S:.0f})  {verdict}"
    )
    return ok


def check_parallel_sweep_baseline() -> bool:
    """Validate the committed fork-sweep speedup; True when OK."""
    core = _load("BENCH_CORE.json")
    entry = (core or {}).get("current", {}).get("parallel_sweep")
    if not entry:
        print("no BENCH_CORE parallel_sweep baseline; "
              "parallel check skipped")
        return True
    try:
        speedup = float(entry["speedup"])
        cpus = int(entry["cpus"])
        workers = entry["workers"]
    except KeyError as exc:
        print(f"BENCH_CORE parallel_sweep entry malformed "
              f"(missing {exc}); FAIL")
        return False
    if cpus >= 4:
        bar = PARALLEL_MIN_SPEEDUP_4CPU
    elif cpus >= 2:
        bar = PARALLEL_MIN_SPEEDUP_2CPU
    else:
        print(
            f"  BENCH_CORE parallel sweep        {speedup:7.2f}x "
            f"(x{workers} workers, {cpus} cpu: no speedup possible, "
            "skipped)"
        )
        return True
    ok = speedup >= bar
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"  BENCH_CORE parallel sweep        {speedup:7.2f}x "
        f"(x{workers} workers on {cpus} cpus, bar {bar:.1f}x)  {verdict}"
    )
    return ok


def check_archive_baseline() -> bool:
    """Validate the committed archive-cache numbers; True when OK."""
    data = _load("BENCH_ARCHIVE.json")
    if not data:
        print("no BENCH_ARCHIVE.json baseline; archive check skipped")
        return True
    try:
        entry = data["archive-registry"]
        speedup = entry["speedup"]
        misses = entry["warm_cache"]["misses"]
    except KeyError as exc:
        print(f"BENCH_ARCHIVE.json malformed (missing {exc}); FAIL")
        return False
    ok = speedup >= ARCHIVE_MIN_SPEEDUP and misses == 0
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"  BENCH_ARCHIVE warm speedup       {speedup:7.1f}x "
        f"(bar {ARCHIVE_MIN_SPEEDUP:.0f}x, "
        f"{misses} warm misses)  {verdict}"
    )
    return ok


#: acceptance bars for the analysis service (BENCH_SERVICE.json):
#: the burst must collapse >= 90% of its duplicate in-flight analyzes
#: onto shared executor cells, at >= 1000 concurrent requests, and
#: warm-cache analyzes must answer under 50 ms at the 99th percentile.
SERVICE_MIN_BURST_REQUESTS = 1000
SERVICE_MIN_COLLAPSE = 0.9
SERVICE_MAX_WARM_P99_MS = 50.0


def check_service_baseline() -> bool:
    """Validate the committed service load numbers; True when OK."""
    data = _load("BENCH_SERVICE.json")
    if not data:
        print("no BENCH_SERVICE.json baseline; service check skipped")
        return True
    try:
        burst = data["service"]["burst"]
        requests = int(burst["requests"])
        collapse = float(burst["collapse"])
        warm_p99 = float(data["service"]["warm"]["p99_ms"])
    except KeyError as exc:
        print(f"BENCH_SERVICE.json malformed (missing {exc}); FAIL")
        return False
    ok = (
        requests >= SERVICE_MIN_BURST_REQUESTS
        and collapse >= SERVICE_MIN_COLLAPSE
        and warm_p99 < SERVICE_MAX_WARM_P99_MS
    )
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"  BENCH_SERVICE burst collapse     {collapse:7.4f} "
        f"({requests} reqs, bar {SERVICE_MIN_COLLAPSE:.1f} at "
        f">={SERVICE_MIN_BURST_REQUESTS}), "
        f"warm p99 {warm_p99:.1f} ms "
        f"(bar {SERVICE_MAX_WARM_P99_MS:.0f} ms)  {verdict}"
    )
    return ok


#: acceptance bars for synthesized campaigns (BENCH_SYNTH.json): the
#: serial executor must sustain the cells/s floor, and the committed
#: scored rate (the full ``ats synth campaign --json`` path) must
#: project the CI 1000-scenario smoke campaign inside its wall-clock
#: budget.  Floors are conservative -- the reference box measures
#: ~200-300 cells/s -- so noisy runners do not flap.
SYNTH_MIN_CELLS_PER_S = 40.0
SYNTH_SMOKE_SCENARIOS = 1000
SYNTH_SMOKE_BUDGET_S = 120.0


def check_synth_baseline() -> bool:
    """Validate the committed synth-campaign throughput; True when OK."""
    data = _load("BENCH_SYNTH.json")
    if not data:
        print("no BENCH_SYNTH.json baseline; synth check skipped")
        return True
    try:
        serial_rate = float(data["synth"]["serial"]["cells_per_s"])
        scored_rate = float(data["synth"]["scored"]["cells_per_s"])
        errors = int(data["synth"]["serial"]["errors"])
    except KeyError as exc:
        print(f"BENCH_SYNTH.json malformed (missing {exc}); FAIL")
        return False
    projected = SYNTH_SMOKE_SCENARIOS / scored_rate
    ok = (
        serial_rate >= SYNTH_MIN_CELLS_PER_S
        and errors == 0
        and projected <= SYNTH_SMOKE_BUDGET_S
    )
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"  BENCH_SYNTH serial throughput    {serial_rate:7.1f} cells/s "
        f"(floor {SYNTH_MIN_CELLS_PER_S:.0f}, {errors} errors), "
        f"projected {SYNTH_SMOKE_SCENARIOS}-cell smoke "
        f"{projected:.1f} s (budget {SYNTH_SMOKE_BUDGET_S:.0f} s)  {verdict}"
    )
    return ok


#: acceptance bars for the statistical layer (BENCH_STATS.json).
#: Conservative -- the reference box measures ~1300 feature rows/s on
#: hybrid-64, ~300 ranks/s through the kilo pipeline and a ~15x warm
#: export speedup -- so noisy runners do not flap, while a quadratic
#: slip in the feature or clustering path still trips the floor.
STATS_MIN_HYBRID_ROWS_PER_S = 300.0
STATS_MIN_KILO_RANKS_PER_S = 75.0
STATS_MIN_EXPORT_SPEEDUP = 3.0


def check_stats_baseline() -> bool:
    """Validate the committed statistical-layer rates; True when OK."""
    data = _load("BENCH_STATS.json")
    if not data:
        print("no BENCH_STATS.json baseline; stats check skipped")
        return True
    try:
        hybrid_rate = float(data["stats"]["hybrid"]["feature_rows_per_s"])
        kilo_rate = float(data["stats"]["kilo"]["ranks_per_s"])
        export = data["stats"]["export"]
        speedup = float(export["speedup"])
        warm_misses = int(export["warm_misses"])
    except KeyError as exc:
        print(f"BENCH_STATS.json malformed (missing {exc}); FAIL")
        return False
    ok = (
        hybrid_rate >= STATS_MIN_HYBRID_ROWS_PER_S
        and kilo_rate >= STATS_MIN_KILO_RANKS_PER_S
        and speedup >= STATS_MIN_EXPORT_SPEEDUP
        and warm_misses == 0
    )
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"  BENCH_STATS features/kilo/export {hybrid_rate:7.1f} rows/s "
        f"(floor {STATS_MIN_HYBRID_ROWS_PER_S:.0f}), "
        f"{kilo_rate:.1f} ranks/s (floor {STATS_MIN_KILO_RANKS_PER_S:.0f}), "
        f"warm x{speedup:.1f} (bar {STATS_MIN_EXPORT_SPEEDUP:.0f}x, "
        f"{warm_misses} misses)  {verdict}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--slack",
        type=float,
        default=float(os.environ.get("ATS_BENCH_SLACK", "0.25")),
        help="allowed fractional regression over a baseline "
             "(default 0.25; env ATS_BENCH_SLACK overrides)",
    )
    args = parser.parse_args(argv)

    archive_ok = check_archive_baseline()
    kilo_ok = check_kilo_baseline()
    parallel_ok = check_parallel_sweep_baseline()
    service_ok = check_service_baseline()
    synth_ok = check_synth_baseline()
    stats_ok = check_stats_baseline()
    committed_ok = (
        archive_ok and kilo_ok and parallel_ok and service_ok
        and synth_ok and stats_ok
    )

    baselines = collect_baselines(args.size)
    if not baselines:
        print(f"no committed baselines cover hybrid-{args.size}; nothing to guard")
        return 0 if committed_ok else 1

    fresh = measure(args.size, args.threads, args.repeats)
    print(f"fresh hybrid-{args.size}: {fresh*1000:.1f} ms "
          f"(best of {args.repeats}, slack {args.slack:.0%})")

    failed = False
    for label, wall_s in sorted(baselines.items()):
        limit = wall_s * (1.0 + args.slack)
        rel = fresh / wall_s - 1.0
        verdict = "ok" if fresh <= limit else "REGRESSION"
        failed = failed or fresh > limit
        print(f"  {label:32} {wall_s*1000:7.1f} ms  ({rel:+.1%})  {verdict}")

    if failed:
        print("FAIL: hybrid composite slower than a committed baseline "
              "beyond slack")
        return 1
    if not committed_ok:
        print("FAIL: a committed baseline is below its acceptance bar")
        return 1
    print("bench guard passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
