"""OpenMP thread teams.

A :class:`Team` is a fork/join group of simulated threads inside one
process (MPI rank or standalone).  Thread 0 runs at the master's trace
location, so call paths nest naturally under the sequential code, and
the master passivates until the join -- matching the OpenMP execution
model where the master *is* thread 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..obs.instruments import omp_metrics
from ..simkernel import SimBarrier, SimMutex, SimProcess, current_process
from ..trace.api import current_instrumentation
from ..trace.events import Location


class OmpError(Exception):
    """Misuse of the simulated OpenMP runtime."""


def current_team() -> Optional["Team"]:
    """The team of the calling thread, or ``None`` outside parallel."""
    return current_process().context.get("omp_team")


def require_team() -> "Team":
    """The current team, or :class:`OmpError` outside parallel regions."""
    team = current_team()
    if team is None:
        raise OmpError("this construct requires an active parallel region")
    return team


def omp_get_thread_num() -> int:
    """Thread number within the current team (0 outside parallel)."""
    team = current_team()
    return team.thread_num_of(current_process()) if team else 0


def omp_get_num_threads() -> int:
    """Size of the current team (1 outside parallel)."""
    team = current_team()
    return team.size if team else 1


@dataclass
class _SharedCounter:
    """Shared iteration dispenser for dynamic/guided schedules."""

    next: int = 0


class Team:
    """One active parallel region's thread team."""

    def __init__(
        self,
        sim,
        master: SimProcess,
        size: int,
        team_id: int,
        locations: list[Location],
    ):
        if size < 1:
            raise OmpError("team size must be >= 1")
        self.sim = sim
        self.master = master
        self.size = size
        self.team_id = team_id
        self.locations = locations
        self._barrier = SimBarrier(size, name=f"omp_team{team_id}")
        self._remaining = size
        self.results: list[Any] = [None] * size
        # Per-construct-instance shared state.  All threads execute
        # worksharing constructs in the same order (an OpenMP
        # requirement), so per-thread instance counters agree.
        self._instance_of: dict[int, int] = {}
        self._loop_counters: dict[int, _SharedCounter] = {}
        self._single_claimed: dict[int, int] = {}
        self._reduce_slots: dict[int, list] = {}
        self._critical_mutexes: dict[str, SimMutex] = {}
        #: metrics bundle, or None while observability is disabled
        self._metrics = omp_metrics()

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def thread_num_of(self, proc: SimProcess) -> int:
        num = proc.context.get("omp_thread_num")
        if num is None or proc.context.get("omp_team") is not self:
            raise OmpError(f"{proc.name} is not a member of this team")
        return num

    def _next_instance(self) -> int:
        """Per-thread counter for worksharing construct instances."""
        me = self.thread_num_of(current_process())
        seq = self._instance_of.get(me, 0)
        self._instance_of[me] = seq + 1
        return seq

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def barrier(self, region: str = "omp_barrier") -> None:
        """Team barrier, traced per thread as ``region``.

        All threads leave at the last arrival time -- the observable
        shape of every OpenMP imbalance property.
        """
        proc = current_process()
        self.thread_num_of(proc)  # membership check
        rec, loc = current_instrumentation()
        m = self._metrics
        if rec is not None:
            rec.enter(proc.sim.now, loc, region)
        if m is not None:
            arrived = proc.sim.now
        self._barrier.wait()
        if m is not None:
            m.barrier_waits.inc()
            m.barrier_wait_seconds.observe(proc.sim.now - arrived)
        if rec is not None:
            rec.exit(proc.sim.now, loc, region)

    def critical(self, name: str = "default") -> SimMutex:
        """The named critical-section mutex (shared per team)."""
        if name not in self._critical_mutexes:
            self._critical_mutexes[name] = SimMutex(
                name=f"omp_critical:{name}"
            )
        return self._critical_mutexes[name]

    def single(self) -> bool:
        """``omp single``: True for the first thread to arrive.

        The implicit barrier must be issued separately (or skipped for
        ``nowait`` semantics) via :meth:`barrier`.
        """
        instance = self._next_instance()
        me = self.thread_num_of(current_process())
        if instance not in self._single_claimed:
            self._single_claimed[instance] = me
            return True
        return False

    def reduce(self, value: Any, op: Callable[[Any, Any], Any]):
        """All-threads reduction; every thread receives the result.

        Deterministic combination order (by thread number) regardless
        of arrival order.
        """
        instance = self._next_instance()
        slots = self._reduce_slots.setdefault(
            instance, [None] * self.size
        )
        me = self.thread_num_of(current_process())
        slots[me] = value
        self.barrier(region="omp_ibarrier_reduce")
        acc = slots[0]
        for contrib in slots[1:]:
            acc = op(acc, contrib)
        return acc

    # ------------------------------------------------------------------
    # worksharing loops
    # ------------------------------------------------------------------

    def loop_chunks(
        self,
        iterations: int,
        schedule: str = "static",
        chunk: Optional[int] = None,
    ):
        """Yield this thread's iteration indices for an ``omp for``.

        Schedules:

        * ``static`` without chunk: contiguous blocks, remainder spread
          over the first threads (the usual static partition),
        * ``static`` with chunk: round-robin chunks,
        * ``dynamic``: threads grab ``chunk`` (default 1) iterations at
          a time from a shared counter,
        * ``guided``: grabbed chunk size is ``remaining / team size``,
          bounded below by ``chunk`` (default 1).
        """
        if iterations < 0:
            raise OmpError("iteration count must be non-negative")
        if schedule not in ("static", "dynamic", "guided"):
            raise OmpError(f"unknown schedule {schedule!r}")
        me = self.thread_num_of(current_process())
        sz = self.size
        if schedule == "static":
            if chunk is None:
                base, extra = divmod(iterations, sz)
                lo = me * base + min(me, extra)
                hi = lo + base + (1 if me < extra else 0)
                yield from range(lo, hi)
            else:
                if chunk < 1:
                    raise OmpError("chunk must be >= 1")
                for start in range(me * chunk, iterations, sz * chunk):
                    yield from range(
                        start, min(start + chunk, iterations)
                    )
            return
        # dynamic / guided share the grab-from-counter structure
        instance = self._next_instance()
        counter = self._loop_counters.setdefault(
            instance, _SharedCounter()
        )
        min_chunk = chunk if chunk is not None else 1
        if min_chunk < 1:
            raise OmpError("chunk must be >= 1")
        while counter.next < iterations:
            lo = counter.next
            if schedule == "dynamic":
                grab = min_chunk
            else:  # guided
                remaining = iterations - lo
                grab = max(min_chunk, remaining // sz)
            hi = min(lo + grab, iterations)
            counter.next = hi
            yield from range(lo, hi)

    # ------------------------------------------------------------------
    # join bookkeeping (used by the region machinery)
    # ------------------------------------------------------------------

    def _thread_done(self, thread_num: int, result: Any) -> None:
        self.results[thread_num] = result
        self._remaining -= 1
        if self._remaining == 0:
            self.sim.activate(self.master)
