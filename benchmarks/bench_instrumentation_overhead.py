"""T-OVH -- instrumentation overhead and intrusiveness (paper ch. 2).

"[Benchmark suites] can be used to give an idea of how much the
instrumentation added by a tool affects performance, i.e., of the
overhead introduced by the tool."

Shape claims: zero-intrusion tracing leaves virtual timing untouched
(the measurement ideal), while per-event intrusion dilates run time
proportionally to event count and eventually *distorts the measured
severities themselves* -- the paper's intrusiveness concern made
quantitative.
"""

from repro.apps import CgConfig, JacobiConfig, cg_like, jacobi
from repro.validation import intrusion_sweep, measure_overhead

INTRUSIONS = (0.0, 1e-6, 1e-5, 1e-4)


def test_zero_intrusion_is_perfectly_transparent(benchmark):
    report = benchmark.pedantic(
        measure_overhead,
        args=(jacobi,),
        kwargs=dict(size=8, model_init_overhead=False),
        rounds=1,
        iterations=1,
    )
    print("\nT-OVH zero-intrusion tracing:")
    print(report.format())
    assert report.virtual_dilation == 0.0
    assert report.events > 0


def test_intrusion_dilates_run_time_monotonically(benchmark):
    reports = benchmark.pedantic(
        intrusion_sweep,
        args=(jacobi, INTRUSIONS),
        kwargs=dict(size=8, model_init_overhead=False),
        rounds=1,
        iterations=1,
    )
    print("\nT-OVH intrusion sweep (jacobi, 8 ranks):")
    for report in reports:
        print("  " + report.format().strip())
    dilations = [r.virtual_dilation for r in reports]
    assert dilations == sorted(dilations)
    assert dilations[0] == 0.0 and dilations[-1] > 0.01


def test_intrusion_distorts_measured_severities(benchmark):
    """The key intrusiveness hazard: a heavy-handed tool changes the
    waiting pattern it is trying to measure."""
    reports = benchmark.pedantic(
        intrusion_sweep,
        args=(cg_like, (0.0, 1e-4)),
        kwargs=dict(
            size=8, model_init_overhead=False,
        ),
        rounds=1,
        iterations=1,
    )
    clean, heavy = reports
    print("\nT-OVH severity distortion (cg_like):")
    print("  " + clean.format().strip())
    print("  " + heavy.format().strip())
    assert clean.max_severity_shift == 0.0
    assert heavy.max_severity_shift > 0.0


def test_overhead_scales_with_event_count(benchmark):
    """More communication -> more events -> more absolute dilation."""

    def run():
        small = measure_overhead(
            jacobi, size=4, intrusion=1e-5,
            model_init_overhead=False,
        )
        big = measure_overhead(
            cg_like, size=4, intrusion=1e-5,
            model_init_overhead=False,
        )
        return small, big

    small, big = benchmark.pedantic(run, rounds=1, iterations=1)
    denser = max((small, big), key=lambda r: r.events)
    sparser = min((small, big), key=lambda r: r.events)
    added_dense = (
        denser.traced_virtual_time - denser.clean_virtual_time
    )
    added_sparse = (
        sparser.traced_virtual_time - sparser.clean_virtual_time
    )
    print(f"\n  {sparser.events} events -> +{added_sparse:.5f}s; "
          f"{denser.events} events -> +{added_dense:.5f}s")
    assert added_dense > added_sparse
