"""Tool-under-test adapters for the validation harness.

The harness (`repro.validation.harness`) accepts any callable mapping a
run result to detected property ids.  This module bundles adapters
representing realistic tool classes, so the detection matrix can be
exercised against more than the bundled analyzer:

* :func:`pattern_tool` -- the full analyzer at a chosen sensitivity,
* :func:`profile_only_tool` -- a profile-based tool that knows region
  times but no event patterns: it can call a program communication- or
  synchronization-heavy but cannot name *which* wait pattern -- so it
  fails positive correctness on pattern properties,
* :func:`single_detector_tool` -- a tool with exactly one detector
  (e.g. only late-sender capable), modelling partial implementations.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from .analyzer import analyze_run
from .detectors import DEFAULT_DETECTORS

ToolFn = Callable[[object], Tuple[str, ...]]


def pattern_tool(threshold: float = 0.01) -> ToolFn:
    """The bundled pattern analyzer at sensitivity ``threshold``."""

    def tool(run) -> Tuple[str, ...]:
        return analyze_run(run).detected(threshold)

    tool.__name__ = f"pattern_tool(threshold={threshold})"
    return tool


def profile_only_tool(
    mpi_fraction_threshold: float = 0.2,
) -> ToolFn:
    """A summary-data tool: sees region time fractions, no patterns.

    Reports the ASL summary properties ``communication_bound`` /
    ``io_bound`` only -- never a waiting-time pattern id, because it
    has no event-level data.  Against the ATS matrix this tool fails
    every pattern property (missing) while staying silent on balanced
    programs: the matrix separates "measures something" from "detects
    the property".
    """
    from ..asl import CommunicationBound, PerformanceData

    def tool(run) -> Tuple[str, ...]:
        data = PerformanceData.from_run(run)
        out = []
        prop = CommunicationBound()
        prop.threshold = mpi_fraction_threshold
        if prop.condition(data):
            out.append("communication_bound")
        if data.region_fraction("io_read", "io_write") > 0.2:
            out.append("io_bound")
        return tuple(out)

    tool.__name__ = "profile_only_tool"
    return tool


def single_detector_tool(
    detector, threshold: float = 0.01
) -> ToolFn:
    """A tool implementing exactly one detector."""

    def tool(run) -> Tuple[str, ...]:
        return analyze_run(
            run, detectors=[detector]
        ).detected(threshold)

    tool.__name__ = f"single_detector({type(detector).__name__})"
    return tool


def battery_without(
    *excluded_types, threshold: float = 0.01
) -> ToolFn:
    """The full battery minus the given detector classes.

    Models a tool version that lost a capability -- the regression case
    :func:`repro.analysis.compare_analyses` is built for.
    """

    def tool(run) -> Tuple[str, ...]:
        detectors = [
            d
            for d in DEFAULT_DETECTORS
            if not isinstance(d, tuple(excluded_types))
        ]
        return analyze_run(
            run, detectors=detectors
        ).detected(threshold)

    tool.__name__ = "battery_without(" + ",".join(
        t.__name__ for t in excluded_types
    ) + ")"
    return tool
