#!/usr/bin/env python
"""The paper's wall-clock ``do_work`` implementation, demonstrated.

Paper section 3.1.1 describes the C prototype's work function: a loop
of random read/write accesses to two large arrays, calibrated at
install time ("the number of iterations of this loop which represent
one second is calculated through the use of calibration programs"),
deliberately avoiding timing system calls inside the loop — plus the
war story that the thread-safe libc ``rand()`` serialized the parallel
version, forcing a lock-free parallel generator.

This demo runs the configuration phase and shows the calibrated busy
loop tracking requested durations, and shows that independent workers
(the lock-free design) calibrate independently.
"""

import time

from repro.work import RealWorker


def main() -> None:
    print("configuration phase (the paper's install-time calibration):")
    worker = RealWorker(seed=42)
    cal = worker.calibrate(target_seconds=0.1)
    print(f"  measured {cal.measured_iterations} iterations in "
          f"{cal.measured_seconds:.3f}s")
    print(f"  -> {cal.iterations_per_second:,.0f} iterations/second\n")

    print("calibrated busy work vs. wall clock:")
    for target in (0.02, 0.05, 0.1):
        start = time.perf_counter()
        worker.do_work(target)
        actual = time.perf_counter() - start
        err = (actual - target) / target
        print(f"  requested {target * 1e3:6.1f} ms -> "
              f"measured {actual * 1e3:6.1f} ms ({err:+.0%})")

    print("\nindependent workers own independent state (the lock-free")
    print("parallel-RNG design of section 3.1.1):")
    others = [RealWorker(seed=s) for s in (1, 2)]
    for i, other in enumerate(others):
        other.calibrate(target_seconds=0.05)
        print(f"  worker {i}: "
              f"{other.calibration.iterations_per_second:,.0f} it/s")
    print("\nnote: as the paper says, this function approximates real "
          "time and\n'cannot be used to validate time measurements' -- "
          "the virtual-time\nbackend (repro.work.do_work) is exact and "
          "is what the test suite uses.")


if __name__ == "__main__":
    main()
