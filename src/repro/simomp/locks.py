"""OpenMP lock API (``omp_init_lock``/``omp_set_lock`` family).

Unlike ``omp critical`` (lexically scoped), locks are objects that can
be shared across regions and acquired in one function and released in
another.  The traced ``omp_lock`` region covers exactly the
acquisition wait, so lock contention is directly measurable.
"""

from __future__ import annotations

from typing import Iterator

from ..simkernel import SimMutex, current_process
from ..trace.api import current_instrumentation

#: trace region covering lock-acquisition waits
LOCK_REGION = "omp_lock"


class OmpLock:
    """A simple (non-nestable) OpenMP lock."""

    def __init__(self, name: str = "lock"):
        self.name = name
        self._mutex = SimMutex(name=f"omp_lock:{name}")

    def set(self) -> None:
        """Acquire (``omp_set_lock``); blocks while held elsewhere.

        The blocked interval is traced as an ``omp_lock`` region.
        """
        proc = current_process()
        rec, loc = current_instrumentation()
        if rec is not None:
            rec.enter(proc.sim.now, loc, LOCK_REGION)
        self._mutex.acquire()
        if rec is not None:
            rec.exit(proc.sim.now, loc, LOCK_REGION)

    def unset(self) -> None:
        """Release (``omp_unset_lock``); must be held by the caller."""
        self._mutex.release()

    def test(self) -> bool:
        """Try to acquire without blocking (``omp_test_lock``)."""
        if self._mutex.locked:
            return False
        self._mutex.acquire()
        return True

    @property
    def held(self) -> bool:
        return self._mutex.locked

    def __enter__(self) -> "OmpLock":
        self.set()
        return self

    def __exit__(self, *exc) -> None:
        self.unset()
