"""ArchiveStore: blobs, cells, manifest healing."""

import gzip

import pytest

from repro.archive import ArchiveError, ArchiveStore, sha256_hex


def test_blob_round_trip_and_digest(tmp_path):
    store = ArchiveStore(tmp_path)
    data = b'{"hello": "world"}\n' * 100
    digest = store.put_blob(data)
    assert digest == sha256_hex(data)
    assert store.has_blob(digest)
    assert store.get_blob(digest) == data


def test_blobs_are_gzip_on_disk(tmp_path):
    store = ArchiveStore(tmp_path)
    data = b"x" * 10_000
    digest = store.put_blob(data)
    raw = store._blob_path(digest).read_bytes()
    assert raw[:2] == b"\x1f\x8b"
    assert len(raw) < len(data)
    assert gzip.decompress(raw) == data


def test_identical_blobs_deduplicate(tmp_path):
    store = ArchiveStore(tmp_path)
    d1 = store.put_blob(b"same payload")
    d2 = store.put_blob(b"same payload")
    assert d1 == d2
    objects = [
        p for p in (tmp_path / "objects").rglob("*") if p.is_file()
    ]
    assert len(objects) == 1


def test_corrupt_blob_fails_digest_check(tmp_path):
    store = ArchiveStore(tmp_path)
    digest = store.put_blob(b"precious data")
    path = store._blob_path(digest)
    path.write_bytes(gzip.compress(b"tampered"))
    with pytest.raises(ArchiveError, match="digest check"):
        store.get_blob(digest)


def test_missing_blob_raises(tmp_path):
    store = ArchiveStore(tmp_path)
    with pytest.raises(ArchiveError, match="missing blob"):
        store.get_blob("ab" * 32)


def test_named_cells(tmp_path):
    store = ArchiveStore(tmp_path)
    assert store.get_named("findings|x|y") is None
    assert not store.has_named("findings|x|y")
    store.put_named("findings|x|y", b"[1, 2, 3]")
    assert store.get_named("findings|x|y") == b"[1, 2, 3]"
    assert store.has_named("findings|x|y")


def test_manifest_round_trip_and_last_wins(tmp_path):
    with ArchiveStore(tmp_path) as store:
        store.record_run("run-a", {"v": 1})
        store.record_run("run-b", {"v": 2})
        store.record_run("run-a", {"v": 3})  # re-archive supersedes
    manifest = ArchiveStore(tmp_path).load_manifest()
    assert list(manifest) == ["run-a", "run-b"]
    assert manifest["run-a"] == {"v": 3}


def test_manifest_heals_partial_tail(tmp_path):
    with ArchiveStore(tmp_path) as store:
        store.record_run("run-a", {"v": 1})
        store.record_run("run-b", {"v": 2})
    manifest_path = tmp_path / "manifest.jsonl"
    data = manifest_path.read_bytes()
    # Simulate a kill mid-append: cut the final record in half.
    manifest_path.write_bytes(data[: len(data) - 10])
    store = ArchiveStore(tmp_path)
    assert store.load_manifest() == {"run-a": {"v": 1}}
    # Appending after healing keeps the journal consistent.
    store.record_run("run-c", {"v": 3})
    store.close()
    assert list(ArchiveStore(tmp_path).load_manifest()) == [
        "run-a",
        "run-c",
    ]


def test_manifest_rejects_foreign_journal(tmp_path):
    (tmp_path / "manifest.jsonl").write_text(
        '{"format": "ats-checkpoint", "version": 1}\n'
    )
    with pytest.raises(ArchiveError, match="ats-archive-manifest"):
        ArchiveStore(tmp_path).load_manifest()
