"""run_cells_forked: the supervised lifecycle on forked workers."""

import json
import time

import pytest

from repro.resilience import Supervisor, run_cells_forked
from repro.work.forkexec import fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)


def _ok_cell(value):
    def fn():
        return {"value": value}

    return fn


def _crash_cell():
    raise RuntimeError("cell exploded")


def test_unsupervised_results_in_submission_order():
    cells = [(f"c{i}", _ok_cell(i)) for i in range(5)]
    outcomes = run_cells_forked(cells, workers=2)
    assert [o.key for o in outcomes] == [f"c{i}" for i in range(5)]
    assert [o.value["value"] for o in outcomes] == list(range(5))
    assert all(o.ok and o.attempts == 1 for o in outcomes)


def test_unsupervised_failure_is_failed_outcome():
    outcomes = run_cells_forked(
        [("good", _ok_cell(1)), ("bad", _crash_cell)],
        workers=2,
    )
    good, bad = outcomes
    assert good.ok
    assert not bad.ok
    assert bad.failure.kind == "crash"
    assert "RuntimeError: cell exploded" in bad.failure.error


def test_supervised_quarantine_and_failure_report():
    sup = Supervisor()
    outcomes = run_cells_forked(
        [("ok", _ok_cell(7)), ("boom", _crash_cell)],
        workers=2,
        supervisor=sup,
    )
    assert outcomes[0].ok
    assert outcomes[1].failure.kind == "crash"
    report = sup.failure_report()
    assert [f.key for f in report.failures] == ["boom"]
    assert report.counts() == {"crash": 1}


def test_classification_matches_serial_taxonomy():
    def deadlockish():
        from repro.simkernel.errors import DeadlockError

        raise DeadlockError("stuck ranks")

    sup = Supervisor()
    outcome = run_cells_forked(
        [("dl", deadlockish)], workers=1, supervisor=sup
    )[0]
    assert outcome.failure.kind == "deadlock"


def test_timeout_kills_and_quarantines_with_serial_error_text():
    def hang():
        time.sleep(60)

    sup = Supervisor(timeout=0.3)
    outcome = run_cells_forked([("h", hang)], workers=1, supervisor=sup)[0]
    assert outcome.failure.kind == "timeout"
    assert outcome.failure.error == (
        "CellTimeout: wall-clock timeout after 0.3s"
    )


def test_transient_timeout_is_retried_then_quarantined():
    def hang():
        time.sleep(60)

    sleeps = []
    sup = Supervisor(timeout=0.2, retries=1, sleep=sleeps.append)
    outcome = run_cells_forked([("h", hang)], workers=1, supervisor=sup)[0]
    assert not outcome.ok
    assert outcome.attempts == 2
    assert outcome.failure.attempts == 2
    assert len(sleeps) == 1  # one backoff round between the attempts
    assert sleeps[0] == sup.backoff_delay("h", 1)


def test_journal_matches_serial_supervisor(tmp_path):
    def run(path, forked):
        sup = Supervisor(checkpoint=path)
        cells = [("a", _ok_cell(1)), ("b", _crash_cell)]
        if forked:
            run_cells_forked(cells, workers=2, supervisor=sup)
        else:
            for key, fn in cells:
                sup.run_cell(key, fn)
        sup.close()
        entries = {}
        for line in path.read_text().splitlines()[1:]:
            record = json.loads(line)
            entries[record["key"]] = record["payload"]
        return entries

    serial = run(tmp_path / "serial.ckpt", forked=False)
    forked = run(tmp_path / "forked.ckpt", forked=True)
    assert serial == forked


def test_forked_resumes_from_journal(tmp_path):
    path = tmp_path / "resume.ckpt"
    sup = Supervisor(checkpoint=path)
    run_cells_forked([("a", _ok_cell(5))], workers=1, supervisor=sup)
    sup.close()

    ran = []

    def must_not_run():
        ran.append(True)
        return {"value": -1}

    sup2 = Supervisor(checkpoint=path)
    outcome = run_cells_forked(
        [("a", must_not_run)], workers=1, supervisor=sup2
    )[0]
    sup2.close()
    assert outcome.from_checkpoint
    assert outcome.value == {"value": 5}
    assert not ran


def test_on_extras_receives_child_side_channel():
    seen = {}
    run_cells_forked(
        [("k1", _ok_cell(1)), ("k2", _ok_cell(2))],
        workers=2,
        extras_fn=lambda: ["extra-record"],
        on_extras=lambda key, extras: seen.__setitem__(key, extras),
    )
    assert seen == {"k1": ["extra-record"], "k2": ["extra-record"]}
