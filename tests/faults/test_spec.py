"""Perturbation specs: scaling, no-op detection, serialization."""

import pytest

from repro.faults import (
    DropRecords,
    DuplicateRecords,
    FaultPlan,
    MessageLatencyNoise,
    MessageReorder,
    Perturbation,
    RankStragglers,
    TimingJitter,
    TruncateTrace,
)
from repro.faults.spec import perturbation_from_dict

ALL_KINDS = [
    RankStragglers(ranks=(1,), slowdown=0.4),
    TimingJitter(magnitude=0.1),
    MessageLatencyNoise(magnitude=3.0),
    MessageReorder(probability=0.5, window=3),
    DropRecords(rate=0.05),
    DuplicateRecords(rate=0.05),
    TruncateTrace(drop_fraction=0.2),
]


@pytest.mark.parametrize("p", ALL_KINDS, ids=lambda p: p.kind)
def test_roundtrips_through_dict(p):
    assert perturbation_from_dict(p.to_dict()) == p


@pytest.mark.parametrize("p", ALL_KINDS, ids=lambda p: p.kind)
def test_scaling_to_zero_is_noop(p):
    assert not p.is_noop
    assert p.scaled(0.0).is_noop


def test_scaling_clamps_probabilities():
    assert DropRecords(rate=0.5).scaled(10.0).rate == 1.0
    assert MessageReorder(probability=0.8).scaled(2.0).probability == 1.0
    assert TruncateTrace(drop_fraction=0.5).scaled(10.0).drop_fraction < 1.0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown perturbation"):
        perturbation_from_dict({"kind": "cosmic_rays"})


def test_plan_noop_and_trace_fault_flags():
    assert FaultPlan.of().is_noop
    assert FaultPlan.of(TimingJitter(0.0)).is_noop
    runtime_only = FaultPlan.of(TimingJitter(0.1))
    assert not runtime_only.is_noop
    assert not runtime_only.has_trace_faults
    assert FaultPlan.of(DropRecords(0.1)).has_trace_faults
    assert FaultPlan.of(TruncateTrace(0.1)).has_trace_faults


def test_plan_scaled_and_only():
    plan = FaultPlan.default()
    assert plan.scaled(0.0).is_noop
    with pytest.raises(ValueError):
        plan.scaled(-1.0)
    jitter_only = plan.only(TimingJitter)
    assert [p.kind for p in jitter_only.perturbations] == ["timing_jitter"]


def test_plan_roundtrips_through_dict():
    plan = FaultPlan.default()
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_describe_mentions_every_kind():
    text = FaultPlan.default().describe()
    for p in FaultPlan.default().perturbations:
        assert p.kind in text


def test_perturbations_are_immutable():
    p = TimingJitter(magnitude=0.1)
    assert isinstance(p, Perturbation)
    with pytest.raises(AttributeError):
        p.magnitude = 0.5


# ----------------------------------------------------------------------
# property-based round trips (hypothesis)
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_rates = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
_magnitudes = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
_fractions = st.floats(
    min_value=0.0,
    max_value=0.999,
    allow_nan=False,
    allow_infinity=False,
    exclude_max=False,
)

perturbations = st.one_of(
    st.builds(
        RankStragglers,
        ranks=st.tuples(st.integers(min_value=0, max_value=63)),
        slowdown=_magnitudes,
    ),
    st.builds(TimingJitter, magnitude=_magnitudes),
    st.builds(MessageLatencyNoise, magnitude=_magnitudes),
    st.builds(
        MessageReorder,
        probability=_rates,
        window=st.integers(min_value=1, max_value=16),
    ),
    st.builds(DropRecords, rate=_rates),
    st.builds(DuplicateRecords, rate=_rates),
    st.builds(TruncateTrace, drop_fraction=_fractions),
)

_scale_factors = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=200, deadline=None)
@given(p=perturbations)
def test_any_perturbation_roundtrips(p):
    d = p.to_dict()
    assert perturbation_from_dict(d) == p
    # the dict is pure JSON data (stable wire format)
    import json

    assert perturbation_from_dict(json.loads(json.dumps(d))) == p


@settings(max_examples=200, deadline=None)
@given(p=perturbations, factor=_scale_factors)
def test_scaled_perturbation_roundtrips(p, factor):
    scaled = p.scaled(factor)
    assert perturbation_from_dict(scaled.to_dict()) == scaled
    if factor == 0.0:
        assert scaled.is_noop


@settings(max_examples=100, deadline=None)
@given(ps=st.lists(perturbations, max_size=5), factor=_scale_factors)
def test_any_plan_roundtrips_and_scales(ps, factor):
    plan = FaultPlan.of(*ps)
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    scaled = plan.scaled(factor)
    assert FaultPlan.from_dict(scaled.to_dict()) == scaled
    if factor == 0.0:
        assert scaled.is_noop
