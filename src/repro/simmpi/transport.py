"""Point-to-point transport: cost model and message matching.

The cost model is a small LogP-style abstraction:

* ``transfer_time(n) = latency + n / bandwidth``
* messages up to ``eager_threshold`` bytes use the **eager** protocol:
  the send completes locally after ``send_overhead`` and the data
  arrives at ``send_start + transfer_time``, independent of the
  receiver -- so a late *sender* makes the receiver wait,
* larger messages use the **rendezvous** protocol: the transfer only
  starts once both sides have posted, so a late *receiver* blocks the
  sender.

These two protocols are precisely what give the ATS ``late_sender`` and
``late_receiver`` property functions their distinct observable wait
patterns.

Matching follows MPI semantics: envelopes are ``(source, tag,
communicator)``; ``ANY_SOURCE``/``ANY_TAG`` wildcards are supported;
messages between a pair on one communicator are non-overtaking (FIFO
match order).  Collective-internal traffic is flagged ``internal`` and
matches only internal receives, so algorithm traffic can never steal a
user message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..obs.instruments import transport_metrics
from .datatypes import Datatype
from .errors import CommMismatchError, TruncationError
from .request import Request
from .status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from ..trace.recorder import TraceRecorder
    from .communicator import Communicator


@dataclass(frozen=True)
class TransportParams:
    """Cost-model parameters of the simulated interconnect.

    Defaults are loosely modeled on a commodity cluster of the paper's
    era scaled to round numbers: 5 microseconds latency, 1 GB/s
    bandwidth, 8 KiB eager threshold.  ``init_cost_base``/``_per_rank``
    parameterize the synthetic ``MPI_Init``/``MPI_Finalize`` cost that
    reproduces the paper's "High MPI Initialization/Finalization
    Overhead" observation (figure 3.2).
    """

    latency: float = 5e-6
    bandwidth: float = 1e9
    eager_threshold: int = 8192
    send_overhead: float = 1e-6
    recv_overhead: float = 1e-6
    init_cost_base: float = 1e-3
    init_cost_per_rank: float = 1e-4
    finalize_cost_base: float = 5e-4
    finalize_cost_per_rank: float = 5e-5

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if self.eager_threshold < 0:
            raise ValueError("eager threshold must be >= 0")
        if min(self.send_overhead, self.recv_overhead) < 0:
            raise ValueError("overheads must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        """End-to-end wire time of an ``nbytes`` message."""
        return self.latency + nbytes / self.bandwidth

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.eager_threshold

    def init_cost(self, size: int) -> float:
        return self.init_cost_base + self.init_cost_per_rank * size

    def finalize_cost(self, size: int) -> float:
        return self.finalize_cost_base + self.finalize_cost_per_rank * size


@dataclass
class _SendItem:
    """An unmatched (or in-flight) send as seen by the matching engine."""

    msg_id: int
    src: int                  # local rank in the communicator
    dst: int
    tag: int
    internal: bool
    data: np.ndarray          # snapshot taken at post time
    count: int
    dtype: Datatype
    nbytes: int
    send_start: float
    eager: bool
    arrival: Optional[float]  # eager only: wire arrival time
    request: Request


@dataclass
class _RecvItem:
    """An unmatched posted receive."""

    src_spec: int
    tag_spec: int
    internal: bool
    buf_data: np.ndarray
    buf_count: int
    dtype: Datatype
    post_time: float
    request: Request


class P2PEngine:
    """Per-world message matching engine."""

    def __init__(self, params: TransportParams, faults=None):
        self.params = params
        # (comm_id, dst_local_rank) -> FIFO of unmatched items
        self._sends: dict[tuple[int, int], list[_SendItem]] = {}
        self._recvs: dict[tuple[int, int], list[_RecvItem]] = {}
        # (comm_id, dst_local_rank) -> processes blocked in probe()
        self._probers: dict[tuple[int, int], list] = {}
        #: counters for diagnostics and overhead accounting
        self.messages_matched = 0
        self.bytes_transferred = 0
        #: metrics bundle, or None while observability is disabled
        self._metrics = transport_metrics()
        #: fault injector (see :mod:`repro.faults`), or None for the
        #: clean path: adds wire-latency noise per transfer and bounded
        #: reorder of the unexpected-message queue.
        self.faults = faults

    def _wire_time(self, nbytes: int) -> float:
        """Transfer time of one message, plus any injected noise."""
        wire = self.params.transfer_time(nbytes)
        if self.faults is not None:
            wire += self.faults.wire_delay(self.params.latency)
        return wire

    # ------------------------------------------------------------------
    # posting
    # ------------------------------------------------------------------

    def post_send(
        self,
        comm: "Communicator",
        src: int,
        dst: int,
        tag: int,
        data: np.ndarray,
        count: int,
        dtype: Datatype,
        internal: bool,
        request: Request,
        msg_id: int,
    ) -> None:
        """Register a send; match immediately if a receive is pending."""
        now = request.owner.sim.now
        nbytes = count * dtype.size
        eager = self.params.is_eager(nbytes)
        item = _SendItem(
            msg_id=msg_id,
            src=src,
            dst=dst,
            tag=tag,
            internal=internal,
            data=np.array(data[:count], copy=True),
            count=count,
            dtype=dtype,
            nbytes=nbytes,
            send_start=now,
            eager=eager,
            arrival=(now + self._wire_time(nbytes)) if eager else None,
            request=request,
        )
        if eager:
            # Local completion is independent of the receiver.
            request._complete(now + self.params.send_overhead)
        key = (comm.comm_id, dst)
        m = self._metrics
        if m is not None:
            (m.msg_eager if eager else m.msg_rendezvous).inc()
        ritem = self._match_recv_for(key, item)
        if ritem is None:
            queue = self._sends.setdefault(key, [])
            queue.append(item)
            if self.faults is not None:
                self.faults.reorder_sends(queue)
            if m is not None:
                m.unexpected_queue.observe(len(queue))
            self._wake_probers(comm.comm_id, dst)
        else:
            if m is not None:
                m.match_posted.inc()
            self._deliver(item, ritem)

    def post_recv(
        self,
        comm: "Communicator",
        dst: int,
        src_spec: int,
        tag_spec: int,
        buf_data: np.ndarray,
        buf_count: int,
        dtype: Datatype,
        internal: bool,
        request: Request,
    ) -> None:
        """Register a receive; match immediately if a send is pending."""
        now = request.owner.sim.now
        ritem = _RecvItem(
            src_spec=src_spec,
            tag_spec=tag_spec,
            internal=internal,
            buf_data=buf_data,
            buf_count=buf_count,
            dtype=dtype,
            post_time=now,
            request=request,
        )
        key = (comm.comm_id, dst)
        m = self._metrics
        item = self._match_send_for(key, ritem)
        if item is None:
            queue = self._recvs.setdefault(key, [])
            queue.append(ritem)
            if m is not None:
                m.posted_queue.observe(len(queue))
        else:
            if m is not None:
                m.match_unexpected.inc()
            self._deliver(item, ritem)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def find_send(
        self,
        comm_id: int,
        dst: int,
        src_spec: int,
        tag_spec: int,
        internal: bool = False,
    ) -> Optional[_SendItem]:
        """First pending send matching the envelope (not removed)."""
        for item in self._sends.get((comm_id, dst), []):
            if item.internal != internal:
                continue
            if src_spec not in (ANY_SOURCE, item.src):
                continue
            if tag_spec not in (ANY_TAG, item.tag):
                continue
            return item
        return None

    def register_prober(self, comm_id: int, dst: int, proc) -> None:
        """Park a process to be woken when any send for ``dst`` arrives."""
        self._probers.setdefault((comm_id, dst), []).append(proc)

    def unregister_prober(self, comm_id: int, dst: int, proc) -> None:
        probers = self._probers.get((comm_id, dst), [])
        if proc in probers:
            probers.remove(proc)

    def _wake_probers(self, comm_id: int, dst: int) -> None:
        for proc in self._probers.pop((comm_id, dst), []):
            proc.sim.activate(proc)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    @staticmethod
    def _envelope_match(item: _SendItem, ritem: _RecvItem) -> bool:
        if item.internal != ritem.internal:
            return False
        if ritem.src_spec not in (ANY_SOURCE, item.src):
            return False
        if ritem.tag_spec not in (ANY_TAG, item.tag):
            return False
        return True

    def _match_recv_for(
        self, key: tuple[int, int], item: _SendItem
    ) -> Optional[_RecvItem]:
        queue = self._recvs.get(key, [])
        for i, ritem in enumerate(queue):
            if self._envelope_match(item, ritem):
                return queue.pop(i)
        return None

    def _match_send_for(
        self, key: tuple[int, int], ritem: _RecvItem
    ) -> Optional[_SendItem]:
        queue = self._sends.get(key, [])
        for i, item in enumerate(queue):
            if self._envelope_match(item, ritem):
                return queue.pop(i)
        return None

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def _deliver(self, item: _SendItem, ritem: _RecvItem) -> None:
        """Complete a matched pair: copy data and assign completion times."""
        if item.dtype.name != ritem.dtype.name:
            raise CommMismatchError(
                f"datatype mismatch: send {item.dtype} vs recv {ritem.dtype}"
            )
        if item.count > ritem.buf_count:
            raise TruncationError(
                f"message of {item.count} elements truncated by receive "
                f"buffer of {ritem.buf_count}"
            )
        now = item.request.owner.sim.now
        if item.eager:
            assert item.arrival is not None
            recv_done = (
                max(ritem.post_time, item.arrival)
                + self.params.recv_overhead
            )
        else:
            # Rendezvous: transfer starts when both sides are present,
            # i.e. right now (delivery happens at match time).
            xfer_done = now + self._wire_time(item.nbytes)
            item.request._complete(xfer_done)
            recv_done = xfer_done + self.params.recv_overhead
        ritem.buf_data[: item.count] = item.data
        status = ritem.request.status
        status.source = item.src
        status.tag = item.tag
        status.count = item.count
        status.nbytes = item.nbytes
        status.msg_id = item.msg_id
        ritem.request._complete(recv_done)
        self.messages_matched += 1
        self.bytes_transferred += item.nbytes
        m = self._metrics
        if m is not None:
            m.bytes.inc(item.nbytes)
            m.match_latency.observe(now - item.send_start)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def unmatched(self) -> dict[str, int]:
        """Counts of leftover unmatched sends/recvs (should be 0 at end)."""
        return {
            "sends": sum(len(q) for q in self._sends.values()),
            "recvs": sum(len(q) for q in self._recvs.values()),
        }

    def unmatched_details(self) -> list[str]:
        """Human-readable descriptions of leftover items."""
        out = []
        for (comm_id, dst), queue in self._sends.items():
            for item in queue:
                out.append(
                    f"send comm={comm_id} {item.src}->{dst} tag={item.tag}"
                    f" ({item.nbytes}B{' internal' if item.internal else ''})"
                )
        for (comm_id, dst), queue in self._recvs.items():
            for ritem in queue:
                out.append(
                    f"recv comm={comm_id} dst={dst} src={ritem.src_spec}"
                    f" tag={ritem.tag_spec}"
                    f"{' internal' if ritem.internal else ''}"
                )
        return out
