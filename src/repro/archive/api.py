"""The high-level archive API: record runs, analyze with cache, diff.

:class:`Archive` is the user-facing object behind ``ats archive
run|analyze``, ``ats history`` and ``ats diff``: a directory-backed
store where every run is identified by a short deterministic ``run_id``
(digest of its identity tuple: program, params, procs/threads, seed,
fault plan) and every trace by its content digest.  Re-archiving the
same identity supersedes the manifest record but -- identical runs
being byte-identical -- lands on the very same trace blob.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..analysis import AnalysisConfig, DEFAULT_DETECTORS
from ..analysis.analyzer import ANALYZER_VERSION
from ..analysis.compare import ComparisonReport, compare_analyses
from ..analysis.model import AnalysisResult
from ..core.registry import DistParam, PropertySpec
from ..obs.instruments import archive_metrics
from ..simkernel.process import run_host_tasks
from ..trace.events import Event
from ..trace.io import events_to_jsonl, gzip_bytes
from .cache import CacheStats, analyze_archived
from .fingerprint import detector_set_fingerprint
from .store import ArchiveError, ArchiveStore, canonical_json, sha256_hex

#: run_id length: 12 hex chars of the identity digest (collision odds
#: are negligible at archive scale, and ids stay grep-friendly)
RUN_ID_LEN = 12


def params_to_jsonable(params: Optional[dict]) -> dict:
    """Registry params (possibly DistParam-valued) as plain JSON."""
    out: dict = {}
    for key, value in sorted((params or {}).items()):
        if isinstance(value, DistParam):
            out[key] = {"dist": [value.shape, list(value.values)]}
        else:
            out[key] = value
    return out


@dataclass(frozen=True)
class ArchivedRun:
    """One manifest record: a run's identity plus trace provenance."""

    run_id: str
    program: str
    paradigm: str
    params: dict
    size: int
    threads: int
    seed: int
    plan: Optional[dict]
    trace_digest: str
    events: int
    final_time: float
    eager_threshold: Optional[int]
    detector_set: str
    analyzer_version: str
    #: optional ground-truth manifest (synthesized runs only): expected
    #: properties, locations and severity bands sampled by repro.synth
    manifest: Optional[dict] = None

    def to_payload(self) -> dict:
        payload = {
            "program": self.program,
            "paradigm": self.paradigm,
            "params": self.params,
            "size": self.size,
            "threads": self.threads,
            "seed": self.seed,
            "plan": self.plan,
            "trace_digest": self.trace_digest,
            "events": self.events,
            "final_time": self.final_time,
            "eager_threshold": self.eager_threshold,
            "detector_set": self.detector_set,
            "analyzer_version": self.analyzer_version,
        }
        # Only synthesized runs carry ground truth; leaving the key out
        # otherwise keeps pre-existing manifest journals byte-stable.
        if self.manifest is not None:
            payload["manifest"] = self.manifest
        return payload

    @classmethod
    def from_payload(cls, run_id: str, payload: dict) -> "ArchivedRun":
        return cls(
            run_id=run_id,
            program=payload["program"],
            paradigm=payload.get("paradigm", ""),
            params=payload.get("params", {}),
            size=payload.get("size", 0),
            threads=payload.get("threads", 0),
            seed=payload.get("seed", 0),
            plan=payload.get("plan"),
            trace_digest=payload["trace_digest"],
            events=payload.get("events", 0),
            final_time=payload["final_time"],
            eager_threshold=payload.get("eager_threshold"),
            detector_set=payload.get("detector_set", ""),
            analyzer_version=payload.get("analyzer_version", ""),
            manifest=payload.get("manifest"),
        )


def run_identity(
    program: str,
    params: dict,
    size: int,
    threads: int,
    seed: int,
    plan: Optional[dict],
) -> str:
    """Deterministic run_id of one identity tuple."""
    identity = canonical_json(
        {
            "program": program,
            "params": params,
            "size": size,
            "threads": threads,
            "seed": seed,
            "plan": plan,
        }
    )
    return sha256_hex(identity)[:RUN_ID_LEN]


class Archive:
    """A trace archive rooted at one directory (created lazily)."""

    def __init__(self, root: Union[str, Path], fsync: bool = False):
        self.store = ArchiveStore(root, fsync=fsync)

    @property
    def root(self) -> Path:
        return self.store.root

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(
        self,
        program: str,
        events: Sequence[Event],
        final_time: float,
        paradigm: str = "",
        params: Optional[dict] = None,
        size: int = 0,
        threads: int = 0,
        seed: int = 0,
        plan: Optional[dict] = None,
        eager_threshold: Optional[int] = None,
        manifest: Optional[dict] = None,
    ) -> ArchivedRun:
        """Archive an existing event stream (the sweep-sink entry point).

        ``params`` must already be JSON-safe (see
        :func:`params_to_jsonable`); ``plan`` is a FaultPlan dict or
        None; ``manifest`` is a synthesized run's ground-truth dict.
        Returns the manifest record, with the trace stored (or
        deduplicated) as a content-addressed blob.
        """
        params = params or {}
        text = events_to_jsonl(
            events, metadata={"program": program, "seed": seed}
        )
        trace_digest = self.store.put_blob(text.encode("utf-8"))
        run_id = run_identity(program, params, size, threads, seed, plan)
        run = ArchivedRun(
            run_id=run_id,
            program=program,
            paradigm=paradigm,
            params=params,
            size=size,
            threads=threads,
            seed=seed,
            plan=plan,
            trace_digest=trace_digest,
            events=len(events),
            final_time=final_time,
            eager_threshold=eager_threshold,
            detector_set=detector_set_fingerprint(DEFAULT_DETECTORS),
            analyzer_version=ANALYZER_VERSION,
            manifest=manifest,
        )
        self.store.record_run(run_id, run.to_payload())
        metrics = archive_metrics()
        if metrics is not None:
            metrics.runs_archived.inc()
        return run

    def archive_run(
        self,
        spec: PropertySpec,
        size: int = 8,
        num_threads: int = 4,
        seed: int = 0,
        params: Optional[dict] = None,
        severity_scale: Optional[float] = None,
        faults=None,
        time_budget: Optional[float] = None,
    ) -> ArchivedRun:
        """Execute a property function and archive its trace.

        ``severity_scale`` applies :meth:`PropertySpec.scaled_params`
        before any explicit ``params`` overrides -- the knob the CI
        gate demo uses to manufacture a severity regression.
        """
        base = (
            spec.scaled_params(severity_scale)
            if severity_scale is not None
            else dict(spec.default_params)
        )
        if params:
            base.update(params)
        run = spec.run(
            size=size,
            num_threads=num_threads,
            seed=seed,
            params=base,
            faults=faults,
            time_budget=time_budget,
        )
        transport = getattr(run, "transport", None)
        plan_dict = None
        if faults is not None:
            plan = getattr(faults, "plan", faults)
            to_dict = getattr(plan, "to_dict", None)
            plan_dict = to_dict() if to_dict is not None else None
        return self.record(
            program=spec.name,
            events=run.events,
            final_time=run.final_time,
            paradigm=spec.paradigm,
            params=params_to_jsonable(base),
            size=size,
            threads=num_threads,
            seed=seed,
            plan=plan_dict,
            eager_threshold=(
                transport.eager_threshold if transport is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # history
    # ------------------------------------------------------------------

    def history(self) -> List[ArchivedRun]:
        """Every manifest record in first-recorded order."""
        return [
            ArchivedRun.from_payload(run_id, payload)
            for run_id, payload in self.store.load_manifest().items()
        ]

    def resolve(self, ref: str) -> ArchivedRun:
        """Look up a run by id or unique id prefix."""
        manifest = self.store.load_manifest()
        if ref in manifest:
            return ArchivedRun.from_payload(ref, manifest[ref])
        matches = [rid for rid in manifest if rid.startswith(ref)]
        if len(matches) == 1:
            return ArchivedRun.from_payload(
                matches[0], manifest[matches[0]]
            )
        if not matches:
            raise ArchiveError(
                f"archive {self.root}: no run {ref!r} "
                f"({len(manifest)} runs; see 'ats history')"
            )
        raise ArchiveError(
            f"archive {self.root}: ambiguous run prefix {ref!r} "
            f"(matches {', '.join(sorted(matches))})"
        )

    # ------------------------------------------------------------------
    # analysis (cached)
    # ------------------------------------------------------------------

    def analyze(
        self,
        run: Union[str, ArchivedRun],
        detectors: Optional[Sequence] = None,
        config: Optional[AnalysisConfig] = None,
        stats: Optional[CacheStats] = None,
    ) -> AnalysisResult:
        """Cached analysis of one archived run (see :mod:`.cache`)."""
        if isinstance(run, str):
            run = self.resolve(run)
        return analyze_archived(
            self.store,
            run.to_payload(),
            detectors=detectors,
            config=config,
            stats=stats,
        )

    def analyze_many(
        self,
        runs: Optional[Sequence[Union[str, ArchivedRun]]] = None,
        detectors: Optional[Sequence] = None,
        stats: Optional[CacheStats] = None,
        parallel: bool = False,
        max_workers: int = 8,
    ) -> Dict[str, AnalysisResult]:
        """Batch analysis; optionally fanned out over the worker pool.

        ``runs`` defaults to the whole history.  Results come back as
        ``run_id -> AnalysisResult`` in run order either way --
        parallel mode only overlaps the blob I/O/decompression, the
        outputs are identical to serial.
        """
        resolved = [
            self.resolve(r) if isinstance(r, str) else r
            for r in (self.history() if runs is None else runs)
        ]

        def task(run: ArchivedRun):
            return analyze_archived(
                self.store,
                run.to_payload(),
                detectors=detectors,
                stats=stats,
            )

        if parallel and len(resolved) > 1:
            results = run_host_tasks(
                [lambda run=run: task(run) for run in resolved],
                max_workers=max_workers,
            )
        else:
            results = [task(run) for run in resolved]
        return {
            run.run_id: result
            for run, result in zip(resolved, results)
        }

    # ------------------------------------------------------------------
    # diffing
    # ------------------------------------------------------------------

    def diff(
        self,
        before: Union[str, ArchivedRun],
        after: Union[str, ArchivedRun],
        threshold: float = 0.01,
        stats: Optional[CacheStats] = None,
    ) -> ComparisonReport:
        """Cross-run regression diff (cached analyses on both sides)."""
        return compare_analyses(
            self.analyze(before, stats=stats),
            self.analyze(after, stats=stats),
            threshold=threshold,
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export_trace(
        self, run: Union[str, ArchivedRun], path: Union[str, Path]
    ) -> Path:
        """Write a run's trace blob back out as a readable trace file.

        A ``.gz`` destination gets the deterministic gzip encoding;
        anything else gets plain JSONL.  Either way the file round-trips
        through :func:`repro.trace.read_trace`.
        """
        if isinstance(run, str):
            run = self.resolve(run)
        data = self.store.get_blob(run.trace_digest)
        path = Path(path)
        if path.suffix == ".gz":
            path.write_bytes(gzip_bytes(data))
        else:
            path.write_bytes(data)
        return path

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "Archive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def coerce_archive(
    archive: Union[None, str, Path, "Archive"],
) -> Optional["Archive"]:
    """Accept an archive or a directory path; ``None`` stays ``None``."""
    if archive is None or isinstance(archive, Archive):
        return archive
    return Archive(archive)


def history_to_json_str(runs: Sequence[ArchivedRun]) -> str:
    payload = {
        "format": "ats-archive-history",
        "version": 1,
        "runs": [
            dict(run.to_payload(), run_id=run.run_id) for run in runs
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def format_history(runs: Sequence[ArchivedRun]) -> str:
    """History as a fixed-width table (``ats history``)."""
    lines = [
        f"{'run':<13}{'program':<34}{'kind':>7}{'size':>6}{'thr':>5}"
        f"{'seed':>6}{'events':>8}{'vtime':>10}  trace"
    ]
    for run in runs:
        kind = "faulty" if run.plan else run.paradigm or "-"
        lines.append(
            f"{run.run_id:<13}{run.program:<34}{kind:>7}{run.size:>6}"
            f"{run.threads:>5}{run.seed:>6}{run.events:>8}"
            f"{run.final_time:>10.4f}  {run.trace_digest[:12]}"
        )
    lines.append(f"{len(runs)} archived run(s)")
    return "\n".join(lines) + "\n"
