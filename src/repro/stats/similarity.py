"""Pairwise distance, clustering and cluster quality -- pure stdlib.

Deterministic by construction: every algorithm is a pure function of
the distance matrix with fixed, index-based tie-breaking, so the same
feature matrix clusters identically in any process, worker pool or
fork topology.  The ``seed`` on k-medoids varies only the *order* in
which the PAM swap phase examines candidates (splitmix-derived, never
host entropy), which can matter when two swaps improve cost equally;
the default seed 0 is what every shipped detector uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..simkernel.rng import Lcg64, derive_seed


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def manhattan(a: Sequence[float], b: Sequence[float]) -> float:
    return sum(abs(x - y) for x, y in zip(a, b))


METRICS: Dict[str, Callable] = {
    "euclidean": euclidean,
    "manhattan": manhattan,
}


def metric_fn(name: str) -> Callable:
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown distance metric {name!r} "
            f"(have: {', '.join(sorted(METRICS))})"
        ) from None


def pairwise_distances(
    rows: Sequence[Sequence[float]], metric: str = "euclidean"
) -> List[List[float]]:
    """Full symmetric distance matrix over the row vectors."""
    fn = metric_fn(metric)
    n = len(rows)
    dist = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = fn(rows[i], rows[j])
            dist[i][j] = d
            dist[j][i] = d
    return dist


# ----------------------------------------------------------------------
# k-medoids (PAM with farthest-first initialization)
# ----------------------------------------------------------------------

def _assign(dist: List[List[float]], medoids: Sequence[int]) -> List[int]:
    """Nearest-medoid label per point; ties go to the earlier medoid."""
    labels = []
    for i in range(len(dist)):
        best = 0
        best_d = dist[i][medoids[0]]
        for m_idx in range(1, len(medoids)):
            d = dist[i][medoids[m_idx]]
            if d < best_d:
                best_d = d
                best = m_idx
        labels.append(best)
    return labels


def _cost(dist: List[List[float]], medoids: Sequence[int]) -> float:
    return sum(
        min(dist[i][m] for m in medoids) for i in range(len(dist))
    )


def kmedoids(
    dist: List[List[float]],
    k: int,
    seed: int = 0,
    max_iter: int = 64,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """PAM k-medoids over a distance matrix.

    Returns ``(labels, medoids)`` where ``labels[i]`` is the cluster
    index of point ``i`` and ``medoids`` the chosen exemplar points.
    Initialization is deterministic (most-central point first, then
    farthest-first); the swap phase greedily applies the best
    cost-reducing (medoid, candidate) exchange until none remains.
    """
    n = len(dist)
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n)
    if n == 0:
        return (), ()
    # most central point, then farthest-first coverage
    medoids = [min(range(n), key=lambda i: (sum(dist[i]), i))]
    while len(medoids) < k:
        medoids.append(
            max(
                range(n),
                key=lambda i: (min(dist[i][m] for m in medoids), -i),
            )
        )
    rng = Lcg64(derive_seed(seed, n))
    cost = _cost(dist, medoids)
    for _ in range(max_iter):
        candidates = [i for i in range(n) if i not in medoids]
        # seed-rotated examination order; the *best* swap wins, so the
        # rotation only breaks exact cost ties
        offset = rng.randrange(len(candidates)) if candidates else 0
        best_swap = None
        best_cost = cost
        for slot in range(len(medoids)):
            for c_idx in range(len(candidates)):
                candidate = candidates[(c_idx + offset) % len(candidates)]
                trial = list(medoids)
                trial[slot] = candidate
                trial_cost = _cost(dist, trial)
                if trial_cost < best_cost - 1e-12:
                    best_cost = trial_cost
                    best_swap = (slot, candidate)
        if best_swap is None:
            break
        medoids[best_swap[0]] = best_swap[1]
        cost = best_cost
    order = sorted(range(len(medoids)), key=lambda s: medoids[s])
    medoids = [medoids[s] for s in order]
    return tuple(_assign(dist, medoids)), tuple(medoids)


# ----------------------------------------------------------------------
# hierarchical single-link
# ----------------------------------------------------------------------

def single_link(
    dist: List[List[float]], k: int
) -> Tuple[int, ...]:
    """Agglomerative single-linkage clustering cut at ``k`` clusters.

    Repeatedly merges the two clusters with the smallest minimum
    inter-point distance (ties: lowest member indices) until ``k``
    remain; labels are renumbered by each cluster's smallest member.
    """
    n = len(dist)
    if k < 1:
        raise ValueError("k must be >= 1")
    clusters: List[List[int]] = [[i] for i in range(n)]
    while len(clusters) > k:
        best = None
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                d = min(
                    dist[i][j]
                    for i in clusters[a]
                    for j in clusters[b]
                )
                key = (d, clusters[a][0], clusters[b][0])
                if best is None or key < best[0]:
                    best = (key, a, b)
        _, a, b = best
        clusters[a].extend(clusters[b])
        clusters[a].sort()
        del clusters[b]
    clusters.sort(key=lambda c: c[0])
    labels = [0] * n
    for label, members in enumerate(clusters):
        for i in members:
            labels[i] = label
    return tuple(labels)


# ----------------------------------------------------------------------
# cluster quality
# ----------------------------------------------------------------------

def silhouette(
    dist: List[List[float]], labels: Sequence[int]
) -> float:
    """Mean silhouette coefficient of a labeling, in [-1, 1].

    Points in singleton clusters score 0 (the standard convention); a
    degenerate labeling (one cluster, or all-zero distances) scores 0,
    which reads as "no separation" -- exactly what the detectors gate
    on.
    """
    n = len(labels)
    if n < 2 or len(set(labels)) < 2:
        return 0.0
    members: Dict[int, List[int]] = {}
    for i, label in enumerate(labels):
        members.setdefault(label, []).append(i)
    total = 0.0
    for i in range(n):
        own = members[labels[i]]
        if len(own) == 1:
            continue
        a = sum(dist[i][j] for j in own if j != i) / (len(own) - 1)
        b = min(
            sum(dist[i][j] for j in other) / len(other)
            for label, other in sorted(members.items())
            if label != labels[i]
        )
        denom = max(a, b)
        if denom > 0.0:
            total += (b - a) / denom
    return total / n


@dataclass(frozen=True)
class ClusterAssignment:
    """One clustering of a feature matrix's rows."""

    method: str
    metric: str
    k: int
    labels: Tuple[int, ...]
    medoids: Tuple[int, ...]
    silhouette: float

    def members(self, label: int) -> Tuple[int, ...]:
        return tuple(
            i for i, lab in enumerate(self.labels) if lab == label
        )

    def sizes(self) -> Tuple[int, ...]:
        counts: Dict[int, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return tuple(counts[label] for label in sorted(counts))


def cluster_rows(
    rows: Sequence[Sequence[float]],
    k: int = 2,
    metric: str = "euclidean",
    method: str = "kmedoids",
    seed: int = 0,
) -> ClusterAssignment:
    """Cluster normalized feature rows; the detectors' entry point."""
    dist = pairwise_distances(rows, metric)
    if method == "kmedoids":
        labels, medoids = kmedoids(dist, k, seed=seed)
    elif method == "single_link":
        labels = single_link(dist, k)
        medoids = ()
    else:
        raise ValueError(
            f"unknown clustering method {method!r} "
            "(have: kmedoids, single_link)"
        )
    return ClusterAssignment(
        method=method,
        metric=metric,
        k=k,
        labels=labels,
        medoids=medoids,
        silhouette=silhouette(dist, labels),
    )
