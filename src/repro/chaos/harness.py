"""The chaos harness: run a real service under a fault plan, assert
the crash-safety invariants.

One :func:`run_chaos` call is a full crash/recover cycle against a
**real** ``ats serve`` subprocess:

1. start the server with ``--state-dir`` (durable mode); injected
   faults ride in via the ``ATS_CHAOS`` environment variable;
2. submit a seeded workload (property runs + a validation campaign)
   and record which job ids the service *acknowledged*;
3. apply the plan's external faults -- SIGKILL once ``/status`` shows
   enough resolved jobs, then optional file surgery tearing the
   journal tail;
4. restart with ``--recover`` (chaos disarmed -- faults are one-shot,
   pre-crash) and wait for every acknowledged job to reach a terminal
   state;
5. assert the invariants:

   * **no acknowledged job lost** -- every acknowledged id answers on
     ``GET /jobs/<id>`` after the restart and reaches a terminal
     state;
   * **no archive corruption** -- the manifest journal loads and every
     referenced trace blob decompresses to its recorded digest;
   * **recovery determinism** -- the recovered campaign result is
     byte-identical (canonical JSON, live ``progress`` block excluded)
     to an uninterrupted in-process baseline run, whenever the plan
     contains no result-perturbing IO faults;
   * **metrics consistency** -- ``/metrics`` parses, reports journal
     activity, and ``/status`` stays structurally sound.

Everything is seeded: the same ``(seed, index)`` reproduces the same
plan, the same workload, and the same fault points (the injector's
call-site counters are deterministic given the workload).
:func:`run_chaos_battery` runs :func:`~repro.chaos.spec.mixed_plans`
and aggregates a :class:`ChaosReport` -- the acceptance gate is a
battery with zero violations.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..simkernel.rng import Lcg64
from .spec import (
    ArchiveWriteFault,
    ChaosPlan,
    JournalWriteFault,
    KillServer,
    TornJournalTail,
    mixed_plans,
)

__all__ = [
    "ChaosReport",
    "ChaosRunResult",
    "run_chaos",
    "run_chaos_battery",
]

#: fast, deterministic workload properties (small sims).
WORKLOAD_PROPERTIES = (
    "balanced_omp_loop",
    "balanced_omp_region",
    "early_gather",
)

_WORKLOAD_SIZE = 6
_WORKLOAD_THREADS = 2


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _strip_progress(result: Optional[dict]) -> Optional[dict]:
    if not isinstance(result, dict):
        return result
    return {k: v for k, v in result.items() if k != "progress"}


# ----------------------------------------------------------------------
# the supervised server subprocess
# ----------------------------------------------------------------------

class _ServerProc:
    """One ``ats serve`` subprocess with captured output."""

    def __init__(self, argv: List[str], env: dict, log_path: Path):
        self.log_path = log_path
        self.proc = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self._lines: List[str] = []
        self._lock = threading.Lock()
        self._reader = threading.Thread(
            target=self._pump, name="chaos-server-log", daemon=True
        )
        self._reader.start()

    def _pump(self) -> None:
        assert self.proc.stdout is not None
        with open(self.log_path, "a", encoding="utf-8") as log:
            for line in self.proc.stdout:
                log.write(line)
                log.flush()
                with self._lock:
                    self._lines.append(line)

    def wait_url(self, deadline: float) -> Optional[str]:
        """The advertised base URL, or None on timeout/early death."""
        while time.monotonic() < deadline:
            with self._lock:
                for line in self._lines:
                    if "listening on " in line:
                        return (
                            line.split("listening on ", 1)[1]
                            .split()[0]
                        )
            if self.proc.poll() is not None:
                return None
            time.sleep(0.02)
        return None

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL -- the crash under test, no cleanup of any kind."""
        if self.alive():
            self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout: float = 30.0) -> Optional[int]:
        """SIGTERM and wait: the graceful drain-then-exit path."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            return None

    def tail(self, n: int = 12) -> str:
        with self._lock:
            return "".join(self._lines[-n:])


def _server_argv(
    archive: Path, state: Path, recover: bool
) -> List[str]:
    argv = [
        sys.executable,
        "-u",
        "-c",
        "import sys; from repro.cli import main; "
        "sys.exit(main(sys.argv[1:]))",
        "serve",
        "--archive", str(archive),
        "--state-dir", str(state),
        "--port", "0",
        "--workers", "4",
    ]
    if recover:
        argv.append("--recover")
    return argv


def _server_env(plan: Optional[ChaosPlan]) -> dict:
    from .inject import ENV_VAR

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src + (os.pathsep + existing if existing else "")
    )
    env.pop(ENV_VAR, None)
    if plan is not None and plan.injected_faults:
        env[ENV_VAR] = json.dumps(
            ChaosPlan(plan.injected_faults, seed=plan.seed).to_dict()
        )
    return env


def _client(url: str):
    from ..service.client import ServiceClient

    # generous retries: the harness's own polls must ride through the
    # restart window and any DropConnection faults.
    return ServiceClient(url, timeout=30.0, retries=6)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------

@dataclass
class ChaosRunResult:
    """One crash/recover cycle's verdict."""

    index: int
    seed: int
    plan: str
    violations: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    acknowledged: int = 0
    recovered_states: Dict[str, str] = field(default_factory=dict)
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "plan": self.plan,
            "ok": self.ok,
            "violations": list(self.violations),
            "notes": list(self.notes),
            "acknowledged": self.acknowledged,
            "recovered_states": dict(self.recovered_states),
            "duration": self.duration,
        }


@dataclass
class ChaosReport:
    """A battery of chaos runs."""

    seed: int
    results: List[ChaosRunResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[ChaosRunResult]:
        return [r for r in self.results if not r.ok]

    def to_dict(self) -> dict:
        return {
            "format": "ats-chaos-report",
            "seed": self.seed,
            "runs": len(self.results),
            "ok": self.ok,
            "results": [r.to_dict() for r in self.results],
        }

    def format(self) -> str:
        lines = [
            f"chaos battery: seed {self.seed}, "
            f"{len(self.results)} run(s), "
            + ("ALL INVARIANTS HELD" if self.ok
               else f"{len(self.failures)} FAILED"),
        ]
        for r in self.results:
            mark = "ok  " if r.ok else "FAIL"
            lines.append(
                f"  [{mark}] run {r.index}: {r.plan} "
                f"({r.acknowledged} acked, {r.duration:.1f}s)"
            )
            for v in r.violations:
                lines.append(f"         violation: {v}")
            for n in r.notes:
                lines.append(f"         note: {n}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the workload
# ----------------------------------------------------------------------

def _workload_params(plan: ChaosPlan) -> Tuple[int, list]:
    """Deterministic workload derived from the plan seed.

    Returns ``(campaign_seed, run_specs)`` where each run spec is a
    ``(property, seed)`` pair.
    """
    rng = Lcg64(plan.seed)
    base = rng.randrange(10_000)
    runs = [
        (prop, base + i)
        for i, prop in enumerate(WORKLOAD_PROPERTIES)
    ]
    return base, runs


def _submit_workload(
    client, plan: ChaosPlan, result: ChaosRunResult
) -> Dict[str, str]:
    """Submit runs + campaign; returns ``job_id -> label`` for every
    submission the service acknowledged."""
    base, runs = _workload_params(plan)
    acked: Dict[str, str] = {}

    def _submit(label, fn):
        try:
            response = fn()
        except Exception as exc:  # noqa: BLE001 - fault-injected I/O
            result.notes.append(
                f"submission {label} not acknowledged: "
                f"{type(exc).__name__}"
            )
            return
        job_id = response.get("job")
        if job_id:
            acked[job_id] = label

    for prop, seed in runs:
        _submit(
            f"run:{prop}",
            lambda prop=prop, seed=seed: client.submit_run(
                prop,
                size=_WORKLOAD_SIZE,
                threads=_WORKLOAD_THREADS,
                seed=seed,
            ),
        )
    _submit(
        "campaign",
        lambda: client.campaign(
            properties=list(WORKLOAD_PROPERTIES),
            size=_WORKLOAD_SIZE,
            threads=_WORKLOAD_THREADS,
            seed=base,
        ),
    )
    result.acknowledged = len(acked)
    return acked


def _baseline_results(plan: ChaosPlan, scratch: Path) -> dict:
    """Uninterrupted in-process reference results for the workload.

    label -> result dict (``progress`` stripped) -- the byte-identity
    oracle the recovered service is compared against.
    """
    from ..archive import Archive
    from ..service.server import AnalysisService

    base, runs = _workload_params(plan)
    service = AnalysisService(
        Archive(scratch / "baseline-archive"), max_workers=2
    )
    out: Dict[str, dict] = {}
    try:
        jobs = []
        for prop, seed in runs:
            job, _ = service.submit(
                "run",
                {
                    "property": prop,
                    "size": _WORKLOAD_SIZE,
                    "threads": _WORKLOAD_THREADS,
                    "seed": seed,
                },
            )
            jobs.append((f"run:{prop}", job))
        job, _ = service.submit(
            "campaign",
            {
                "properties": list(WORKLOAD_PROPERTIES),
                "size": _WORKLOAD_SIZE,
                "threads": _WORKLOAD_THREADS,
                "seed": base,
            },
        )
        jobs.append(("campaign", job))
        for label, job in jobs:
            if not job.wait(120):
                raise RuntimeError(f"baseline {label} did not finish")
            if job.state != "done":
                raise RuntimeError(
                    f"baseline {label} failed: {job.error}"
                )
            out[label] = _strip_progress(job.result)
    finally:
        service.close()
    return out


# ----------------------------------------------------------------------
# external faults
# ----------------------------------------------------------------------

def _await_kill_point(
    client, fault: KillServer, acked: Dict[str, str], deadline: float
) -> None:
    """Block until ``after_resolved`` jobs resolved -- or progress
    stalls (a stuck cell can make the threshold unreachable; killing
    early is always a valid crash point)."""
    sub_deadline = min(deadline, time.monotonic() + 30.0)
    last_resolved = -1
    last_change = time.monotonic()
    while time.monotonic() < sub_deadline:
        try:
            status = client.status()
        except Exception:  # noqa: BLE001 - server may be wedged
            return
        counts = status.get("counts", {})
        resolved = counts.get("done", 0) + counts.get("failed", 0)
        if resolved >= fault.after_resolved:
            return
        if acked and resolved >= len(acked):
            return
        now = time.monotonic()
        if resolved != last_resolved:
            last_resolved = resolved
            last_change = now
        elif now - last_change > 5.0:
            return
        time.sleep(0.05)


def _tear_journal_tail(state: Path, fault: TornJournalTail) -> str:
    """Cut bytes off the journal tail (never into the header line)."""
    journal = state / "jobs.jsonl"
    try:
        raw = journal.read_bytes()
    except OSError as exc:
        return f"torn-tail skipped: {exc}"
    header_end = raw.find(b"\n") + 1
    if header_end <= 0 or len(raw) <= header_end:
        return "torn-tail skipped: journal has no records"
    new_size = max(header_end, len(raw) - fault.drop_bytes)
    with open(journal, "r+b") as fh:
        fh.truncate(new_size)
    return (
        f"tore {len(raw) - new_size} byte(s) off the journal tail"
    )


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------

def _await_terminal(
    client,
    acked: Dict[str, str],
    result: ChaosRunResult,
    deadline: float,
) -> Dict[str, dict]:
    """Poll every acknowledged job to a terminal state."""
    from ..service.jobs import TERMINAL_STATES

    final: Dict[str, dict] = {}
    pending = dict(acked)
    while pending and time.monotonic() < deadline:
        for job_id in list(pending):
            try:
                payload = client.job(job_id)
            except Exception as exc:  # noqa: BLE001
                result.violations.append(
                    f"acknowledged job lost: {pending[job_id]} "
                    f"({job_id}) -> {exc}"
                )
                del pending[job_id]
                continue
            if payload.get("state") in TERMINAL_STATES:
                final[job_id] = payload
                result.recovered_states[acked[job_id]] = (
                    payload["state"]
                )
                del pending[job_id]
        if pending:
            time.sleep(0.1)
    for job_id, label in pending.items():
        result.violations.append(
            f"acknowledged job never reached a terminal state: "
            f"{label} ({job_id})"
        )
    return final


def _check_archive(archive: Path, result: ChaosRunResult) -> None:
    """Manifest loads; every referenced trace blob digest-checks."""
    from ..archive import ArchiveError
    from ..archive.store import ArchiveStore

    try:
        store = ArchiveStore(archive)
    except Exception as exc:  # noqa: BLE001
        result.violations.append(f"archive corrupt: {exc}")
        return
    try:
        manifest = store.load_manifest()
        checked = 0
        for run_id, payload in manifest.items():
            digest = payload.get("trace_digest")
            if not digest:
                continue
            try:
                store.get_blob(digest)
                checked += 1
            except ArchiveError as exc:
                result.violations.append(
                    f"archive corrupt: run {run_id}: {exc}"
                )
        result.notes.append(
            f"archive scrub: {checked} blob(s) verified"
        )
    except Exception as exc:  # noqa: BLE001
        result.violations.append(f"archive corrupt: {exc}")
    finally:
        store.close()


def _check_results(
    plan: ChaosPlan,
    baseline: dict,
    final: Dict[str, dict],
    acked: Dict[str, str],
    result: ChaosRunResult,
) -> None:
    """Recovered results vs the uninterrupted baseline.

    Byte-identity only applies when the plan carried no IO faults that
    legitimately perturb results (a quarantined cell from an injected
    ENOSPC *should* change the campaign report -- visibly).
    """
    perturbing = tuple(
        f for f in plan.faults
        if isinstance(f, (ArchiveWriteFault, JournalWriteFault))
    )
    if perturbing:
        result.notes.append(
            "byte-identity skipped: plan carries "
            + " + ".join(f.kind for f in perturbing)
        )
        return
    compared = 0
    for job_id, payload in final.items():
        label = acked[job_id]
        expected = baseline.get(label)
        if expected is None:
            continue
        if payload.get("state") != "done":
            result.violations.append(
                f"{label} ({job_id}) ended {payload.get('state')!r} "
                f"under a non-perturbing plan: {payload.get('error')}"
            )
            continue
        got = _strip_progress(payload.get("result"))
        if _canonical(got) != _canonical(expected):
            result.violations.append(
                f"recovery divergence: {label} ({job_id}) result "
                "differs from the uninterrupted baseline"
            )
        else:
            compared += 1
    result.notes.append(
        f"byte-identity: {compared} result(s) matched baseline"
    )


def _check_metrics(client, result: ChaosRunResult) -> None:
    """/metrics parses and reflects the durable path; /status sane."""
    from ..service.jobs import JOB_STATES

    try:
        text = client.metrics()
    except Exception as exc:  # noqa: BLE001
        result.violations.append(f"/metrics unavailable: {exc}")
        return
    values: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        try:
            name, value = line.rsplit(" ", 1)
            values[name] = float(value)
        except ValueError:
            result.violations.append(
                f"/metrics line does not parse: {line!r}"
            )
            return
    if not any(
        name.startswith("ats_service_journal_records_total")
        for name in values
    ):
        result.violations.append(
            "/metrics is missing ats_service_journal_records_total "
            "on a durable service"
        )
    try:
        status = client.status()
    except Exception as exc:  # noqa: BLE001
        result.violations.append(f"/status unavailable: {exc}")
        return
    if not status.get("durable"):
        result.violations.append(
            "/status does not report durable mode"
        )
    for state in status.get("jobs_by_state", {}):
        if state not in JOB_STATES:
            result.violations.append(
                f"/status reports unknown job state {state!r}"
            )


# ----------------------------------------------------------------------
# the harness proper
# ----------------------------------------------------------------------

def run_chaos(
    plan: ChaosPlan,
    workdir: Union[str, Path],
    index: int = 0,
    timeout: float = 180.0,
) -> ChaosRunResult:
    """One full crash/recover cycle under ``plan`` (see module doc).

    ``workdir`` must be an empty/fresh scratch directory; the caller
    owns cleanup (``ats chaos`` keeps it on failure or ``--keep``).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    archive = workdir / "archive"
    state = workdir / "state"
    log = workdir / "server.log"

    result = ChaosRunResult(
        index=index, seed=plan.seed, plan=plan.describe()
    )
    t0 = time.monotonic()
    deadline = t0 + timeout
    kill_faults = [
        f for f in plan.faults if isinstance(f, KillServer)
    ]
    tear_faults = [
        f for f in plan.faults if isinstance(f, TornJournalTail)
    ]

    baseline = _baseline_results(plan, workdir)

    # --- incarnation 1: faults armed ---------------------------------
    server = _ServerProc(
        _server_argv(archive, state, recover=False),
        _server_env(plan),
        log,
    )
    acked: Dict[str, str] = {}
    try:
        url = server.wait_url(deadline)
        if url is None:
            result.violations.append(
                "server failed to start: " + server.tail()
            )
            return result
        client = _client(url)
        acked = _submit_workload(client, plan, result)
        if not acked:
            result.violations.append(
                "no submission was acknowledged; nothing to test"
            )
            return result
        if kill_faults:
            _await_kill_point(client, kill_faults[0], acked, deadline)
            server.kill()
            result.notes.append("SIGKILL delivered")
        else:
            code = server.terminate()
            result.notes.append(f"SIGTERM exit code {code}")
            if code != 0:
                result.violations.append(
                    f"graceful shutdown exited {code}"
                )
    finally:
        server.kill()

    for fault in tear_faults:
        result.notes.append(_tear_journal_tail(state, fault))

    # --- incarnation 2: recovery, chaos disarmed ---------------------
    # fresh budget: a wedged first incarnation must not starve the
    # recovery assertions of wall-clock.
    deadline = time.monotonic() + timeout
    server = _ServerProc(
        _server_argv(archive, state, recover=True),
        _server_env(None),
        log,
    )
    try:
        url = server.wait_url(deadline)
        if url is None:
            result.violations.append(
                "recovery failed to start: " + server.tail()
            )
            return result
        client = _client(url)
        final = _await_terminal(client, acked, result, deadline)
        _check_results(plan, baseline, final, acked, result)
        _check_metrics(client, result)
        code = server.terminate()
        if code != 0:
            result.violations.append(
                f"post-recovery shutdown exited {code}"
            )
    finally:
        server.kill()
        result.duration = time.monotonic() - t0

    _check_archive(archive, result)
    return result


def run_chaos_battery(
    seed: int = 0,
    runs: int = 5,
    workdir: Optional[Union[str, Path]] = None,
    timeout: float = 180.0,
    keep: bool = False,
    progress=None,
) -> ChaosReport:
    """Run ``runs`` seeded plans; aggregate into a :class:`ChaosReport`.

    ``progress`` (optional callable) receives each finished
    :class:`ChaosRunResult` -- the CLI streams the verdict lines.
    Scratch dirs for passing runs are removed unless ``keep``.
    """
    owned = workdir is None
    root = Path(
        tempfile.mkdtemp(prefix="ats-chaos-")
        if owned else workdir
    )
    root.mkdir(parents=True, exist_ok=True)
    report = ChaosReport(seed=seed)
    for index, plan in enumerate(mixed_plans(seed, runs)):
        rundir = root / f"run-{index:03d}"
        result = run_chaos(
            plan, rundir, index=index, timeout=timeout
        )
        report.results.append(result)
        if progress is not None:
            progress(result)
        if result.ok and not keep:
            shutil.rmtree(rundir, ignore_errors=True)
    if owned and report.ok and not keep:
        shutil.rmtree(root, ignore_errors=True)
    else:
        report_path = root / "chaos-report.json"
        report_path.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n",
            encoding="utf-8",
        )
    return report
