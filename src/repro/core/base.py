"""Base communication configuration (paper section 3.1.3).

``set_base_comm(type, cnt)`` sets the default buffer size "for MPI
communication used in the MPI property test programs", exactly as in
the paper.  Property functions allocate their buffers from this
configuration unless a specific size is required (e.g. the rendezvous
buffers of ``late_receiver``).
"""

from __future__ import annotations

from ..simmpi.buffers import MpiBuf, alloc_mpi_buf
from ..simmpi.datatypes import MPI_DOUBLE, Datatype

_DEFAULT_TYPE = MPI_DOUBLE
_DEFAULT_CNT = 256

_base_type: Datatype = _DEFAULT_TYPE
_base_cnt: int = _DEFAULT_CNT


def set_base_comm(type: Datatype, cnt: int) -> None:
    """Set the default datatype and element count for property buffers."""
    global _base_type, _base_cnt
    if cnt < 0:
        raise ValueError("base count must be non-negative")
    _base_type = type
    _base_cnt = cnt


def reset_base_comm() -> None:
    """Restore the built-in defaults (``MPI_DOUBLE`` x 256)."""
    set_base_comm(_DEFAULT_TYPE, _DEFAULT_CNT)


def base_type() -> Datatype:
    """The configured default datatype."""
    return _base_type


def base_cnt() -> int:
    """The configured default element count."""
    return _base_cnt


def alloc_base_buf(factor: int = 1) -> MpiBuf:
    """Allocate a buffer of ``factor`` times the base size."""
    return alloc_mpi_buf(_base_type, _base_cnt * factor)
