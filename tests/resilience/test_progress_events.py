"""Supervisor structured progress events (the live-dashboard feed)."""

from repro.resilience import PROGRESS_EVENTS, Supervisor
from repro.resilience.forked import run_cells_forked


def _collector():
    events = []
    return events, events.append


def _names(events):
    return [e["event"] for e in events]


# ----------------------------------------------------------------------
# serial lifecycle
# ----------------------------------------------------------------------

def test_ok_cell_emits_started_then_done():
    events, on_event = _collector()
    sup = Supervisor(on_event=on_event)
    sup.run_cell("cell-a", lambda: 41)
    assert _names(events) == ["cell-started", "cell-done"]
    started, done = events
    assert started["key"] == done["key"] == "cell-a"
    assert started["attempt"] == 1
    assert done["attempts"] == 1
    assert all(isinstance(e["ts"], float) for e in events)
    assert all(e["event"] in PROGRESS_EVENTS for e in events)


def test_retry_then_success_emits_retry_with_delay():
    events, on_event = _collector()
    sup = Supervisor(
        retries=2,
        transient=("crash",),
        backoff_base=0.0,
        sleep=lambda s: None,
        on_event=on_event,
    )
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 2:
            raise ValueError("transient")
        return "fine"

    outcome = sup.run_cell("cell-b", flaky)
    assert outcome.ok
    assert _names(events) == [
        "cell-started", "cell-retry", "cell-started", "cell-done",
    ]
    retry = events[1]
    assert retry["kind"] == "crash"
    assert retry["attempt"] == 1
    assert retry["delay"] == sup.backoff_delay("cell-b", 1)


def test_quarantine_emits_cell_quarantined_with_kind():
    events, on_event = _collector()
    sup = Supervisor(on_event=on_event)

    def bad():
        raise ValueError("persistent")

    outcome = sup.run_cell("cell-c", bad)
    assert not outcome.ok
    assert _names(events) == ["cell-started", "cell-quarantined"]
    assert events[1]["kind"] == "crash"
    assert events[1]["attempts"] == 1


def test_checkpoint_replay_emits_cell_resumed(tmp_path):
    journal = tmp_path / "cells.jsonl"
    first = Supervisor(checkpoint=journal)
    first.run_cell("cell-d", lambda: {"v": 7})
    first.journal.close()

    events, on_event = _collector()
    second = Supervisor(checkpoint=journal, on_event=on_event)
    outcome = second.run_cell("cell-d", lambda: {"v": 999})
    second.journal.close()
    assert outcome.from_checkpoint
    assert outcome.value == {"v": 7}
    assert _names(events) == ["cell-resumed"]
    assert events[0]["status"] == "ok"


# ----------------------------------------------------------------------
# journal byte-identity (events are purely additive)
# ----------------------------------------------------------------------

def _run_supervised(journal_path, on_event=None):
    sup = Supervisor(
        retries=1,
        transient=("crash",),
        backoff_base=0.0,
        sleep=lambda s: None,
        checkpoint=journal_path,
        on_event=on_event,
    )
    sup.run_cell("ok-cell", lambda: {"n": 1})

    def bad():
        raise ValueError("always")

    sup.run_cell("bad-cell", bad)
    sup.journal.close()


def test_journal_byte_identical_with_and_without_callback(tmp_path):
    without = tmp_path / "without.jsonl"
    with_cb = tmp_path / "with.jsonl"
    _run_supervised(without)
    events, on_event = _collector()
    _run_supervised(with_cb, on_event=on_event)
    assert events, "callback saw no events"
    assert with_cb.read_bytes() == without.read_bytes()


# ----------------------------------------------------------------------
# forked path
# ----------------------------------------------------------------------

def test_forked_cells_emit_started_and_done():
    events, on_event = _collector()
    sup = Supervisor(on_event=on_event)
    outcomes = run_cells_forked(
        [
            ("f-ok", lambda: {"x": 1}),
            ("f-bad", _forked_bad),
        ],
        workers=2,
        supervisor=sup,
        echo_output=False,
    )
    assert [o.ok for o in outcomes] == [True, False]
    names = _names(events)
    assert names.count("cell-started") == 2
    assert names.count("cell-done") == 1
    assert names.count("cell-quarantined") == 1
    keys = {e["key"] for e in events}
    assert keys == {"f-ok", "f-bad"}


def _forked_bad():
    raise ValueError("forked failure")
