"""The incremental analysis cache: ``analyze_archived``.

Analysis of an archived run is memoized at **detector-cell**
granularity: one cached blob per ``(trace digest, detector
fingerprint)`` plus one per-trace *meta* cell (total time + location
list).  On a warm cache the trace blob is never even read -- the
result assembles from stored cells alone, which is what makes a full
re-analysis sweep near-pure lookups.  After a detector change, only
that detector's cells miss; every other cell (and the meta cell) still
hits, so re-analysis recomputes exactly the affected column of the
matrix.

Hits and misses are counted both into the caller-visible
:class:`CacheStats` accumulator and -- when :mod:`repro.obs` is
enabled -- the ``ats_archive_hits_total`` / ``ats_archive_misses_total``
metric families.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from ..analysis import AnalysisConfig, DEFAULT_DETECTORS, ANALYZER_VERSION
from ..analysis.index import TraceIndex
from ..analysis.model import AnalysisResult, Finding
from ..obs.instruments import archive_metrics
from ..trace.io import events_from_jsonl
from .codec import (
    findings_from_bytes,
    findings_to_bytes,
    meta_from_bytes,
    meta_to_bytes,
)
from .fingerprint import detector_fingerprint
from .store import ArchiveStore


class CacheStats:
    """Thread-safe hit/miss accumulator for one logical operation."""

    __slots__ = ("hits", "misses", "_lock")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def count(self, hit: bool, n: int = 1) -> None:
        with self._lock:
            if hit:
                self.hits += n
            else:
                self.misses += n

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def format(self) -> str:
        total = self.lookups
        rate = (self.hits / total) if total else 0.0
        return f"cache: {self.hits} hits, {self.misses} misses ({rate:.0%})"


def _count(stats: Optional[CacheStats], stage: str, hit: bool) -> None:
    if stats is not None:
        stats.count(hit)
    metrics = archive_metrics()
    if metrics is not None:
        family = metrics.hits if hit else metrics.misses
        family.labels(stage=stage).inc()


def meta_key(trace_digest: str) -> str:
    return f"meta|{trace_digest}|{ANALYZER_VERSION}"


def cell_key(trace_digest: str, det_fp: str) -> str:
    return f"findings|{trace_digest}|{det_fp}"


def analyze_archived(
    store: ArchiveStore,
    record: dict,
    detectors: Optional[Sequence] = None,
    config: Optional[AnalysisConfig] = None,
    stats: Optional[CacheStats] = None,
) -> AnalysisResult:
    """Analyze one manifest record, reusing every valid cached cell.

    ``record`` is the manifest payload of the run (see
    :class:`~repro.archive.api.ArchivedRun`); the analyzer
    configuration defaults to the run's recorded eager threshold, like
    a tool configured for the system the trace came from.  The result
    is byte-identical (canonical JSON) to a fresh
    ``analyze_events(events, total_time=record final time)`` over the
    stored trace, whether it was assembled from cache or computed.
    """
    detectors = DEFAULT_DETECTORS if detectors is None else detectors
    if config is None:
        eager = record.get("eager_threshold")
        config = (
            AnalysisConfig(eager_threshold=eager)
            if eager is not None
            else AnalysisConfig()
        )
    trace_digest = record["trace_digest"]

    cells: list[Optional[list[Finding]]] = []
    keys: list[str] = []
    for detector in detectors:
        key = cell_key(trace_digest, detector_fingerprint(detector, config))
        keys.append(key)
        blob = store.get_named(key)
        _count(stats, "detector", blob is not None)
        cells.append(None if blob is None else findings_from_bytes(blob))

    mkey = meta_key(trace_digest)
    meta_blob = store.get_named(mkey)
    _count(stats, "meta", meta_blob is not None)
    if meta_blob is not None:
        total_time, locations = meta_from_bytes(meta_blob)
    else:
        total_time, locations = record["final_time"], None

    if any(cell is None for cell in cells) or locations is None:
        events, _ = events_from_jsonl(
            store.get_blob(trace_digest).decode("utf-8"),
            label=f"<archive blob {trace_digest[:12]}>",
        )
        index = TraceIndex(events)
        for i, detector in enumerate(detectors):
            if cells[i] is None:
                found = list(detector.detect(index, config))
                store.put_named(keys[i], findings_to_bytes(found))
                cells[i] = found
        if locations is None:
            locations = list(index.locations)
            total_time = record["final_time"]
            store.put_named(mkey, meta_to_bytes(total_time, locations))

    findings: list[Finding] = []
    for cell in cells:
        findings.extend(cell)
    return AnalysisResult(
        findings=findings,
        total_time=total_time,
        locations=list(locations),
        comm_registry={},
    )
