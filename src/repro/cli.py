"""The ``ats`` command-line interface.

Subcommands::

    ats list                         list registered property functions
    ats run <property> [...]         run one property function
    ats chain [...]                  run the figure-3.3 all-MPI chain
    ats split [...]                  run the figure-3.4 split program
    ats generate <outdir>            emit standalone test programs
    ats analyze <trace>...           analyze persisted traces
    ats metrics [property]           run + dump runtime metrics
    ats matrix [...]                 run the validation matrix
    ats robustness [...]             detector TP/FP curves under faults
    ats suites                       print the chapter-2/4 catalog
    ats archive run|analyze|export   trace archive with cached analysis
    ats history                      list archived runs
    ats diff <runA> <runB>           cross-run regression diff (--gate)
    ats serve [...]                  analysis-as-a-service HTTP server
    ats submit <kind> [...]          submit a job to a running server
    ats watch --server URL           live terminal dashboard

Observability flags on the run-style commands (``run``/``chain``/
``split``) enable the :mod:`repro.obs` layer for that invocation:
``--metrics-out`` dumps the registry (Prometheus text or JSON),
``--chrome-trace`` writes a Perfetto-loadable trace-event file
combining the simulated timeline with host-side tool spans.

Expected operational errors -- a missing trace file, a corrupt header,
an unknown property or distribution name -- are reported as a single
``ats: error: ...`` line on stderr with exit status 2, never as a
traceback.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from typing import Optional, Sequence

from .analysis import analyze_events, analyze_run, format_expert_report
from .core import (
    get_property,
    list_properties,
    run_all_mpi_properties,
    run_split_program,
    write_generated_programs,
)
from .core.registry import DistParam
from .distributions import get_distribution, list_distributions
from .obs import (
    set_metrics_enabled,
    set_spans_enabled,
    to_json_str,
    to_prometheus,
    write_chrome_trace,
)
from .trace import (
    TraceFormatError,
    format_profile,
    profile_trace,
    read_trace,
    write_trace,
)
from .validation import format_catalog, run_validation_matrix


class CliError(Exception):
    """An expected user-facing failure: printed as one line, exit 2."""


def _suggest(name: str, candidates: Sequence[str]) -> str:
    """`` (did you mean X?)`` suffix when a close match exists."""
    close = difflib.get_close_matches(name, candidates, n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _resolve_property(name: str):
    """`get_property` with a CLI-grade error: suggestion, no dump."""
    try:
        return get_property(name)
    except KeyError:
        names = [s.name for s in list_properties(negative=None)]
        raise CliError(
            f"unknown property function {name!r}"
            + _suggest(name, names)
            + "; see 'ats list --all'"
        ) from None


def _parse_dist(text: str) -> tuple[str, Optional[tuple[float, ...]]]:
    """Parse a ``--dist SHAPE[:V1,V2,...]`` override."""
    shape, sep, raw = text.partition(":")
    shape = shape.strip()
    if not shape:
        raise CliError(f"bad --dist value {text!r}: empty shape name")
    try:
        get_distribution(shape)
    except KeyError:
        names = [d.name for d in list_distributions()]
        raise CliError(
            f"unknown distribution {shape!r}"
            + _suggest(shape, names)
            + f"; available: {', '.join(names)}"
        ) from None
    if not sep:
        return shape, None
    try:
        values = tuple(float(v) for v in raw.split(","))
    except ValueError:
        raise CliError(
            f"bad --dist value {text!r}: expected SHAPE:V1,V2,..."
        ) from None
    return shape, values


def _dist_override(spec, text: str) -> dict:
    """Build the params dict replacing the spec's distribution."""
    shape, values = _parse_dist(text)
    dist_keys = [
        key
        for key, value in spec.default_params.items()
        if isinstance(value, DistParam)
    ]
    if not dist_keys:
        raise CliError(
            f"property {spec.name!r} takes no distribution parameter"
        )
    key = dist_keys[0]
    if values is None:
        values = spec.default_params[key].values
    param = DistParam(shape, values)
    try:
        param.resolve()
    except TypeError:
        raise CliError(
            f"distribution {shape!r} does not take {len(values)} "
            f"value(s)"
        ) from None
    return {key: param}


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", type=int, default=8,
                        help="simulated MPI ranks (default 8)")
    parser.add_argument("--threads", type=int, default=4,
                        help="OpenMP threads per process (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeline", action="store_true",
                        help="print an ASCII timeline")
    parser.add_argument("--tree", action="store_true",
                        help="print the property hierarchy tree")
    parser.add_argument("--no-analyze", action="store_true",
                        help="skip the automatic analysis report")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the event trace to FILE")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="dump runtime metrics to FILE ('-' = stdout)")
    parser.add_argument("--metrics-format",
                        choices=("auto", "prom", "json"), default="auto",
                        help="metrics dump format (auto: .json file -> "
                        "JSON, otherwise Prometheus text)")
    parser.add_argument("--chrome-trace", metavar="FILE", default=None,
                        help="write a Perfetto/chrome://tracing trace "
                        "event file")


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--supervise", action="store_true",
                        help="run each sweep cell under the resilience "
                        "supervisor (implied by the flags below)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock limit per cell; timed-out cells "
                        "are quarantined")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="seed-deterministic retries for transient "
                        "(timed-out) cells")
    parser.add_argument("--checkpoint", metavar="FILE", default=None,
                        help="append-only journal of completed cells "
                        "(kill-safe; enables --resume)")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already recorded in the "
                        "--checkpoint journal")
    parser.add_argument("--failures-out", metavar="FILE", default=None,
                        help="write the quarantined-cell report as JSON "
                        "('-' = stdout)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="VSECONDS",
                        help="virtual-time watchdog per program run: "
                        "hung programs raise a structured HangReport")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fan sweep cells out over N forked worker "
                        "processes (output stays byte-identical to a "
                        "serial run)")


def _workers_of(args) -> int:
    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise CliError("--workers must be >= 1")
    if workers > 1:
        from .work.forkexec import fork_available

        if not fork_available():
            raise CliError(
                "--workers > 1 needs os.fork (POSIX); "
                "rerun with --workers 1"
            )
    return workers


def _make_supervisor(args):
    """Build the Supervisor the flags ask for, or None for direct mode."""
    from .resilience import CheckpointError, Supervisor

    checkpoint = args.checkpoint
    if args.resume and checkpoint is None:
        raise CliError("--resume requires --checkpoint FILE")
    if checkpoint is not None and not args.resume:
        from pathlib import Path

        if Path(checkpoint).exists():
            raise CliError(
                f"checkpoint {checkpoint} already exists; pass --resume "
                "to continue it or remove the file to start fresh"
            )
    if args.retries < 0:
        raise CliError("--retries must be >= 0")
    wanted = (
        args.supervise
        or checkpoint is not None
        or args.timeout is not None
        or args.retries > 0
        or args.failures_out is not None
    )
    if not wanted:
        return None
    try:
        return Supervisor(
            timeout=args.timeout,
            retries=args.retries,
            seed=args.seed,
            checkpoint=checkpoint,
        )
    except (ValueError, CheckpointError) as exc:
        raise CliError(str(exc)) from None


def _emit_failures(args, supervisor) -> None:
    """Print/write the quarantine report of a supervised sweep."""
    if supervisor is None:
        return
    report = supervisor.failure_report()
    if report.failures:
        print(report.format_table())
    if args.failures_out is not None:
        text = report.to_json_str()
        if args.failures_out == "-":
            sys.stdout.write(text)
        else:
            with open(args.failures_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"failure report written to {args.failures_out}")
    supervisor.close()


def _enable_obs(args) -> None:
    """Turn on the observability layer if any obs output was requested.

    Must run *before* the simulation is built: instruments bind to the
    registry when runtime objects are constructed.
    """
    if getattr(args, "metrics_out", None) is not None:
        set_metrics_enabled(True)
    if getattr(args, "chrome_trace", None) is not None:
        set_spans_enabled(True)


def _render_metrics(fmt: str, dest: str) -> str:
    if fmt == "auto":
        fmt = "json" if dest.endswith(".json") else "prom"
    return to_json_str() if fmt == "json" else to_prometheus()


def _emit_obs(args, result) -> None:
    """Write the requested metrics / Chrome-trace outputs.

    Called after analysis so analyzer timings are included in both.
    """
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        text = _render_metrics(args.metrics_format, metrics_out)
        if metrics_out == "-":
            sys.stdout.write(text)
        else:
            with open(metrics_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"metrics written to {metrics_out}")
    chrome_out = getattr(args, "chrome_trace", None)
    if chrome_out is not None:
        n = write_chrome_trace(
            chrome_out,
            events=result.events,
            metadata={"final_time": result.final_time},
        )
        print(f"chrome trace written to {chrome_out} ({n} trace events)")


def _report(result, args) -> None:
    print(
        f"finished in {result.final_time:.6f} simulated seconds "
        f"({len(result.events)} events)"
    )
    if args.timeline:
        print(result.timeline(width=100))
    if args.trace_out:
        write_trace(args.trace_out, result.events)
        print(f"trace written to {args.trace_out}")
    if not args.no_analyze:
        analysis = analyze_run(result)
        print(format_expert_report(analysis))
        if args.tree:
            from .analysis import format_property_tree

            print(format_property_tree(analysis, threshold=0.001))
    _emit_obs(args, result)


def cmd_list(args: argparse.Namespace) -> int:
    for spec in list_properties(
        paradigm=args.paradigm,
        negative=None if args.all else False,
    ):
        kind = "negative" if spec.negative else "positive"
        print(
            f"{spec.name:<34} [{spec.paradigm:>6}/{kind}] "
            f"{spec.description}"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    _enable_obs(args)
    spec = _resolve_property(args.property)
    params = _dist_override(spec, args.dist) if args.dist else None
    result = spec.run(
        size=args.size,
        num_threads=args.threads,
        seed=args.seed,
        params=params,
        time_budget=args.time_budget,
    )
    _report(result, args)
    return 0


def cmd_chain(args: argparse.Namespace) -> int:
    _enable_obs(args)
    result = run_all_mpi_properties(size=args.size, seed=args.seed)
    _report(result, args)
    return 0


def cmd_split(args: argparse.Namespace) -> int:
    _enable_obs(args)
    result = run_split_program(
        lower=args.lower.split(","),
        upper=args.upper.split(","),
        size=args.size,
        seed=args.seed,
    )
    _report(result, args)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    paths = write_generated_programs(args.outdir, paradigm=args.paradigm)
    for path in paths:
        print(path)
    print(f"{len(paths)} programs generated in {args.outdir}")
    return 0


def _expand_traces(patterns: Sequence[str]) -> list:
    """Expand ``ats analyze`` operands: files, directories, globs.

    A directory contributes its ``*.jsonl`` / ``*.jsonl.gz`` entries
    (sorted); a pattern with glob characters expands via ``glob`` --
    both fail loudly when they match nothing, a plain filename passes
    through so the missing-file error names it.
    """
    import glob as globmod
    from pathlib import Path

    suffixes = (".jsonl", ".jsonl.gz")
    paths: list = []
    for pattern in patterns:
        path = Path(pattern)
        if path.is_dir():
            found = sorted(
                p for p in path.iterdir()
                if p.is_file() and p.name.endswith(suffixes)
            )
            if not found:
                raise CliError(
                    f"no trace files (*.jsonl, *.jsonl.gz) in "
                    f"directory {pattern}"
                )
            paths.extend(found)
        elif any(ch in pattern for ch in "*?["):
            found = sorted(globmod.glob(pattern))
            if not found:
                raise CliError(f"no trace files match {pattern!r}")
            paths.extend(Path(p) for p in found)
        else:
            paths.append(path)
    return paths


def _analyze_one_trace(path, args) -> int:
    try:
        events, metadata = read_trace(
            path,
            skip_bad_lines=args.skip_bad_lines,
            salvage=args.salvage,
        )
    except FileNotFoundError:
        raise CliError(f"trace file not found: {path}") from None
    except IsADirectoryError:
        raise CliError(f"{path} is a directory, not a trace") from None
    except PermissionError:
        raise CliError(f"cannot read trace file: {path}") from None
    except TraceFormatError as exc:
        # already rendered as "path:line: message"
        raise CliError(str(exc)) from None
    skipped = metadata.get("skipped_lines", 0)
    if skipped:
        print(
            f"warning: skipped {skipped} corrupt trace line(s)",
            file=sys.stderr,
        )
    if metadata.get("truncated"):
        print(
            "warning: trace truncated mid-record; analyzing the "
            "salvaged prefix",
            file=sys.stderr,
        )
    if metadata:
        print(f"trace metadata: {metadata}")
    if not events:
        # A header-only trace is legal (a run that recorded nothing);
        # an empty profile/report table would just look broken.
        print("trace contains no event records; no findings")
        return 0
    if args.profile:
        print(format_profile(profile_trace(events)))
    result = analyze_events(events)
    print(format_expert_report(result, threshold=args.threshold))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Analyze one or many traces; exit status is the worst per-trace.

    With several traces each report is headed by its path, and a
    failing trace (missing, corrupt) is reported inline without
    aborting the rest of the batch.
    """
    paths = _expand_traces(args.traces)
    many = len(paths) > 1
    status = 0
    for i, path in enumerate(paths):
        if many:
            if i:
                print()
            print(f"== {path} ==")
        try:
            status = max(status, _analyze_one_trace(path, args))
        except CliError as exc:
            if not many:
                raise
            print(f"ats: error: {exc}", file=sys.stderr)
            status = max(status, 2)
    return status


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run one property with full observability on, dump the registry."""
    set_metrics_enabled(True)
    set_spans_enabled(True)
    spec = _resolve_property(args.property)
    result = spec.run(
        size=args.size, num_threads=args.threads, seed=args.seed
    )
    analyze_run(result)  # populate the analysis metric families too
    dest = args.out if args.out is not None else "-"
    text = _render_metrics(args.format, dest)
    if dest == "-":
        sys.stdout.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"metrics written to {dest}")
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    supervisor = _make_supervisor(args)
    matrix = run_validation_matrix(
        size=args.size,
        num_threads=args.threads,
        seed=args.seed,
        time_budget=args.time_budget,
        supervisor=supervisor,
        archive=args.archive,
        workers=_workers_of(args),
    )
    print(matrix.format_table())
    if args.archive is not None:
        print(f"runs archived in {args.archive}")
    _emit_failures(args, supervisor)
    return 0 if matrix.all_passed else 1


def _parse_families_arg(args):
    from .stats import parse_families

    try:
        return parse_families(args.families)
    except ValueError as exc:
        raise CliError(str(exc)) from None


def cmd_robustness(args: argparse.Namespace) -> int:
    """Sweep fault magnitude, print per-detector TP/FP curves."""
    from .validation import DEFAULT_MAGNITUDES, run_robustness

    families = _parse_families_arg(args)
    specs = None
    if args.program:
        specs = [_resolve_property(name) for name in args.program]
    if args.magnitudes:
        try:
            magnitudes = tuple(
                float(m) for m in args.magnitudes.split(",")
            )
        except ValueError:
            raise CliError(
                f"bad --magnitudes value {args.magnitudes!r}: expected "
                "comma-separated numbers"
            ) from None
    else:
        magnitudes = DEFAULT_MAGNITUDES
    if args.seeds < 1:
        raise CliError("--seeds must be >= 1")
    supervisor = _make_supervisor(args)
    result = run_robustness(
        specs=specs,
        magnitudes=magnitudes,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        size=args.size,
        num_threads=args.threads,
        threshold=args.threshold,
        time_budget=args.time_budget,
        supervisor=supervisor,
        archive=args.archive,
        workers=_workers_of(args),
        families=families,
    )
    print(result.format_table())
    if args.archive is not None:
        print(f"runs archived in {args.archive}")
    if args.json is not None:
        text = result.to_json_str()
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"robustness curves written to {args.json}")
    _emit_failures(args, supervisor)
    return 0


# ----------------------------------------------------------------------
# scenario synthesis commands
# ----------------------------------------------------------------------

def _parse_csv(text: str, kind, option: str):
    try:
        return tuple(kind(part) for part in text.split(","))
    except ValueError:
        raise CliError(
            f"bad {option} value {text!r}: expected comma-separated "
            f"{kind.__name__} values"
        ) from None


def _load_campaign_spec(args):
    """Build the CampaignSpec from --spec FILE or the sampling flags."""
    import json

    from .synth import CampaignSpec, NoiseConfig, SynthError

    if args.spec is not None:
        try:
            with open(args.spec, encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError as exc:
            raise CliError(f"cannot read spec file: {exc}") from None
        except ValueError as exc:
            raise CliError(
                f"bad JSON in spec file {args.spec}: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise CliError(
                f"spec file {args.spec} must hold a JSON object"
            )
        if payload.get("format") == "ats-synth-campaign":
            # Re-running a campaign artifact reuses its embedded spec.
            payload = payload.get("spec", {})
        try:
            return CampaignSpec.from_dict(payload)
        except SynthError as exc:
            raise CliError(str(exc)) from None
    if not args.name:
        raise CliError("need a campaign NAME (or --spec FILE)")
    kwargs = dict(
        name=args.name,
        strategy=args.strategy,
        scenarios=args.scenarios,
        threads=args.threads,
        seed=args.seed,
        max_properties=args.max_properties,
        max_failures=args.max_failures,
        max_retries=getattr(args, "retries", 0),
        adversarial_rounds=args.adversarial_rounds,
        adversarial_top=args.adversarial_top,
    )
    if args.properties:
        kwargs["properties"] = tuple(args.properties.split(","))
    if args.skeletons:
        kwargs["skeletons"] = tuple(args.skeletons.split(","))
    if args.sizes:
        kwargs["sizes"] = _parse_csv(args.sizes, int, "--sizes")
    if args.bands:
        kwargs["bands"] = tuple(args.bands.split(","))
    if args.placements:
        kwargs["placements"] = tuple(args.placements.split(","))
    noise = (
        NoiseConfig.default() if args.noise == "default"
        else NoiseConfig()
    )
    if args.magnitudes:
        noise = NoiseConfig(
            plan=noise.plan,
            magnitudes=_parse_csv(
                args.magnitudes, float, "--magnitudes"
            ),
        )
    kwargs["noise"] = noise
    try:
        return CampaignSpec(**kwargs)
    except SynthError as exc:
        raise CliError(str(exc)) from None


def _write_json_artifact(dest, text: str, label: str) -> None:
    if dest is None:
        return
    if dest == "-":
        sys.stdout.write(text)
        return
    with open(dest, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"{label} written to {dest}")


def cmd_synth_generate(args: argparse.Namespace) -> int:
    """Sample a campaign's scenario list without running it."""
    import json

    from .synth import SynthError, generate_scenarios

    spec = _load_campaign_spec(args)
    try:
        scenarios = generate_scenarios(spec)
    except SynthError as exc:
        raise CliError(str(exc)) from None
    print(
        f"{'scenario':<22}{'doses':<46}{'place':>7}{'skel':>14}"
        f"{'size':>6}{'noise':>7}"
    )
    for sc in scenarios:
        doses = ",".join(
            f"{d.property}@{d.band}" for d in sc.doses
        ) or "-"
        print(
            f"{sc.name:<22}{doses:<46}{sc.placement:>7}"
            f"{sc.skeleton:>14}{sc.size:>6}{sc.noise_magnitude:>7g}"
        )
    print(f"{len(scenarios)} scenario(s), strategy={spec.strategy}")
    if args.json is not None:
        payload = {
            "format": "ats-synth-scenarios",
            "version": 1,
            "spec": spec.to_dict(),
            "scenarios": [
                dict(sc.to_dict(), manifest=sc.manifest().to_dict())
                for sc in scenarios
            ],
        }
        _write_json_artifact(
            args.json,
            json.dumps(payload, indent=2) + "\n",
            "scenario list",
        )
    return 0


def cmd_synth_campaign(args: argparse.Namespace) -> int:
    """Execute a synthesis campaign on the supervised sweep engine."""
    from .synth import (
        CampaignError,
        SynthError,
        run_campaign,
        score_result,
    )

    spec = _load_campaign_spec(args)
    families = _parse_families_arg(args)
    supervisor = _make_supervisor(args)
    aborted = None
    try:
        result = run_campaign(
            spec,
            threshold=args.threshold,
            time_budget=args.time_budget,
            supervisor=supervisor,
            archive=args.archive,
            workers=_workers_of(args),
            families=families,
        )
    except SynthError as exc:
        raise CliError(str(exc)) from None
    except CampaignError as exc:
        result = exc.result
        aborted = str(exc)
    print(result.format_summary())
    print(score_result(result).format_table())
    if args.archive is not None:
        print(f"runs archived in {args.archive}")
    _write_json_artifact(
        args.json, result.to_json_str(), "campaign artifact"
    )
    _emit_failures(args, supervisor)
    if aborted is not None:
        print(f"ats: error: {aborted}", file=sys.stderr)
        return 1
    return 0


def cmd_synth_score(args: argparse.Namespace) -> int:
    """Grade detectors against a campaign artifact's manifests."""
    import json

    from .synth import score_campaign_json

    try:
        with open(args.campaign, encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise CliError(f"cannot read campaign file: {exc}") from None
    except ValueError as exc:
        raise CliError(
            f"bad JSON in campaign file {args.campaign}: {exc}"
        ) from None
    try:
        report = score_campaign_json(payload)
    except (ValueError, KeyError, TypeError) as exc:
        raise CliError(
            f"{args.campaign}: not a campaign artifact ({exc})"
        ) from None
    print(report.format_table())
    _write_json_artifact(args.json, report.to_json_str(), "score")
    return 0


def cmd_suites(args: argparse.Namespace) -> int:
    print(format_catalog())
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    from .validation import certify_tool

    cert = certify_tool(
        size=args.size, num_threads=args.threads, seed=args.seed
    )
    print(cert.format())
    return 0 if cert.certified else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from .validation import run_sweep

    spec = _resolve_property(args.property)
    factors = [float(f) for f in args.factors.split(",")]
    sizes = [int(s) for s in args.sizes.split(",")]
    result = run_sweep(
        spec.name,
        severity_factors=factors,
        sizes=sizes,
        num_threads=args.threads,
        seed=args.seed,
    )
    print(result.to_csv())
    return 0


# ----------------------------------------------------------------------
# statistical analysis commands
# ----------------------------------------------------------------------

def cmd_stats(args: argparse.Namespace) -> int:
    """Similarity analysis of one trace: features, clusters, outliers."""
    import json

    from .analysis import AnalysisConfig
    from .analysis.index import TraceIndex
    from .stats import SimilarityDetector, behavior_matrix, cluster_rows

    if args.trace is not None:
        try:
            events, _ = read_trace(args.trace)
        except FileNotFoundError:
            raise CliError(
                f"trace file not found: {args.trace}"
            ) from None
        except TraceFormatError as exc:
            raise CliError(str(exc)) from None
        if not events:
            print("trace contains no event records; nothing to cluster")
            return 0
        index = TraceIndex(sorted(events, key=lambda e: e.time))
        total_time = None
    else:
        if not args.property:
            raise CliError("need a property program (or --trace FILE)")
        spec = _resolve_property(args.property)
        run = spec.run(
            size=args.size, num_threads=args.threads, seed=args.seed
        )
        index = TraceIndex(list(run.events))
        total_time = run.final_time
    matrix = behavior_matrix(index, total_time=total_time)
    label = "rank" if matrix.kind == "rank" else "location"
    print(
        f"behavior matrix: {len(matrix)} {label} row(s) x "
        f"{len(matrix.names)} feature(s)"
    )
    if len(matrix) < 2:
        print("fewer than 2 rows; nothing to cluster")
        return 0
    k = min(args.k, len(matrix))
    assign = cluster_rows(
        matrix.rows,
        k=k,
        metric=args.metric,
        method=args.method,
        seed=args.seed,
    )
    print(
        f"clusters: {assign.method} k={assign.k} "
        f"metric={assign.metric} silhouette={assign.silhouette:.3f}"
    )
    members = {
        lbl: assign.members(lbl) for lbl in sorted(set(assign.labels))
    }
    means = {
        lbl: sum(matrix.overhead(i) for i in rows) / len(rows)
        for lbl, rows in sorted(members.items())
    }
    baseline = min(sorted(means), key=lambda lbl: means[lbl])
    for lbl, rows in sorted(members.items()):
        tag = " (baseline)" if lbl == baseline else ""
        keys = ",".join(matrix.keys[i] for i in rows)
        print(
            f"  cluster {lbl}{tag}: {len(rows)} row(s), "
            f"mean overhead {means[lbl]:.4f}s  [{keys}]"
        )
    detector = SimilarityDetector(
        k=args.k,
        metric=args.metric,
        method=args.method,
        threshold=args.silhouette,
        seed=args.seed,
    )
    findings = sorted(
        detector.detect(index, AnalysisConfig()),
        key=lambda f: (-f.wait_time, f.loc),
    )
    if findings:
        print("outliers:")
        for f in findings:
            path = "/".join(f.callpath)
            print(
                f"  {label} {f.loc}: overhead excess "
                f"{f.wait_time:.4f}s @ {path}"
            )
    else:
        print(
            "no outlier rows (silhouette below "
            f"{args.silhouette:g} or no excess overhead)"
        )
    if args.json is not None:
        payload = {
            "format": "ats-stats",
            "version": 1,
            "matrix": matrix.to_dict(),
            "clusters": {
                "method": assign.method,
                "metric": assign.metric,
                "k": assign.k,
                "labels": list(assign.labels),
                "medoids": list(assign.medoids),
                "silhouette": assign.silhouette,
            },
            "outliers": [
                {
                    "location": str(f.loc),
                    "callpath": list(f.callpath),
                    "excess_seconds": f.wait_time,
                }
                for f in findings
            ],
        }
        _write_json_artifact(
            args.json,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            "stats report",
        )
    return 0


def cmd_export_dataset(args: argparse.Namespace) -> int:
    """Export (features, labels) tables from archived ground truth."""
    from .archive import ArchiveError, CacheStats
    from .stats import dataset_rows, rows_to_csv, rows_to_jsonl

    if args.jsonl is None and args.csv is None:
        raise CliError(
            "need --jsonl FILE and/or --csv FILE ('-' = stdout)"
        )
    stats = CacheStats()
    with _open_archive(args) as arch:
        try:
            runs = (
                [arch.resolve(ref) for ref in args.run]
                if args.run
                else None
            )
            rows = dataset_rows(arch, runs=runs, stats=stats)
        except ArchiveError as exc:
            raise CliError(str(exc)) from None
    if not rows:
        raise CliError(
            f"archive {args.archive} holds no ground-truth runs; "
            "record some with 'ats synth campaign --archive' first"
        )
    if args.jsonl is not None:
        _write_json_artifact(
            args.jsonl, rows_to_jsonl(rows), "dataset (JSONL)"
        )
    if args.csv is not None:
        _write_json_artifact(
            args.csv, rows_to_csv(rows), "dataset (CSV)"
        )
    print(
        f"{len(rows)} sample(s) from "
        f"{len({r.run_id for r in rows})} run(s); {stats.format()}"
    )
    return 0


# ----------------------------------------------------------------------
# archive commands
# ----------------------------------------------------------------------

def _open_archive(args):
    from .archive import Archive

    return Archive(args.archive)


def cmd_archive_run(args: argparse.Namespace) -> int:
    from .archive import ArchiveError

    spec = _resolve_property(args.property)
    params = _dist_override(spec, args.dist) if args.dist else None
    if args.severity_scale is not None and args.severity_scale <= 0:
        raise CliError("--severity-scale must be > 0")
    with _open_archive(args) as arch:
        try:
            run = arch.archive_run(
                spec,
                size=args.size,
                num_threads=args.threads,
                seed=args.seed,
                params=params,
                severity_scale=args.severity_scale,
                time_budget=args.time_budget,
            )
        except ArchiveError as exc:
            raise CliError(str(exc)) from None
    print(
        f"archived {run.run_id} {run.program} size={run.size} "
        f"threads={run.threads} seed={run.seed} events={run.events} "
        f"trace={run.trace_digest[:12]}"
    )
    return 0


def cmd_archive_analyze(args: argparse.Namespace) -> int:
    from .archive import ArchiveError, CacheStats

    stats = CacheStats()
    with _open_archive(args) as arch:
        try:
            runs = (
                [arch.resolve(ref) for ref in args.run]
                if args.run
                else arch.history()
            )
            if not runs:
                raise CliError(
                    f"archive {arch.root} is empty; record runs with "
                    "'ats archive run' first"
                )
            results = arch.analyze_many(
                runs,
                stats=stats,
                parallel=args.parallel,
                max_workers=args.workers,
            )
        except ArchiveError as exc:
            raise CliError(str(exc)) from None
    for run in runs:
        ranked = [
            f"{name}={sev:.1%}"
            for name, sev in results[run.run_id].ranked()
            if sev >= args.threshold
        ]
        print(
            f"{run.run_id} {run.program}: "
            + (", ".join(ranked) if ranked else "no findings above "
               f"{args.threshold:.1%}")
        )
    print(stats.format())
    return 0


def cmd_archive_export(args: argparse.Namespace) -> int:
    from .archive import ArchiveError

    with _open_archive(args) as arch:
        try:
            run = arch.resolve(args.run)
            path = arch.export_trace(run, args.out)
        except ArchiveError as exc:
            raise CliError(str(exc)) from None
    print(f"trace {run.trace_digest[:12]} of {run.run_id} written to {path}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    from .archive import ArchiveError, format_history, history_to_json_str

    with _open_archive(args) as arch:
        try:
            runs = arch.history()
        except ArchiveError as exc:
            raise CliError(str(exc)) from None
    sys.stdout.write(
        history_to_json_str(runs) if args.json else format_history(runs)
    )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Cross-run regression diff; ``--gate`` makes it a CI check."""
    import json

    from .archive import ArchiveError, CacheStats

    stats = CacheStats()
    with _open_archive(args) as arch:
        try:
            before = arch.resolve(args.before)
            after = arch.resolve(args.after)
            report = arch.diff(
                before, after, threshold=args.threshold, stats=stats
            )
        except ArchiveError as exc:
            raise CliError(str(exc)) from None
    print(
        f"diff {before.run_id} ({before.program}) -> "
        f"{after.run_id} ({after.program})"
    )
    print(report.format())
    print(stats.format())
    if args.json is not None:
        payload = dict(
            {"format": "ats-diff", "version": 1,
             "before": before.run_id, "after": after.run_id},
            **report.to_dict(),
        )
        text = json.dumps(payload, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"diff written to {args.json}")
    if args.gate:
        failures = report.gate_failures()
        if failures:
            for reason in failures:
                print(f"ats: gate: {reason}", file=sys.stderr)
            return 1
        print("gate: no regressions")
    return 0


# ----------------------------------------------------------------------
# service commands
# ----------------------------------------------------------------------

def _service_client(args):
    from .service import ServiceClient

    return ServiceClient(args.server, tenant=args.tenant)


def _service_call(fn):
    """Run one client call with CLI-grade connection errors."""
    from urllib.error import URLError

    from .service import ServiceHTTPError, ServiceUnreachable

    try:
        return fn()
    except ServiceHTTPError as exc:
        raise CliError(str(exc)) from None
    except ServiceUnreachable as exc:
        raise CliError(f"cannot reach service: {exc}") from None
    except (URLError, OSError) as exc:
        raise CliError(f"cannot reach service: {exc}") from None


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .archive import Archive
    from .chaos.inject import install_from_env
    from .service import AnalysisService, run_service_in_thread
    from .service.dashboard import render_watch

    set_metrics_enabled(True)
    if args.spans:
        set_spans_enabled(True)
    # fault-injection harness hook: a no-op unless ATS_CHAOS carries a
    # plan (the chaos harness sets it on the server it supervises).
    install_from_env()
    durable = args.state_dir is not None
    service = AnalysisService(
        Archive(args.archive, fsync=durable),
        max_workers=args.workers,
        rate=args.rate,
        burst=args.burst,
        state_dir=args.state_dir,
        recover=args.recover,
    )
    handle = run_service_in_thread(
        service, host=args.host, port=args.port
    )
    print(f"ats service listening on {handle.url} "
          f"(archive {service.archive.root})")
    if durable:
        print(f"durable state in {service.state_dir}"
              + (
                  "  (recovered {recovered}, requeued {requeued}, "
                  "orphaned {orphaned})".format(**service.counts)
                  if args.recover else ""
              ))
    print("endpoints: /submit-run /analyze /diff /campaign /synth "
          "/history /jobs/<id> /status /dashboard /metrics "
          "/metrics.json /drain")
    sys.stdout.flush()
    # SIGTERM = graceful shutdown: stop intake, wait for in-flight
    # jobs, flush the journal + manifest, then exit -- same path as
    # Ctrl-C, so orchestrators get drain semantics for free.
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    try:
        while not stop.is_set():
            if args.watch:
                frame = render_watch(service.status())
                sys.stdout.write("\x1b[2J\x1b[H" + frame)
                sys.stdout.flush()
            stop.wait(args.interval)
    except KeyboardInterrupt:
        print("\ninterrupt: draining...", file=sys.stderr)
    handle.stop()
    service.close()
    print("service stopped (drained)")
    sys.stdout.flush()
    return 0


def _print_submission(response: dict) -> int:
    import json

    if "result" in response or response.get("state") in (
        "done", "failed"
    ):
        print(json.dumps(response, indent=2, default=str))
        return 0 if response.get("state") == "done" else 1
    coalesced = " (coalesced)" if response.get("coalesced") else ""
    print(f"submitted {response['job']}{coalesced}; poll with "
          f"'ats submit job {response['job']}'")
    return 0


def cmd_submit_run(args: argparse.Namespace) -> int:
    client = _service_client(args)
    return _print_submission(_service_call(lambda: client.submit_run(
        args.property, size=args.size, threads=args.threads,
        seed=args.seed, wait=args.wait,
    )))


def cmd_submit_analyze(args: argparse.Namespace) -> int:
    client = _service_client(args)
    return _print_submission(_service_call(lambda: client.analyze(
        args.run, wait=args.wait,
    )))


def cmd_submit_diff(args: argparse.Namespace) -> int:
    client = _service_client(args)
    return _print_submission(_service_call(lambda: client.diff(
        args.before, args.after, threshold=args.threshold,
        wait=args.wait,
    )))


def cmd_submit_campaign(args: argparse.Namespace) -> int:
    client = _service_client(args)
    params = {}
    if args.properties:
        params["properties"] = args.properties.split(",")
    return _print_submission(_service_call(lambda: client.campaign(
        size=args.size, threads=args.threads, seed=args.seed,
        wait=args.wait, **params,
    )))


def cmd_submit_synth(args: argparse.Namespace) -> int:
    import json

    try:
        with open(args.spec, encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise CliError(f"cannot read spec file: {exc}") from None
    except ValueError as exc:
        raise CliError(
            f"bad JSON in spec file {args.spec}: {exc}"
        ) from None
    if isinstance(payload, dict) and (
        payload.get("format") == "ats-synth-campaign"
    ):
        payload = payload.get("spec", {})
    client = _service_client(args)
    return _print_submission(_service_call(lambda: client.synth(
        payload, wait=args.wait,
    )))


def cmd_submit_history(args: argparse.Namespace) -> int:
    import json

    client = _service_client(args)
    print(json.dumps(_service_call(client.history), indent=2))
    return 0


def cmd_submit_job(args: argparse.Namespace) -> int:
    import json

    client = _service_client(args)
    response = _service_call(
        lambda: client.job(args.job, wait=args.wait)
    )
    print(json.dumps(response, indent=2, default=str))
    return 0 if response.get("state") != "failed" else 1


def cmd_watch(args: argparse.Namespace) -> int:
    import time

    from .service.dashboard import render_watch

    client = _service_client(args)
    frames = 0
    outages = 0
    while True:
        try:
            # the client already rides out brief restarts with its
            # seeded backoff; this outer loop covers the long ones, so
            # a watch session survives any service restart.
            status = _service_call(client.status)
        except CliError as exc:
            if args.no_reconnect:
                raise
            outages += 1
            sys.stdout.write(f"[watch] {exc}; reconnecting...\n")
            sys.stdout.flush()
            try:
                time.sleep(min(5.0, args.interval * outages))
            except KeyboardInterrupt:
                return 0
            continue
        outages = 0
        frame = render_watch(status)
        if args.plain:
            sys.stdout.write(frame)
        else:
            sys.stdout.write("\x1b[2J\x1b[H" + frame)
        sys.stdout.flush()
        frames += 1
        if args.count and frames >= args.count:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .chaos.harness import run_chaos_battery

    def progress(result):
        mark = "ok" if result.ok else "FAIL"
        print(f"[{mark}] run {result.index}: {result.plan} "
              f"({result.acknowledged} acked, "
              f"{result.duration:.1f}s)")
        for violation in result.violations:
            print(f"     violation: {violation}")
        sys.stdout.flush()

    report = run_chaos_battery(
        seed=args.seed,
        runs=args.runs,
        workdir=args.workdir,
        timeout=args.timeout,
        keep=args.keep,
        progress=progress,
    )
    print(report.format(), end="")
    if args.json_out:
        payload = json.dumps(report.to_dict(), indent=2) + "\n"
        if args.json_out == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(payload)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ats",
        description="APART Test Suite for automatic performance "
        "analysis tools (IPPS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list property functions")
    p.add_argument("--paradigm", choices=("mpi", "omp", "hybrid"),
                   default=None)
    p.add_argument("--all", action="store_true",
                   help="include negative test programs")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run one property function")
    p.add_argument("property")
    p.add_argument("--dist", metavar="SHAPE[:V1,V2,...]", default=None,
                   help="override the property's work distribution "
                   "(shape name from the distribution registry, with "
                   "optional descriptor values)")
    p.add_argument("--time-budget", type=float, default=None,
                   metavar="VSECONDS",
                   help="virtual-time watchdog: tear the run down with "
                   "a structured hang report past this simulated time")
    _add_run_options(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("chain", help="run all MPI properties (fig 3.3)")
    _add_run_options(p)
    p.set_defaults(fn=cmd_chain)

    p = sub.add_parser("split", help="split-communicator run (fig 3.4)")
    p.add_argument("--lower", default="imbalance_at_mpi_barrier",
                   help="comma-separated property list for lower half")
    p.add_argument("--upper", default="late_broadcast",
                   help="comma-separated property list for upper half")
    _add_run_options(p)
    p.set_defaults(fn=cmd_split)

    p = sub.add_parser("generate", help="generate standalone programs")
    p.add_argument("outdir")
    p.add_argument("--paradigm", choices=("mpi", "omp", "hybrid"),
                   default=None)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("analyze", help="analyze persisted traces")
    p.add_argument("traces", nargs="+", metavar="trace",
                   help="trace files, directories (all *.jsonl[.gz] "
                   "inside) or glob patterns")
    p.add_argument("--threshold", type=float, default=0.005)
    p.add_argument("--profile", action="store_true",
                   help="print the per-region trace profile first")
    p.add_argument("--skip-bad-lines", action="store_true",
                   help="drop corrupt event lines instead of failing")
    p.add_argument("--salvage", action="store_true",
                   help="recover a trace truncated mid-record: analyze "
                   "everything before the cut")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "metrics",
        help="run a property with metrics on and dump the registry",
    )
    p.add_argument("property", nargs="?", default="late_sender")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--format", choices=("auto", "prom", "json"),
                   default="auto")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write to FILE instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("matrix", help="run the validation matrix")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--archive", metavar="DIR", default=None,
                   help="also record every executed run's trace in "
                   "this archive directory")
    _add_supervision_options(p)
    p.set_defaults(fn=cmd_matrix)

    p = sub.add_parser(
        "robustness",
        help="sweep fault-injection magnitude, emit detector TP/FP "
        "curves",
    )
    p.add_argument("--program", action="append", default=None,
                   metavar="NAME",
                   help="property program(s) to sweep (repeatable; "
                   "default: all registered programs)")
    p.add_argument("--magnitudes", default=None,
                   help="comma-separated perturbation magnitudes "
                   "(default 0,0.35,0.7,1)")
    p.add_argument("--seeds", type=int, default=1, metavar="N",
                   help="number of seeds per (program, magnitude) cell")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed of the range (default 0)")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--threshold", type=float, default=0.01)
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the full curves as JSON "
                   "('-' = stdout)")
    p.add_argument("--archive", metavar="DIR", default=None,
                   help="also record every analyzed trace in this "
                   "archive directory (under its scaled fault plan)")
    p.add_argument("--families", default="rule", metavar="LIST",
                   help="comma-separated detector families to run "
                   "(rule,similarity; default rule)")
    _add_supervision_options(p)
    p.set_defaults(fn=cmd_robustness)

    def _add_synth_spec_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("name", nargs="?", default=None,
                            help="campaign name (or pass --spec FILE)")
        parser.add_argument("--spec", metavar="FILE", default=None,
                            help="load the CampaignSpec from a JSON "
                            "file instead of the flags below")
        parser.add_argument("--strategy", default="grid",
                            choices=("grid", "random", "adversarial"))
        parser.add_argument("--scenarios", type=int, default=100,
                            metavar="N",
                            help="base scenario count (default 100)")
        parser.add_argument("--properties", default=None,
                            help="comma-separated property pool "
                            "(default: all registered programs)")
        parser.add_argument("--skeletons", default=None,
                            help="comma-separated app skeletons "
                            "(none,jacobi,pipeline,master_worker)")
        parser.add_argument("--sizes", default=None,
                            help="comma-separated world sizes "
                            "(default 4)")
        parser.add_argument("--bands", default=None,
                            help="comma-separated severity bands "
                            "(low,medium,high)")
        parser.add_argument("--placements", default=None,
                            help="comma-separated placements "
                            "(all,lower,upper)")
        parser.add_argument("--threads", type=int, default=2)
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--max-properties", type=int, default=2,
                            metavar="N",
                            help="max property doses per scenario")
        parser.add_argument("--max-failures", type=int, default=-1,
                            metavar="N",
                            help="abort after more than N errored "
                            "cells (-1: unlimited)")
        parser.add_argument("--noise", choices=("none", "default"),
                            default="none",
                            help="fault-plan noise: 'default' sweeps "
                            "the standard plan (default: none)")
        parser.add_argument("--magnitudes", default=None,
                            help="comma-separated noise magnitudes "
                            "scenarios sample from")
        parser.add_argument("--adversarial-rounds", type=int, default=2,
                            metavar="N")
        parser.add_argument("--adversarial-top", type=int, default=4,
                            metavar="N")

    p = sub.add_parser(
        "synth",
        help="synthesized ground-truth campaigns (generate/run/score)",
    )
    ysub = p.add_subparsers(dest="synth_command", required=True)

    py = ysub.add_parser(
        "generate",
        help="sample a campaign's scenario list (no execution)",
    )
    _add_synth_spec_options(py)
    py.add_argument("--json", metavar="FILE", default=None,
                    help="write scenarios + ground-truth manifests as "
                    "JSON ('-' = stdout)")
    py.set_defaults(fn=cmd_synth_generate)

    py = ysub.add_parser(
        "campaign",
        help="execute a synthesis campaign and grade the detectors",
    )
    _add_synth_spec_options(py)
    py.add_argument("--threshold", type=float, default=0.01)
    py.add_argument("--json", metavar="FILE", default=None,
                    help="write the campaign artifact (cells + "
                    "manifests) as JSON ('-' = stdout)")
    py.add_argument("--archive", metavar="DIR", default=None,
                    help="record every analyzed trace (with its "
                    "ground-truth manifest) in this archive directory")
    py.add_argument("--families", default="rule", metavar="LIST",
                    help="comma-separated detector families to run "
                    "(rule,similarity; default rule)")
    _add_supervision_options(py)
    py.set_defaults(fn=cmd_synth_campaign)

    py = ysub.add_parser(
        "score",
        help="re-score a campaign artifact against its manifests",
    )
    py.add_argument("campaign", help="ats-synth-campaign JSON file")
    py.add_argument("--json", metavar="FILE", default=None,
                    help="write the score report as JSON "
                    "('-' = stdout)")
    py.set_defaults(fn=cmd_synth_score)

    p = sub.add_parser("suites", help="print the external-suite catalog")
    p.set_defaults(fn=cmd_suites)

    p = sub.add_parser(
        "certify",
        help="run the full suite against the bundled analyzer",
    )
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_certify)

    p = sub.add_parser(
        "sweep", help="severity/size parameter sweep (CSV output)"
    )
    p.add_argument("property")
    p.add_argument("--factors", default="0.5,1,2",
                   help="comma-separated severity scale factors")
    p.add_argument("--sizes", default="8",
                   help="comma-separated world sizes")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "stats",
        help="similarity analysis: per-rank behavior clusters and "
        "outliers",
    )
    p.add_argument("property", nargs="?", default=None,
                   help="property program to run (or pass --trace)")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="cluster a persisted trace instead of running "
                   "a program")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--k", type=int, default=2,
                   help="cluster count (default 2)")
    p.add_argument("--metric", choices=("euclidean", "manhattan"),
                   default="euclidean")
    p.add_argument("--method", choices=("kmedoids", "single_link"),
                   default="kmedoids")
    p.add_argument("--silhouette", type=float, default=0.35,
                   metavar="Q",
                   help="outlier gate: emit nothing below this cluster "
                   "quality (default 0.35)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write matrix + clusters + outliers as JSON "
                   "('-' = stdout)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "export",
        help="export ground-truth datasets from an archive",
    )
    esub = p.add_subparsers(dest="export_command", required=True)

    pe = esub.add_parser(
        "dataset",
        help="(features, labels) tables from archived ground-truth "
        "campaign runs",
    )
    pe.add_argument("run", nargs="*",
                    help="run ids or unique prefixes (default: every "
                    "manifest-carrying archived run)")
    pe.add_argument("--archive", metavar="DIR", default=".ats-archive",
                    help="archive directory (default .ats-archive)")
    pe.add_argument("--jsonl", metavar="FILE", default=None,
                    help="write JSON-lines rows ('-' = stdout)")
    pe.add_argument("--csv", metavar="FILE", default=None,
                    help="write a flat CSV table ('-' = stdout)")
    pe.set_defaults(fn=cmd_export_dataset)

    def _add_archive_option(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--archive", metavar="DIR",
                            default=".ats-archive",
                            help="archive directory (default "
                            ".ats-archive)")

    p = sub.add_parser(
        "archive",
        help="record runs in a content-addressed trace archive",
    )
    asub = p.add_subparsers(dest="archive_command", required=True)

    pa = asub.add_parser(
        "run", help="execute a property function and archive its trace"
    )
    pa.add_argument("property")
    _add_archive_option(pa)
    pa.add_argument("--size", type=int, default=8)
    pa.add_argument("--threads", type=int, default=4)
    pa.add_argument("--seed", type=int, default=0)
    pa.add_argument("--dist", metavar="SHAPE[:V1,V2,...]", default=None,
                    help="override the property's work distribution")
    pa.add_argument("--severity-scale", type=float, default=None,
                    metavar="FACTOR",
                    help="scale the property's severity parameters "
                    "(a distinct archived identity; used to exercise "
                    "the diff gate)")
    pa.add_argument("--time-budget", type=float, default=None,
                    metavar="VSECONDS")
    pa.set_defaults(fn=cmd_archive_run)

    pa = asub.add_parser(
        "analyze",
        help="analyze archived runs through the incremental cache",
    )
    pa.add_argument("run", nargs="*",
                    help="run ids or unique prefixes (default: all)")
    _add_archive_option(pa)
    pa.add_argument("--threshold", type=float, default=0.005)
    pa.add_argument("--parallel", action="store_true",
                    help="fan the batch out over the worker pool")
    pa.add_argument("--workers", type=int, default=8)
    pa.set_defaults(fn=cmd_archive_analyze)

    pa = asub.add_parser(
        "export", help="write an archived trace back to a file"
    )
    pa.add_argument("run", help="run id or unique prefix")
    pa.add_argument("out",
                    help="destination (.gz for compressed JSONL)")
    _add_archive_option(pa)
    pa.set_defaults(fn=cmd_archive_export)

    p = sub.add_parser("history", help="list archived runs")
    _add_archive_option(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable history on stdout")
    p.set_defaults(fn=cmd_history)

    p = sub.add_parser(
        "diff",
        help="regression diff between two archived runs",
    )
    p.add_argument("before", help="baseline run id or unique prefix")
    p.add_argument("after", help="candidate run id or unique prefix")
    _add_archive_option(p)
    p.add_argument("--threshold", type=float, default=0.01,
                   help="detection threshold for lost/gained "
                   "properties (default 0.01)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the structured diff as JSON "
                   "('-' = stdout)")
    p.add_argument("--gate", action="store_true",
                   help="exit 1 on lost properties or severity "
                   "regressions (CI regression gate)")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "serve",
        help="run the analysis-as-a-service HTTP server",
    )
    _add_archive_option(p)
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8313,
                   help="bind port; 0 = ephemeral (default 8313)")
    p.add_argument("--workers", type=int, default=8,
                   help="max concurrently executing jobs (default 8)")
    p.add_argument("--rate", type=float, default=200.0,
                   help="per-tenant submissions/second (default 200)")
    p.add_argument("--burst", type=int, default=400,
                   help="per-tenant burst budget (default 400)")
    p.add_argument("--spans", action="store_true",
                   help="record request-tracing obs spans")
    p.add_argument("--watch", action="store_true",
                   help="redraw the live dashboard while serving")
    p.add_argument("--interval", type=float, default=1.0,
                   help="dashboard refresh seconds (default 1)")
    p.add_argument("--state-dir", default=None,
                   help="durable mode: journal every accepted job "
                   "(fsync'd) and checkpoint campaigns here")
    p.add_argument("--recover", action="store_true",
                   help="replay the --state-dir journal: restore "
                   "finished jobs, requeue interrupted ones")
    p.set_defaults(fn=cmd_serve)

    def _add_server_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--server",
                            default="http://127.0.0.1:8313",
                            help="service base URL "
                            "(default http://127.0.0.1:8313)")
        parser.add_argument("--tenant", default="default",
                            help="X-Tenant rate-limit identity")

    p = sub.add_parser(
        "submit",
        help="submit a job to a running 'ats serve'",
    )
    ssub = p.add_subparsers(dest="submit_command", required=True)

    ps = ssub.add_parser("run", help="execute + archive a property run")
    ps.add_argument("property")
    ps.add_argument("--size", type=int, default=8)
    ps.add_argument("--threads", type=int, default=4)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--wait", action="store_true",
                    help="block until the job resolves")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_run)

    ps = ssub.add_parser("analyze", help="analyze an archived run")
    ps.add_argument("run", help="run id or unique prefix")
    ps.add_argument("--wait", action="store_true")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_analyze)

    ps = ssub.add_parser("diff", help="regression diff of two runs")
    ps.add_argument("before")
    ps.add_argument("after")
    ps.add_argument("--threshold", type=float, default=0.01)
    ps.add_argument("--wait", action="store_true")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_diff)

    ps = ssub.add_parser(
        "campaign", help="run a validation campaign server-side"
    )
    ps.add_argument("--properties", default=None,
                    help="comma-separated property names (default all)")
    ps.add_argument("--size", type=int, default=8)
    ps.add_argument("--threads", type=int, default=4)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--wait", action="store_true")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_campaign)

    ps = ssub.add_parser(
        "synth", help="run a synthesized-scenario campaign server-side"
    )
    ps.add_argument("spec", help="CampaignSpec JSON file")
    ps.add_argument("--wait", action="store_true")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_synth)

    ps = ssub.add_parser("history", help="server-side archive history")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_history)

    ps = ssub.add_parser("job", help="poll one job by id")
    ps.add_argument("job")
    ps.add_argument("--wait", action="store_true")
    _add_server_options(ps)
    ps.set_defaults(fn=cmd_submit_job)

    p = sub.add_parser(
        "watch",
        help="live terminal dashboard for a running service",
    )
    _add_server_options(p)
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll seconds (default 1)")
    p.add_argument("--count", type=int, default=0,
                   help="frames to render before exiting (0 = forever)")
    p.add_argument("--plain", action="store_true",
                   help="no screen clearing (scripts/tests)")
    p.add_argument("--no-reconnect", action="store_true",
                   help="exit instead of retrying when the service "
                   "restarts or goes away")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser(
        "chaos",
        help="crash-test a service under a seeded host-fault plan",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="battery seed (default 0)")
    p.add_argument("--runs", type=int, default=5,
                   help="seeded plans to execute (default 5)")
    p.add_argument("--workdir", default=None,
                   help="scratch root (default: a temp dir, removed "
                   "on success)")
    p.add_argument("--keep", action="store_true",
                   help="keep per-run scratch dirs and server logs")
    p.add_argument("--timeout", type=float, default=180.0,
                   help="per-run wall-clock budget (default 180s)")
    p.add_argument("--json", dest="json_out", default=None,
                   help="also write the report as JSON ('-' = stdout)")
    p.set_defaults(fn=cmd_chaos)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .simkernel import DeadlockError, HangError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CliError as exc:
        print(f"ats: error: {exc}", file=sys.stderr)
        return 2
    except (DeadlockError, HangError) as exc:
        # The structured watchdog report goes to stdout (it is the
        # diagnosis the user asked for); stderr keeps the one-line
        # error contract.
        report = getattr(exc, "report", None)
        if report is not None:
            print(report.format())
        first_line = str(exc).splitlines()[0]
        print(f"ats: error: {first_line}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
