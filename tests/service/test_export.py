"""The export job kind: ground-truth dataset over the service archive."""

import json

import pytest

from repro.archive import Archive
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceHTTPError,
    run_service_in_thread,
)
from repro.stats import validate_row
from repro.synth import CampaignSpec, run_campaign


@pytest.fixture(scope="module")
def export_env(tmp_path_factory):
    archive = Archive(tmp_path_factory.mktemp("svc") / "archive")
    spec = CampaignSpec(
        name="svc-export", scenarios=5, sizes=(4,), seed=3
    )
    run_campaign(spec, archive=archive)
    service = AnalysisService(archive, max_workers=2)
    handle = run_service_in_thread(service)
    yield handle, archive
    handle.stop(drain=False)


def test_export_returns_validating_jsonl(export_env):
    handle, archive = export_env
    client = ServiceClient(handle.url)
    done = client.export(wait=True)
    assert done["state"] == "done"
    result = done["result"]
    labeled = [r for r in archive.history() if r.manifest is not None]
    assert result["runs"] == len(labeled)
    lines = result["jsonl"].splitlines()
    assert len(lines) == result["rows"] > 0
    for line in lines:
        validate_row(json.loads(line))
    assert "csv" not in result


def test_export_csv_on_request(export_env):
    handle, _ = export_env
    client = ServiceClient(handle.url)
    result = client.export(wait=True, csv=True)["result"]
    lines = result["csv"].splitlines()
    assert lines[0].startswith("run_id,program,key,rank")
    assert len(lines) == result["rows"] + 1


def test_export_run_filter(export_env):
    handle, archive = export_env
    client = ServiceClient(handle.url)
    run = next(r for r in archive.history() if r.manifest is not None)
    result = client.export(runs=[run.run_id], wait=True)["result"]
    assert result["runs"] == 1
    for line in result["jsonl"].splitlines():
        assert json.loads(line)["run_id"] == run.run_id


def test_export_repeat_is_warm_and_identical(export_env):
    handle, _ = export_env
    client = ServiceClient(handle.url)
    first = client.export(wait=True)["result"]
    second = client.export(wait=True)["result"]
    assert second["jsonl"] == first["jsonl"]
    # every feature cell was populated by the earlier exports
    assert second["cache"]["misses"] == 0
    assert second["cache"]["hits"] == second["runs"]


def test_export_bad_run_ref_is_400(export_env):
    handle, _ = export_env
    client = ServiceClient(handle.url)
    with pytest.raises(ServiceHTTPError) as excinfo:
        client.export(runs=["no-such-run"], wait=True)
    assert excinfo.value.status == 400
    with pytest.raises(ServiceHTTPError) as excinfo:
        client.export(runs="not-a-list", wait=True)
    assert excinfo.value.status == 400
