"""One-pass trace index shared by all detectors.

Before this existed every detector rescanned the flat event list:
region-imbalance detectors replayed enter/exit stacks, p2p detectors
rebuilt the msg_id match tables, collective detectors regrouped
``CollExit`` events -- each linear in the trace, once per detector.
:class:`TraceIndex` performs a single pass and precomputes all three
views (plus by-kind and by-location groupings); the analyzer builds it
once and hands it to the whole battery.

The index is a :class:`~collections.abc.Sequence` over the underlying
events, so detectors that iterate the raw stream keep working
unchanged, and the helpers in :mod:`repro.analysis.detectors.base`
short-circuit to the precomputed views when given an index.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from ..trace.events import CallPath, CollExit, Event, Location, Recv, Send


@dataclass(frozen=True)
class RegionVisit:
    """One completed region instance at one location."""

    loc: Location
    region: str
    path: CallPath
    enter: float
    exit: float
    child_time: float

    @property
    def inclusive(self) -> float:
        return self.exit - self.enter

    @property
    def exclusive(self) -> float:
        return self.inclusive - self.child_time


def replay_region_visits(events: Iterable[Event]) -> Iterator[RegionVisit]:
    """Replay enter/exit events into completed :class:`RegionVisit`\\ s.

    Events must be time-ordered per location (they are, as recorded).
    Unclosed regions at the end of the trace are ignored.
    """
    stacks: dict[Location, list[list]] = {}
    # stack entry: [region, enter_time, path, child_time]
    for event in events:
        kind = event.kind
        if kind == "enter":
            stacks.setdefault(event.loc, []).append(
                [event.region, event.time, event.path, 0.0]
            )
        elif kind == "exit":
            stack = stacks.get(event.loc)
            if not stack or stack[-1][0] != event.region:
                continue
            region, enter, path, child_time = stack.pop()
            inclusive = event.time - enter
            if stack:
                stack[-1][3] += inclusive
            yield RegionVisit(
                loc=event.loc,
                region=region,
                path=path,
                enter=enter,
                exit=event.time,
                child_time=child_time,
            )


class TraceIndex(Sequence):
    """Single-pass index over a time-ordered event stream.

    Attributes (all built in one scan of ``events``):

    * ``events`` -- the underlying list, in trace order,
    * ``by_kind`` -- event-kind string -> events of that kind,
    * ``by_location`` -- :class:`Location` -> that location's events,
    * ``region_visits`` -- completed region instances in exit order,
    * ``p2p_pairs`` -- matched user-level ``(Send, Recv)`` pairs, in
      first-recv order (internal collective traffic excluded),
    * ``collectives`` -- ``(comm_id, instance, op)`` -> participant
      ``CollExit`` events,
    * ``locations`` -- sorted list of all locations seen.
    """

    __slots__ = (
        "events",
        "by_kind",
        "by_location",
        "region_visits",
        "p2p_pairs",
        "collectives",
        "locations",
    )

    def __init__(self, events: Iterable[Event]):
        evs: List[Event] = (
            events if isinstance(events, list) else list(events)
        )
        self.events = evs
        by_kind: Dict[str, List[Event]] = {}
        by_location: Dict[Location, List[Event]] = {}
        collectives: Dict[Tuple[int, int, str], List[CollExit]] = {}
        sends: Dict[int, Send] = {}
        recvs: Dict[int, Recv] = {}
        visits: List[RegionVisit] = []
        stacks: Dict[Location, list] = {}
        for event in evs:
            kind = event.kind
            by_kind.setdefault(kind, []).append(event)
            loc = event.loc
            by_location.setdefault(loc, []).append(event)
            if kind == "enter":
                stacks.setdefault(loc, []).append(
                    [event.region, event.time, event.path, 0.0]
                )
            elif kind == "exit":
                stack = stacks.get(loc)
                if not stack or stack[-1][0] != event.region:
                    continue
                region, enter, path, child_time = stack.pop()
                inclusive = event.time - enter
                if stack:
                    stack[-1][3] += inclusive
                visits.append(
                    RegionVisit(
                        loc=loc,
                        region=region,
                        path=path,
                        enter=enter,
                        exit=event.time,
                        child_time=child_time,
                    )
                )
            elif kind == "send":
                if not event.internal:
                    sends[event.msg_id] = event
            elif kind == "recv":
                if not event.internal:
                    recvs[event.msg_id] = event
            elif kind == "coll":
                collectives.setdefault(
                    (event.comm_id, event.instance, event.op), []
                ).append(event)
        self.by_kind = by_kind
        self.by_location = by_location
        self.region_visits = visits
        self.p2p_pairs = [
            (sends[msg_id], recv)
            for msg_id, recv in recvs.items()
            if msg_id in sends
        ]
        self.collectives = collectives
        self.locations = sorted(by_location)

    # ------------------------------------------------------------------
    # Sequence protocol: an index is usable anywhere the raw event list
    # was (detectors iterate it, slices return plain lists).
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __getitem__(self, item):
        return self.events[item]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __repr__(self) -> str:
        return (
            f"<TraceIndex {len(self.events)} events, "
            f"{len(self.locations)} locations, "
            f"{len(self.region_visits)} visits, "
            f"{len(self.p2p_pairs)} p2p pairs, "
            f"{len(self.collectives)} collectives>"
        )
