"""The analysis service core: queue, coalescing, workers, drain.

:class:`AnalysisService` is the transport-agnostic heart of ``ats
serve``: submissions come in (from the HTTP layer, the CLI, or tests
calling :meth:`submit` directly), become :class:`~.jobs.Job` records
on a FIFO queue, and execute on the process-global pooled workers via
:func:`repro.simkernel.submit_host_task` -- the same threads that run
simulations and batch analysis, so the service adds no thread pool of
its own.  At most ``max_workers`` jobs run concurrently; the rest
wait in queue, with their wait time recorded into the
``ats_service_queue_wait_seconds`` histogram.

Three policies sit on the submission path:

* **rate limiting** -- a per-tenant token bucket
  (:mod:`~repro.service.ratelimit`); over-budget tenants get a
  :class:`RateLimited` carrying the retry-after hint;
* **coalescing** -- a submission whose
  :meth:`~repro.service.jobs.Job.coalesce_key` matches an in-flight
  job joins that job instead of queueing a duplicate computation
  (analyze keys are the archive cache's own ``(trace digest,
  detector fingerprint)`` pair, so coalesced responses are identical
  by construction);
* **drain** -- :meth:`drain` stops intake (:class:`ServiceDraining`,
  surfaced as 503) and waits for the queue and in-flight jobs to
  empty, the graceful half of shutdown.

Simulation-running jobs (``run``, ``campaign``, ``synth``) serialize
on one internal lock: the simulator's worker-pool handoff protocol assumes
one simulation at a time per process.  Pure host-side jobs (analyze,
diff, history) run fully concurrently.

Request tracing: every job carries its submission's request id, and
the service records ``queue-wait`` / ``execute`` / ``archive-cache``
obs spans tagged with it, completing the HTTP-accept span the HTTP
layer records.  One Chrome-trace export shows a request's whole life.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, Optional, Tuple

from ..archive import Archive, ArchiveError, CacheStats
from ..archive.fingerprint import detector_set_fingerprint
from ..obs.instruments import service_metrics
from ..obs.spans import span_log, spans_enabled
from ..simkernel.process import submit_host_task
from .jobs import CampaignProgress, Job
from .ratelimit import RateLimiter

__all__ = [
    "AnalysisService",
    "JobError",
    "RateLimited",
    "ServiceDraining",
]


class JobError(Exception):
    """A submission the service cannot accept (bad params, unknown run)."""


class RateLimited(Exception):
    """Tenant over budget; ``retry_after`` is the seconds-until-token."""

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} over rate budget; "
            f"retry in {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class ServiceDraining(Exception):
    """The service is draining; no new submissions are accepted."""


def _span(name: str, t0: float, t1: float, **args: Any) -> None:
    if spans_enabled():
        span_log().record(name, "service", t0, t1, args)


class AnalysisService:
    """Async job server over one trace archive (see module doc)."""

    #: resolved jobs kept for ``GET /jobs/<id>`` before eviction.
    MAX_FINISHED_JOBS = 4096

    def __init__(
        self,
        archive: Archive,
        max_workers: int = 8,
        rate: float = 200.0,
        burst: int = 400,
        default_detection_threshold: float = 0.01,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.archive = archive
        self.max_workers = max_workers
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.threshold = default_detection_threshold
        self.started_at = time.monotonic()

        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._inflight = 0
        self._accepting = True
        self._idle = threading.Condition(self._lock)
        #: coalesce_key -> unresolved primary job.
        self._active_keys: Dict[Tuple, Job] = {}
        #: job id -> job, submission order (bounded).
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        #: campaign job id -> live progress (bounded with _jobs).
        self._campaigns: Dict[str, CampaignProgress] = {}
        #: one simulation at a time (worker-pool handoff invariant).
        self._sim_lock = threading.Lock()

        #: plain counters so ``/status`` works with obs disabled.
        self.counts = {
            "submitted": 0,
            "executed": 0,
            "coalesced": 0,
            "done": 0,
            "failed": 0,
            "rate_limited": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = "default",
        request_id: str = "",
    ) -> Tuple[Job, bool]:
        """Queue one job; returns ``(job, coalesced)``.

        ``coalesced`` is True when the submission joined an identical
        in-flight job -- the returned job is then the shared primary,
        and its eventual result answers every coalesced submitter.
        Raises :class:`RateLimited`, :class:`ServiceDraining` or
        :class:`JobError`.
        """
        params = dict(params or {})
        if not self._accepting:
            raise ServiceDraining("service is draining")
        retry_after = self.limiter.check(tenant)
        if retry_after > 0.0:
            self._count("rate_limited")
            metrics = service_metrics()
            if metrics is not None:
                metrics.rate_limited.labels(tenant=tenant).inc()
            raise RateLimited(tenant, retry_after)

        key = self._coalesce_key(kind, params)
        with self._lock:
            if not self._accepting:
                raise ServiceDraining("service is draining")
            self._count_locked("submitted")
            if key is not None:
                primary = self._active_keys.get(key)
                if primary is not None and not primary.done:
                    primary.coalesced += 1
                    self._count_locked("coalesced")
                    metrics = service_metrics()
                    if metrics is not None:
                        metrics.coalesced.inc()
                    return primary, True
            job = Job(
                kind,
                params,
                tenant=tenant,
                request_id=request_id,
                coalesce_key=key,
            )
            if key is not None:
                self._active_keys[key] = job
            self._remember(job)
            if kind in ("campaign", "synth"):
                total = (
                    params["_campaign"].scenarios
                    if kind == "synth"
                    else len(params.get("_specs", ()))
                )
                progress = CampaignProgress(job.id, total=total)
                self._campaigns[job.id] = progress
                params["_progress"] = progress
            self._queue.append(job)
            metrics = service_metrics()
            if metrics is not None:
                metrics.queue_depth.set(len(self._queue))
            self._pump_locked()
        return job, False

    def _coalesce_key(
        self, kind: str, params: Dict[str, Any]
    ) -> Optional[Tuple]:
        """Derive the dedup key; resolves archive refs as a side effect.

        Unknown refs surface here, at submit time, as
        :class:`JobError` -- a 404 the client gets immediately rather
        than a failed job it would have to poll for.
        """
        if kind == "analyze":
            record = self._resolve_ref(params.get("run"))
            params["_record"] = record
            return (
                "analyze",
                record["trace_digest"],
                detector_set_fingerprint(_default_detectors()),
            )
        if kind == "diff":
            before = self._resolve_ref(params.get("before"), "before")
            after = self._resolve_ref(params.get("after"), "after")
            params["_before"] = before
            params["_after"] = after
            return (
                "diff",
                before["trace_digest"],
                after["trace_digest"],
                detector_set_fingerprint(_default_detectors()),
                float(params.get("threshold", self.threshold)),
            )
        if kind == "run":
            spec, run_kwargs = self._resolve_run_params(params)
            params["_spec"] = spec
            params["_kwargs"] = run_kwargs
            return (
                "run",
                spec.name,
                run_kwargs["size"],
                run_kwargs["num_threads"],
                run_kwargs["seed"],
            )
        if kind == "campaign":
            params["_specs"] = self._resolve_campaign_specs(params)
        if kind == "synth":
            params["_campaign"] = self._resolve_synth_spec(params)
        return None

    def _resolve_ref(self, ref, label: str = "run") -> dict:
        if not ref or not isinstance(ref, str):
            raise JobError(f"missing {label!r} run reference")
        try:
            return self.archive.resolve(ref).to_payload()
        except ArchiveError as exc:
            raise JobError(str(exc)) from None

    def _resolve_run_params(self, params: Dict[str, Any]):
        from ..core import get_property

        name = params.get("property")
        if not name or not isinstance(name, str):
            raise JobError("missing 'property' name")
        try:
            spec = get_property(name)
        except KeyError:
            raise JobError(
                f"unknown property function {name!r}"
            ) from None
        run_kwargs = {
            "size": int(params.get("size", 8)),
            "num_threads": int(params.get("threads", 4)),
            "seed": int(params.get("seed", 0)),
        }
        scale = params.get("severity_scale")
        if scale is not None:
            run_kwargs["severity_scale"] = float(scale)
        return spec, run_kwargs

    def _resolve_campaign_specs(self, params: Dict[str, Any]):
        from ..core import get_property, list_properties

        names = params.get("properties")
        if not names:
            return list_properties()
        specs = []
        for name in names:
            try:
                specs.append(get_property(name))
            except KeyError:
                raise JobError(
                    f"unknown property function {name!r}"
                ) from None
        return specs

    def _resolve_synth_spec(self, params: Dict[str, Any]):
        from ..synth import CampaignSpec, SynthError

        spec = params.get("spec")
        if not isinstance(spec, dict):
            raise JobError(
                "synth jobs need a 'spec' object (a CampaignSpec dict)"
            )
        try:
            return CampaignSpec.from_dict(spec)
        except SynthError as exc:
            raise JobError(str(exc)) from None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _pump_locked(self) -> None:
        """Start queued jobs while worker slots are free (lock held)."""
        metrics = service_metrics()
        while self._inflight < self.max_workers and self._queue:
            job = self._queue.popleft()
            job.mark_running()
            self._inflight += 1
            wait = job.queue_wait() or 0.0
            if metrics is not None:
                metrics.queue_depth.set(len(self._queue))
                metrics.inflight.set(self._inflight)
                metrics.queue_wait_seconds.observe(wait)
            _span(
                "queue-wait", job.created, job.started,
                request_id=job.request_id, job=job.id, kind=job.kind,
            )
            submit_host_task(
                lambda job=job: self._execute(job),
                lambda task, job=job: self._on_done(job, task),
            )

    def _execute(self, job: Job) -> dict:
        """Job body -- runs on a pooled worker thread."""
        t0 = time.monotonic()
        try:
            handler = getattr(self, f"_job_{job.kind}")
            return handler(job)
        finally:
            _span(
                "execute", t0, time.monotonic(),
                request_id=job.request_id, job=job.id, kind=job.kind,
            )

    def _on_done(self, job: Job, task) -> None:
        """Worker-side completion: bookkeeping, resolve, pump next."""
        metrics = service_metrics()
        with self._lock:
            self._inflight -= 1
            if job.coalesce_key is not None:
                if self._active_keys.get(job.coalesce_key) is job:
                    del self._active_keys[job.coalesce_key]
            status = "failed" if task.exception is not None else "done"
            self._count_locked(status)
            self._count_locked("executed")
            if metrics is not None:
                metrics.inflight.set(self._inflight)
                metrics.jobs.labels(kind=job.kind, status=status).inc()
                metrics.executed.inc()
            self._idle.notify_all()
        if task.exception is not None:
            exc = task.exception
            job.resolve(None, f"{type(exc).__name__}: {exc}")
        else:
            job.resolve(task.result, None)
        with self._lock:
            self._pump_locked()

    # ------------------------------------------------------------------
    # job bodies
    # ------------------------------------------------------------------

    def _count_cache(self, job: Job, stats: CacheStats) -> None:
        with self._lock:
            self.counts["cache_hits"] += stats.hits
            self.counts["cache_misses"] += stats.misses
        metrics = service_metrics()
        if metrics is not None:
            if stats.hits:
                metrics.cache_hits.inc(stats.hits)
            if stats.misses:
                metrics.cache_misses.inc(stats.misses)
        now = time.monotonic()
        _span(
            "archive-cache", now, now,
            request_id=job.request_id, job=job.id,
            hits=stats.hits, misses=stats.misses,
        )

    def _job_run(self, job: Job) -> dict:
        spec = job.params["_spec"]
        kwargs = job.params["_kwargs"]
        with self._sim_lock:
            run = self.archive.archive_run(spec, **kwargs)
        return {
            "run_id": run.run_id,
            "program": run.program,
            "trace_digest": run.trace_digest,
            "events": run.events,
            "final_time": run.final_time,
        }

    def _job_analyze(self, job: Job) -> dict:
        record = job.params["_record"]
        stats = CacheStats()
        from ..archive.cache import analyze_archived

        analysis = analyze_archived(
            self.archive.store, record, stats=stats
        )
        self._count_cache(job, stats)
        threshold = float(job.params.get("threshold", self.threshold))
        return {
            "run_id": job.params.get("run"),
            "program": record.get("program"),
            "severities": analysis.severities_by_property(),
            "detected": list(analysis.detected(threshold)),
            "findings": len(analysis.findings),
            "total_time": analysis.total_time,
            "cache": {"hits": stats.hits, "misses": stats.misses},
        }

    def _job_diff(self, job: Job) -> dict:
        from ..analysis.compare import compare_analyses
        from ..archive.cache import analyze_archived

        stats = CacheStats()
        threshold = float(job.params.get("threshold", self.threshold))
        before = analyze_archived(
            self.archive.store, job.params["_before"], stats=stats
        )
        after = analyze_archived(
            self.archive.store, job.params["_after"], stats=stats
        )
        self._count_cache(job, stats)
        report = compare_analyses(before, after, threshold=threshold)
        return {
            "before": job.params.get("before"),
            "after": job.params.get("after"),
            "report": report.to_dict(),
            "gate_failures": report.gate_failures(),
            "cache": {"hits": stats.hits, "misses": stats.misses},
        }

    def _job_history(self, job: Job) -> dict:
        runs = self.archive.history()
        return {
            "count": len(runs),
            "runs": [
                dict(run.to_payload(), run_id=run.run_id)
                for run in runs
            ],
        }

    def _job_campaign(self, job: Job) -> dict:
        from ..resilience import Supervisor
        from ..validation import run_validation_matrix

        specs = job.params["_specs"]
        progress: CampaignProgress = job.params["_progress"]
        supervisor = Supervisor(
            timeout=job.params.get("timeout"),
            retries=int(job.params.get("retries", 0)),
            on_event=progress.on_event,
        )
        with self._sim_lock:
            matrix = run_validation_matrix(
                specs,
                size=int(job.params.get("size", 8)),
                num_threads=int(job.params.get("threads", 4)),
                seed=int(job.params.get("seed", 0)),
                supervisor=supervisor,
                archive=self.archive,
            )
        return {
            "rows": [row.to_dict() for row in matrix.rows],
            "all_passed": matrix.all_passed,
            "positive_detection_rate": matrix.positive_detection_rate,
            "false_positive_rate": matrix.false_positive_rate,
            "progress": progress.snapshot(),
        }

    def _job_synth(self, job: Job) -> dict:
        from ..resilience import Supervisor
        from ..synth import CampaignError, run_campaign, score_result

        spec = job.params["_campaign"]
        progress: CampaignProgress = job.params["_progress"]
        supervisor = Supervisor(
            timeout=job.params.get("timeout"),
            retries=int(job.params.get("retries", spec.max_retries)),
            on_event=progress.on_event,
        )
        aborted = None
        try:
            with self._sim_lock:
                result = run_campaign(
                    spec,
                    threshold=float(
                        job.params.get("threshold", self.threshold)
                    ),
                    supervisor=supervisor,
                    archive=self.archive,
                )
        except CampaignError as exc:
            result = exc.result
            aborted = str(exc)
        score = score_result(result)
        return {
            "campaign": result.to_json_dict(),
            "score": score.to_json_dict(),
            "aborted": aborted,
            "progress": progress.snapshot(),
        }

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.MAX_FINISHED_JOBS:
            oldest_id, oldest = next(iter(self._jobs.items()))
            if not oldest.done:
                break
            del self._jobs[oldest_id]
            self._campaigns.pop(oldest_id, None)

    def _count(self, name: str) -> None:
        with self._lock:
            self._count_locked(name)

    def _count_locked(self, name: str) -> None:
        self.counts[name] += 1

    def status(self) -> dict:
        """Live service snapshot (``GET /status`` / dashboards)."""
        with self._lock:
            queue_depth = len(self._queue)
            inflight = self._inflight
            accepting = self._accepting
            counts = dict(self.counts)
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            campaigns = [
                progress.snapshot()
                for progress in self._campaigns.values()
            ]
        lookups = counts["cache_hits"] + counts["cache_misses"]
        out = {
            "uptime": time.monotonic() - self.started_at,
            "accepting": accepting,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "max_workers": self.max_workers,
            "counts": counts,
            "jobs_by_state": states,
            "cache_hit_ratio": (
                counts["cache_hits"] / lookups if lookups else None
            ),
            "campaigns": campaigns,
        }
        metrics = service_metrics()
        if metrics is not None:
            latency = {}
            for (endpoint,), child in sorted(
                metrics.request_seconds.samples()
            ):
                latency[endpoint] = {
                    "p50": child.quantile(0.50),
                    "p99": child.quantile(0.99),
                    "count": child.snapshot()[2],
                }
            out["latency"] = latency
        return out

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake and wait for queue + in-flight to empty.

        Returns False when ``timeout`` elapsed with work still
        pending (the jobs keep running; drain just stopped waiting).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._lock:
            self._accepting = False
            while self._queue or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    @property
    def accepting(self) -> bool:
        return self._accepting

    def close(self) -> None:
        self.archive.close()


def _default_detectors():
    from ..analysis import DEFAULT_DETECTORS

    return DEFAULT_DETECTORS
