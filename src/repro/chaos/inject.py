"""The in-process half of chaos delivery: armed, counted fault sites.

A :class:`HostFaultInjector` is installed process-globally (usually by
``ats serve`` reading the ``ATS_CHAOS`` environment variable the
harness set) and consulted from three low-level sites:

* :meth:`journal_record` -- every append-only journal record write
  (service job journal, archive manifest, checkpoint journals) passes
  through here; a :class:`~repro.chaos.spec.JournalWriteFault` makes
  the *n*-th write raise, optionally after tearing a partial prefix
  into the file, which is exactly the failure the journals' tail
  healing is specified against;
* :meth:`blob_write` -- archive blob writes; an
  :class:`~repro.chaos.spec.ArchiveWriteFault` raises ``OSError``
  (``ENOSPC`` by default) before any byte is written;
* :meth:`execute` / :meth:`drop_connection` -- service-level sites for
  stuck cells and dropped client connections.

The call sites find the injector through ``sys.modules`` probes (see
``repro.resilience.checkpoint._chaos_injector``), so a process that
never imports :mod:`repro.chaos` pays nothing.  Counters are
monotonic and lock-protected: given the same workload, the same plan
fires at the same points.
"""

from __future__ import annotations

import errno as _errno
import threading
import time
from pathlib import Path
from typing import Optional

from .spec import (
    ArchiveWriteFault,
    ChaosPlan,
    DropConnection,
    JournalWriteFault,
    StuckJob,
)

__all__ = [
    "ENV_VAR",
    "HostFaultInjector",
    "active",
    "install",
    "install_from_env",
    "uninstall",
]

#: the environment variable a chaos harness plants a plan in.
ENV_VAR = "ATS_CHAOS"

_active: Optional["HostFaultInjector"] = None


def _os_error(name: str) -> OSError:
    code = getattr(_errno, name, _errno.EIO)
    return OSError(code, f"injected chaos fault ({name})")


class HostFaultInjector:
    """Counted delivery of a plan's injected faults (see module doc)."""

    def __init__(self, plan: ChaosPlan, sleep=time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        #: site -> calls seen so far (1-based when compared to nth).
        self.counts = {
            "journal_record": 0,
            "blob_write": 0,
            "execute": 0,
            "respond": 0,
        }
        self._journal_faults = [
            f for f in plan.faults if isinstance(f, JournalWriteFault)
        ]
        self._blob_faults = [
            f for f in plan.faults if isinstance(f, ArchiveWriteFault)
        ]
        self._stuck = [
            f for f in plan.faults if isinstance(f, StuckJob)
        ]
        self._drops = [
            f for f in plan.faults if isinstance(f, DropConnection)
        ]

    def _bump(self, site: str) -> int:
        with self._lock:
            self.counts[site] += 1
            return self.counts[site]

    @staticmethod
    def _hits(fault, n: int) -> bool:
        return fault.nth <= n < fault.nth + fault.count

    # ------------------------------------------------------------------
    # sites
    # ------------------------------------------------------------------

    def journal_record(self, path: Path, fh, line: str) -> None:
        """Consulted before every journal record append; may raise."""
        n = self._bump("journal_record")
        for fault in self._journal_faults:
            if self._hits(fault, n):
                if fault.torn:
                    cut = max(1, len(line) // 2)
                    fh.write(line[:cut])
                    fh.flush()
                raise _os_error(fault.error)

    def blob_write(self, path: Path, data: bytes) -> None:
        """Consulted before every archive blob write; may raise."""
        n = self._bump("blob_write")
        for fault in self._blob_faults:
            if self._hits(fault, n):
                raise _os_error(fault.error)

    def execute(self, kind: str) -> None:
        """Consulted at job-execution start; may wedge the worker."""
        n = self._bump("execute")
        for fault in self._stuck:
            if n == fault.nth:
                self._sleep(fault.hold)

    def drop_connection(self) -> bool:
        """True when the current HTTP response should be dropped."""
        n = self._bump("respond")
        return any(self._hits(fault, n) for fault in self._drops)


# ----------------------------------------------------------------------
# process-global installation
# ----------------------------------------------------------------------

def active() -> Optional[HostFaultInjector]:
    """The installed injector, or None (the fast path)."""
    return _active


def install(injector: HostFaultInjector) -> HostFaultInjector:
    global _active
    _active = injector
    return injector


def uninstall() -> None:
    global _active
    _active = None


def install_from_env(environ=None) -> Optional[HostFaultInjector]:
    """Arm the injector from ``ATS_CHAOS`` when present.

    Called by ``ats serve`` at startup; the variable carries a
    :meth:`ChaosPlan.to_dict` JSON payload.  Returns the installed
    injector, or None when the variable is absent/empty.
    """
    import json
    import os

    raw = (environ or os.environ).get(ENV_VAR, "")
    if not raw:
        return None
    plan = ChaosPlan.from_dict(json.loads(raw))
    return install(HostFaultInjector(plan))
