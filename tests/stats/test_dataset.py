"""Dataset export: ground-truth labels, caching, serialization."""

import json

import pytest

from repro.archive import Archive, CacheStats
from repro.stats import (
    ROW_REQUIRED_KEYS,
    dataset_rows,
    feature_cell_key,
    rows_to_csv,
    rows_to_jsonl,
    validate_row,
)
from repro.synth import CampaignSpec, run_campaign


@pytest.fixture(scope="module")
def campaign_archive(tmp_path_factory):
    archive = Archive(tmp_path_factory.mktemp("ds") / "archive")
    spec = CampaignSpec(
        name="ds-test", scenarios=6, sizes=(4,), seed=3
    )
    run_campaign(spec, archive=archive)
    return archive


def _labeled(archive):
    return [r for r in archive.history() if r.manifest is not None]


def test_cold_then_warm_export_byte_identical(campaign_archive):
    # runs first: the module-scoped archive has no feature cells yet
    cold = CacheStats()
    cold_rows = dataset_rows(campaign_archive, stats=cold)
    assert cold.misses == len(_labeled(campaign_archive))
    assert cold.hits == 0
    warm = CacheStats()
    warm_rows = dataset_rows(campaign_archive, stats=warm)
    assert warm.misses == 0
    assert warm.hits == len(_labeled(campaign_archive))
    assert rows_to_jsonl(warm_rows) == rows_to_jsonl(cold_rows)
    assert rows_to_csv(warm_rows) == rows_to_csv(cold_rows)


def test_rows_join_manifest_ground_truth(campaign_archive):
    rows = dataset_rows(campaign_archive)
    assert rows
    runs = {run.run_id: run for run in campaign_archive.history()}
    by_run = {}
    for row in rows:
        by_run.setdefault(row.run_id, []).append(row)
    for run_id, run_rows in by_run.items():
        manifest = runs[run_id].manifest
        expected = tuple(manifest["expected"])
        # cell labels round-trip the manifest's expected set exactly
        assert all(r.cell_labels == expected for r in run_rows)
        # per-rank labels honor the manifest's localized ground truth
        localized = {}
        for loc in manifest.get("locations", ()):
            for rank in loc["ranks"]:
                localized.setdefault(rank, set()).add(loc["property"])
        for row in run_rows:
            assert set(row.labels) == localized.get(row.rank, set())
        # every localized label names an expected property
        assert set().union(
            set(), *(set(r.labels) for r in run_rows)
        ) <= set(expected)


def test_rows_skip_unlabeled_runs(tmp_path):
    from repro.core import get_property

    archive = Archive(tmp_path / "plain")
    archive.archive_run(get_property("late_sender"), size=4, seed=1)
    assert dataset_rows(archive) == []


def test_jsonl_rows_validate_against_schema(campaign_archive):
    rows = dataset_rows(campaign_archive)
    for line in rows_to_jsonl(rows).splitlines():
        payload = json.loads(line)
        validate_row(payload)
        assert set(ROW_REQUIRED_KEYS) <= set(payload)


def test_csv_has_one_dense_column_per_feature(campaign_archive):
    rows = dataset_rows(campaign_archive)
    lines = rows_to_csv(rows).splitlines()
    header = lines[0].split(",")
    names = sorted({name for row in rows for name, _ in row.features})
    assert header[-len(names):] == names
    assert len(lines) == len(rows) + 1
    for line in lines[1:]:
        assert len(line.split(",")) == len(header)


def test_warm_export_never_reads_the_trace_blob(campaign_archive):
    # runs last: it destroys one trace blob of the shared archive
    dataset_rows(campaign_archive)  # populate feature cells
    run = _labeled(campaign_archive)[0]
    assert campaign_archive.store.get_named(
        feature_cell_key(run.trace_digest)
    ) is not None
    campaign_archive.store._blob_path(run.trace_digest).unlink()
    rows = dataset_rows(campaign_archive)  # assembles from cells alone
    assert any(r.run_id == run.run_id for r in rows)


def test_validate_row_rejects_bad_payloads():
    with pytest.raises(ValueError, match="missing key"):
        validate_row({"format": "ats-dataset-row"})
    good = {key: 0 for key in ROW_REQUIRED_KEYS}
    good.update(format="ats-dataset-row", features={"x": 0.5})
    validate_row(good)
    with pytest.raises(ValueError, match="not a dataset row"):
        validate_row(dict(good, format="other"))
    with pytest.raises(ValueError, match="not numeric"):
        validate_row(dict(good, features={"x": "high"}))
