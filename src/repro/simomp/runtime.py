"""Standalone OpenMP program runner.

``run_omp(main, ...)`` is the shared-memory analogue of
:func:`repro.simmpi.run_mpi`: it runs ``main()`` as the sequential
master of an OpenMP program (rank 0) on a fresh simulator, with tracing
bound, and packages the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..simkernel import Simulator, current_process
from ..trace.api import bind_instrumentation
from ..trace.events import Event, Location
from ..trace.recorder import TraceRecorder
from ..trace.stats import TraceProfile, profile_trace
from ..trace.timeline import render_timeline


@dataclass
class OmpRunResult:
    """Result of a standalone OpenMP program run."""

    final_time: float
    result: Any
    recorder: Optional[TraceRecorder]
    num_threads: int

    @property
    def events(self) -> list[Event]:
        return self.recorder.events if self.recorder is not None else []

    def timeline(self, width: int = 100, title: str = "") -> str:
        return render_timeline(
            self.events, width=width, t_end=self.final_time, title=title
        )

    def profile(self) -> TraceProfile:
        return profile_trace(self.events)


def run_omp(
    main: Callable[..., Any],
    *args: Any,
    num_threads: int = 4,
    trace: bool = True,
    intrusion: float = 0.0,
    seed: int = 0,
    faults=None,
    time_budget: Optional[float] = None,
    **kwargs: Any,
) -> OmpRunResult:
    """Run ``main(*args, **kwargs)`` as an OpenMP master process.

    ``num_threads`` sets the default team size used by parallel
    regions that do not pass one explicitly (the ``OMP_NUM_THREADS``
    analogue).  ``faults`` takes a :class:`~repro.faults.FaultPlan` or
    :class:`~repro.faults.FaultInjector`, as in
    :func:`repro.simmpi.run_mpi` (message perturbations are inert in a
    shared-memory run; timing jitter and stragglers apply).
    ``time_budget`` arms the kernel watchdog (see
    :meth:`repro.simkernel.Simulator.run`).
    """
    from ..faults.inject import FaultInjector

    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    recorder = (
        TraceRecorder(intrusion_per_event=intrusion) if trace else None
    )
    sim = Simulator(seed=seed)
    injector = FaultInjector.coerce(faults, seed=seed)
    if injector is not None:
        sim.fault_injector = injector

    def master() -> Any:
        proc = current_process()
        proc.context["omp_default_threads"] = num_threads
        proc.context["rng"] = sim.rng.spawn(0)
        bind_instrumentation(recorder, Location(0, 0))
        return main(*args, **kwargs)

    sim.spawn(master, name="master")
    final_time = sim.run(budget=time_budget)
    if recorder is not None:
        recorder.finish()
    return OmpRunResult(
        final_time=final_time,
        result=sim.results().get("master"),
        recorder=recorder,
        num_threads=num_threads,
    )
