"""Simulated MPI runtime.

A from-scratch MPI substitute on the discrete-event kernel: blocking
and nonblocking point-to-point with eager/rendezvous protocols,
communicator management, algorithmic collectives and the communication
patterns of paper section 3.1.4 -- deterministic, traced, and faithful
to the waiting-time semantics the ATS performance properties rely on.
"""

from .buffers import (
    MpiBuf,
    MpiVBuf,
    alloc_mpi_buf,
    alloc_mpi_vbuf,
    free_mpi_buf,
    free_mpi_vbuf,
)
from .communicator import Communicator
from .datatypes import (
    ALL_DATATYPES,
    ALL_OPS,
    MPI_BYTE,
    MPI_CHAR,
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    Datatype,
    Op,
)
from .errors import (
    CommMismatchError,
    InvalidRankError,
    InvalidTagError,
    MpiError,
    RequestError,
    TruncationError,
)
from .patterns import (
    PATTERN_TAG,
    mpi_commpattern_sendrecv,
    mpi_commpattern_shift,
)
from .request import Request
from .runtime import CollectiveTuning, MpiWorld, RunResult, run_mpi
from .status import ANY_SOURCE, ANY_TAG, DIR_DOWN, DIR_UP, PROC_NULL, Status
from .topology import CartComm, cart_create, dims_create
from .transport import P2PEngine, TransportParams

__all__ = [
    "ALL_DATATYPES",
    "ALL_OPS",
    "ANY_SOURCE",
    "ANY_TAG",
    "CartComm",
    "CollectiveTuning",
    "CommMismatchError",
    "Communicator",
    "DIR_DOWN",
    "DIR_UP",
    "Datatype",
    "InvalidRankError",
    "InvalidTagError",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_DOUBLE",
    "MPI_FLOAT",
    "MPI_INT",
    "MPI_LONG",
    "MPI_MAX",
    "MPI_MIN",
    "MPI_PROD",
    "MPI_SUM",
    "MpiBuf",
    "MpiError",
    "MpiVBuf",
    "MpiWorld",
    "Op",
    "P2PEngine",
    "PROC_NULL",
    "PATTERN_TAG",
    "Request",
    "RequestError",
    "RunResult",
    "Status",
    "TransportParams",
    "TruncationError",
    "alloc_mpi_buf",
    "cart_create",
    "dims_create",
    "alloc_mpi_vbuf",
    "free_mpi_buf",
    "free_mpi_vbuf",
    "mpi_commpattern_sendrecv",
    "mpi_commpattern_shift",
    "run_mpi",
]
