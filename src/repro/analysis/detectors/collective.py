"""Collective pattern detectors.

Each detector groups the per-participant ``CollExit`` events of one
collective call (by communicator and instance) and applies the
published waiting-time formula:

* **wait at barrier / NxN**: everyone waits from their own enter until
  the last participant enters,
* **late broadcast/scatter(v)**: non-roots cannot proceed before the
  root enters; their wait is the root's lateness,
* **early reduce/gather(v)**: the root cannot complete before the last
  contributor enters; its wait is that gap.

Also here: the *MPI init/finalize overhead* property the paper observes
in figure 3.2.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...trace.events import Event
from ..model import Finding
from .base import AnalysisConfig, collective_instances, iter_region_visits

#: ops whose completion synchronizes all participants
_NXN_OPS = {
    "MPI_Alltoall": "wait_at_nxn",
    "MPI_Allreduce": "wait_at_nxn",
    "MPI_Allgather": "wait_at_nxn",
    "MPI_Reduce_scatter": "wait_at_nxn",
}

#: 1-to-N ops: root is the data source; property id per op
_LATE_ROOT_OPS = {
    "MPI_Bcast": "late_broadcast",
    "MPI_Scatter": "late_scatter",
    "MPI_Scatterv": "late_scatterv",
}

#: N-to-1 ops: root is the data sink; property id per op
_EARLY_ROOT_OPS = {
    "MPI_Reduce": "early_reduce",
    "MPI_Gather": "early_gather",
    "MPI_Gatherv": "early_gatherv",
}


class WaitAtBarrierDetector:
    """Imbalance observed at ``MPI_Barrier``."""

    produces = ("wait_at_barrier",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for (_, _, op), group in collective_instances(events).items():
            if op != "MPI_Barrier":
                continue
            last_enter = max(e.enter_time for e in group)
            for e in group:
                wait = last_enter - e.enter_time
                if wait > config.noise_floor:
                    yield Finding("wait_at_barrier", e.path, e.loc, wait)


class WaitAtNxNDetector:
    """Imbalance observed at synchronizing N-to-N collectives."""

    produces = ("wait_at_nxn",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for (_, _, op), group in collective_instances(events).items():
            prop = _NXN_OPS.get(op)
            if prop is None:
                continue
            last_enter = max(e.enter_time for e in group)
            for e in group:
                wait = last_enter - e.enter_time
                if wait > config.noise_floor:
                    yield Finding(prop, e.path, e.loc, wait)


class LateRootDetector:
    """Late broadcast / scatter / scatterv: the root enters last."""

    produces = tuple(sorted(set(_LATE_ROOT_OPS.values())))

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for (_, _, op), group in collective_instances(events).items():
            prop = _LATE_ROOT_OPS.get(op)
            if prop is None:
                continue
            root_events = [e for e in group if e.loc.rank == e.root]
            if not root_events:
                continue
            root_enter = root_events[0].enter_time
            for e in group:
                if e.loc.rank == e.root:
                    continue
                wait = root_enter - e.enter_time
                if wait > config.noise_floor:
                    yield Finding(prop, e.path, e.loc, wait)


class EarlyRootDetector:
    """Early reduce / gather / gatherv: the root enters first."""

    produces = tuple(sorted(set(_EARLY_ROOT_OPS.values())))

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for (_, _, op), group in collective_instances(events).items():
            prop = _EARLY_ROOT_OPS.get(op)
            if prop is None:
                continue
            root_events = [e for e in group if e.loc.rank == e.root]
            others = [e for e in group if e.loc.rank != e.root]
            if not root_events or not others:
                continue
            root = root_events[0]
            last_contributor = max(e.enter_time for e in others)
            wait = last_contributor - root.enter_time
            if wait > config.noise_floor:
                yield Finding(prop, root.path, root.loc, wait)


class InitOverheadDetector:
    """High MPI initialization/finalization overhead (figure 3.2).

    The whole inclusive time of ``MPI_Init``/``MPI_Finalize`` counts:
    it is unavoidable framework overhead, significant exactly when the
    program is small -- the paper's observation about its own test
    programs.
    """

    produces = ("mpi_init_overhead",)

    def detect(
        self, events: Sequence[Event], config: AnalysisConfig
    ) -> Iterable[Finding]:
        for visit in iter_region_visits(events):
            if visit.region in ("MPI_Init", "MPI_Finalize"):
                if visit.inclusive > config.noise_floor:
                    yield Finding(
                        "mpi_init_overhead",
                        visit.path,
                        visit.loc,
                        visit.inclusive,
                    )
