"""Unit tests for the analysis result model."""

import pytest

from repro.analysis import AnalysisResult, Finding
from repro.trace import Location

L0, L1 = Location(0, 0), Location(1, 0)


def make_result():
    findings = [
        Finding("late_sender", ("main", "MPI_Recv"), L1, 2.0),
        Finding("late_sender", ("main", "MPI_Recv"), L1, 1.0),
        Finding("late_sender", ("other", "MPI_Recv"), L0, 1.0),
        Finding("wait_at_barrier", ("main", "MPI_Barrier"), L0, 4.0),
    ]
    return AnalysisResult(
        findings=findings, total_time=10.0, locations=[L0, L1]
    )


def test_total_allocation():
    assert make_result().total_allocation == 20.0


def test_severity_all():
    assert make_result().severity() == pytest.approx(8.0 / 20.0)


def test_severity_by_property():
    res = make_result()
    assert res.severity(property="late_sender") == pytest.approx(0.2)
    assert res.severity(property="wait_at_barrier") == pytest.approx(0.2)
    assert res.severity(property="nothing") == 0.0


def test_severity_by_callpath_and_location():
    res = make_result()
    assert res.severity(
        property="late_sender", callpath=("main", "MPI_Recv")
    ) == pytest.approx(0.15)
    assert res.severity(property="late_sender", loc=L0) == pytest.approx(
        0.05
    )


def test_severities_by_property_sorted_descending():
    res = make_result()
    items = list(res.severities_by_property().items())
    assert items[0][1] >= items[1][1]


def test_detected_threshold():
    res = make_result()
    assert set(res.detected(0.01)) == {"late_sender", "wait_at_barrier"}
    assert res.detected(0.21) == ()


def test_callpaths_of():
    res = make_result()
    paths = res.callpaths_of("late_sender")
    assert paths[("main", "MPI_Recv")] == pytest.approx(0.15)
    assert paths[("other", "MPI_Recv")] == pytest.approx(0.05)


def test_locations_of_with_and_without_callpath():
    res = make_result()
    locs = res.locations_of("late_sender")
    assert locs[L1] == pytest.approx(0.15)
    locs_scoped = res.locations_of("late_sender", ("other", "MPI_Recv"))
    assert set(locs_scoped) == {L0}


def test_ranked_order():
    res = make_result()
    ranked = res.ranked()
    assert [p for p, _ in ranked] in (
        ["late_sender", "wait_at_barrier"],
        ["wait_at_barrier", "late_sender"],
    )


def test_negative_wait_rejected():
    with pytest.raises(ValueError):
        Finding("x", (), L0, -1.0)


def test_empty_result():
    res = AnalysisResult(findings=[], total_time=0.0, locations=[])
    assert res.severity() == 0.0
    assert res.detected() == ()
    assert res.severities_by_property() == {}
