"""Append-only JSONL checkpoint journal for supervised sweeps.

One line per completed cell, written (and flushed) the moment the cell
finishes, so a killed sweep loses at most the cell that was in flight.
The format is deliberately dumb:

* line 1 -- a header record ``{"format": "ats-checkpoint", ...}``,
* every further line -- ``{"key": <cell key>, "payload": {...}}``.

``load()`` tolerates exactly the corruption a kill can produce: a
partial JSON tail on the *final* line (the write that was interrupted)
is discarded; corruption anywhere else is a real error and raises.
Duplicate keys keep the last record, so re-running a cell simply
supersedes its earlier outcome.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

_FORMAT = "ats-checkpoint"
_VERSION = 1


class CheckpointError(Exception):
    """The journal is corrupt beyond the tolerated partial tail."""


class CheckpointJournal:
    """Durable per-cell outcome journal (see module docstring).

    ``fmt`` names the journal format in the header line; other
    subsystems reuse the healing/append machinery under their own
    format name (the archive manifest is ``ats-archive-manifest``),
    and a journal refuses to load a file of a different format.
    """

    def __init__(self, path: Union[str, Path], fmt: str = _FORMAT):
        self.path = Path(path)
        self.fmt = fmt
        self._fh = None

    # ------------------------------------------------------------------
    # reading (resume)
    # ------------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """Return ``key -> payload`` for every journaled cell.

        Missing file means a fresh sweep: an empty mapping.  A partial
        final line (interrupted write) is silently dropped.
        """
        if not self.path.exists():
            return {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path}:1: corrupt checkpoint header"
            ) from exc
        if header.get("format") != self.fmt:
            raise CheckpointError(
                f"{self.path}: not an {self.fmt} journal"
            )
        done: Dict[str, dict] = {}
        last = len(lines) - 1
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno - 1 == last:
                    break  # interrupted final write; the cell re-runs
                raise CheckpointError(
                    f"{self.path}:{lineno}: corrupt checkpoint record"
                ) from None
            if "key" not in record or "payload" not in record:
                raise CheckpointError(
                    f"{self.path}:{lineno}: malformed checkpoint record"
                )
            done[record["key"]] = record["payload"]
        return done

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists():
                self._heal_partial_tail()
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._fh.write(
                    json.dumps({"format": self.fmt, "version": _VERSION})
                    + "\n"
                )
                self._fh.flush()
        return self._fh

    def _heal_partial_tail(self) -> None:
        """Cut an interrupted final write before appending after it.

        Without this, the first append of a resumed sweep would glue
        its record onto the partial line, corrupting both.  ``load()``
        already ignores the partial tail, so cutting it loses nothing.
        """
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            with open(self.path, "r+b") as fh:
                fh.truncate(cut)

    def record(self, key: str, payload: dict) -> None:
        """Append one completed cell and flush it to the OS immediately."""
        fh = self._open()
        fh.write(
            json.dumps({"key": key, "payload": payload}, sort_keys=True)
            + "\n"
        )
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def coerce_journal(
    checkpoint: Union[None, str, Path, CheckpointJournal],
) -> Optional[CheckpointJournal]:
    """Accept a path or a journal; ``None`` stays ``None``."""
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return CheckpointJournal(checkpoint)
