"""Job model for the analysis service.

A :class:`Job` is one unit of asynchronous work flowing through
:class:`~repro.service.server.AnalysisService`: submitted over HTTP,
queued, executed on a pooled worker thread, and polled (or awaited)
by its submitter.  Jobs carry the request id of the submission that
created them end to end -- the same id shows up in the HTTP response,
the ``/jobs/<id>`` record, and every obs span the job's lifecycle
records.

Coalescing is keyed by :meth:`Job.coalesce_key`: two jobs whose keys
match are *the same computation* -- for an analyze job the key is the
``(trace digest, detector-set fingerprint)`` pair that also keys the
archive's incremental cache, so "identical" here means identical by
construction, not by request text.  The service maps each in-flight
key to its primary job and hands duplicates that job back instead of
queueing a second copy.

:class:`CampaignProgress` adapts :class:`repro.resilience.Supervisor`
progress events into a thread-safe live counter block that ``/status``
and the dashboards render while a campaign is still running.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "CampaignProgress",
    "Job",
]

#: every job kind the service executes.
JOB_KINDS = ("run", "analyze", "diff", "history", "campaign", "synth")

#: lifecycle: queued -> running -> done | failed.
JOB_STATES = ("queued", "running", "done", "failed")

_ids = itertools.count(1)


def _next_job_id() -> str:
    return f"job-{next(_ids):06d}"


class Job:
    """One queued/running/finished unit of service work."""

    __slots__ = (
        "id", "kind", "params", "tenant", "request_id", "state",
        "result", "error", "coalesced", "coalesce_key",
        "created", "started", "finished",
        "_done_event", "_callbacks", "_lock",
    )

    def __init__(
        self,
        kind: str,
        params: Dict[str, Any],
        tenant: str = "default",
        request_id: str = "",
        coalesce_key: Optional[Tuple] = None,
    ):
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}")
        self.id = _next_job_id()
        self.kind = kind
        self.params = params
        self.tenant = tenant
        self.request_id = request_id
        self.state = "queued"
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        #: how many duplicate submissions this job absorbed.
        self.coalesced = 0
        self.coalesce_key = coalesce_key
        self.created = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._done_event = threading.Event()
        self._callbacks: List[Callable[["Job"], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle (driven by the service, under its queue lock)
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    def mark_running(self) -> None:
        self.state = "running"
        self.started = time.monotonic()

    def resolve(
        self, result: Optional[dict], error: Optional[str]
    ) -> None:
        """Finish the job and fire every completion callback.

        Callbacks registered after resolution fire immediately from
        :meth:`add_done_callback`, so there is no window where a
        late awaiter misses the result.
        """
        with self._lock:
            self.finished = time.monotonic()
            if error is None:
                self.state = "done"
                self.result = result
            else:
                self.state = "failed"
                self.error = error
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        self._done_event.set()
        for callback in callbacks:
            callback(self)

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------

    def add_done_callback(
        self, callback: Callable[["Job"], None]
    ) -> None:
        """Invoke ``callback(job)`` at resolution (now, if resolved).

        Callbacks run on whichever thread resolves the job -- a pooled
        worker.  Event-loop callers must bounce through
        ``loop.call_soon_threadsafe``.
        """
        with self._lock:
            if not self._done_event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; False on timeout (sync callers/tests)."""
        return self._done_event.wait(timeout)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued, once execution has started."""
        if self.started is None:
            return None
        return self.started - self.created

    def to_dict(self, include_result: bool = True) -> dict:
        out = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "coalesced": self.coalesced,
            "queue_wait": self.queue_wait(),
            "elapsed": (
                (self.finished - self.created)
                if self.finished is not None
                else time.monotonic() - self.created
            ),
        }
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out

    def __repr__(self) -> str:
        return f"<Job {self.id} {self.kind} {self.state}>"


class CampaignProgress:
    """Thread-safe live cell counters fed by Supervisor events.

    An instance's :meth:`on_event` is handed to
    :class:`~repro.resilience.Supervisor` as the ``on_event`` callback;
    the supervised sweep then drives these counters from whatever
    thread runs cells.  ``/status`` snapshots the counters while the
    campaign is in flight, which is what makes ``ats watch`` and the
    HTML dashboard live rather than after-the-fact.
    """

    __slots__ = (
        "job_id", "total", "started", "done", "failed",
        "retried", "resumed", "recent", "_lock",
    )

    def __init__(self, job_id: str, total: int = 0):
        self.job_id = job_id
        self.total = total
        self.started = 0
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.resumed = 0
        #: most recent events, newest last (dashboard tail).
        self.recent: deque = deque(maxlen=16)
        self._lock = threading.Lock()

    def on_event(self, event: dict) -> None:
        """Supervisor ``on_event`` callback (see PROGRESS_EVENTS)."""
        with self._lock:
            name = event.get("event")
            if name == "cell-started":
                if event.get("attempt", 1) == 1:
                    self.started += 1
            elif name == "cell-retry":
                self.retried += 1
            elif name == "cell-done":
                self.done += 1
            elif name == "cell-quarantined":
                self.failed += 1
            elif name == "cell-resumed":
                self.resumed += 1
            self.recent.append(
                {
                    "event": name,
                    "key": event.get("key", ""),
                    "ts": event.get("ts"),
                }
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "job_id": self.job_id,
                "total": self.total,
                "started": self.started,
                "done": self.done,
                "failed": self.failed,
                "retried": self.retried,
                "resumed": self.resumed,
                "recent": list(self.recent),
            }
