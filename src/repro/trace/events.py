"""Trace event model.

Event records follow the conventions of measurement systems like
EPILOG/OTF that tools such as EXPERT and Vampir consume:

* ``Enter``/``Exit`` bracket every instrumented region (MPI calls,
  OpenMP constructs, ``work`` phases, user regions) per *location*,
* ``Send``/``Recv`` describe point-to-point messages; matching pairs
  share a ``msg_id``,
* ``CollExit`` is emitted by every participant when it completes a
  collective operation and carries enough metadata (operation, root,
  instance, own enter time) for pattern analysis,
* ``Fork``/``Join`` bracket OpenMP team creation.

Timestamps are virtual seconds from the simulation kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

CallPath = Tuple[str, ...]


def _base_dict(event: "Event") -> dict[str, Any]:
    # NB: plain function instead of super().to_dict(): zero-argument
    # super() does not work inside @dataclass(slots=True) subclasses
    # (the decorator replaces the class, invalidating __class__ cells).
    return {"kind": event.kind, "time": event.time, "loc": str(event.loc)}


class Location(tuple):
    """A locus of execution: (process rank, thread id).

    Pure MPI programs use thread 0; pure OpenMP programs use rank 0.
    This is the same location model EXPERT uses for its third result
    dimension.  Implemented as a tuple subclass so hashing, equality
    and ordering are the C tuple slots — locations key every
    per-location dict on the recording hot path, and the tuple hash is
    bit-identical to the previous ``hash((rank, thread))``, so dict
    and set behaviour is unchanged.
    """

    __slots__ = ()

    def __new__(cls, rank: int = 0, thread: int = 0) -> "Location":
        return tuple.__new__(cls, (rank, thread))

    @property
    def rank(self) -> int:
        return self[0]

    @property
    def thread(self) -> int:
        return self[1]

    def __repr__(self) -> str:
        return f"Location(rank={self[0]}, thread={self[1]})"

    def __str__(self) -> str:
        return f"{self[0]}.{self[1]}"

    def __getnewargs__(self) -> Tuple[int, int]:
        return (self[0], self[1])

    @classmethod
    def parse(cls, text: str) -> "Location":
        rank, _, thread = text.partition(".")
        return cls(int(rank), int(thread or 0))


@dataclass(slots=True)
class Event:
    """Base class: a timestamped record at one location."""

    time: float
    loc: Location

    kind = "event"

    def to_dict(self) -> dict[str, Any]:
        return _base_dict(self)


@dataclass(slots=True)
class Enter(Event):
    """Entry into an instrumented region."""

    region: str = ""
    #: full call path including ``region`` as last element
    path: CallPath = ()

    kind = "enter"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(region=self.region, path=list(self.path))
        return d


@dataclass(slots=True)
class Exit(Event):
    """Exit from an instrumented region."""

    region: str = ""
    path: CallPath = ()

    kind = "exit"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(region=self.region, path=list(self.path))
        return d


@dataclass(slots=True)
class Send(Event):
    """A point-to-point send, recorded when the send call starts.

    ``peer`` is the destination as a *global* rank; ``comm_id``
    identifies the communicator; ``internal`` marks traffic generated
    inside collective algorithms (excluded from p2p pattern analysis).
    """

    peer: int = -1
    tag: int = 0
    comm_id: int = 0
    nbytes: int = 0
    msg_id: int = -1
    path: CallPath = ()
    internal: bool = False

    kind = "send"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(
            peer=self.peer,
            tag=self.tag,
            comm_id=self.comm_id,
            nbytes=self.nbytes,
            msg_id=self.msg_id,
            path=list(self.path),
            internal=self.internal,
        )
        return d


@dataclass(slots=True)
class Recv(Event):
    """A point-to-point receive, recorded at completion.

    ``time`` is the completion time; ``post_time`` is when the receive
    was posted (enter of the blocking call / the irecv).  The matching
    ``Send`` shares ``msg_id``.
    """

    peer: int = -1
    tag: int = 0
    comm_id: int = 0
    nbytes: int = 0
    msg_id: int = -1
    post_time: float = 0.0
    path: CallPath = ()
    internal: bool = False

    kind = "recv"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(
            peer=self.peer,
            tag=self.tag,
            comm_id=self.comm_id,
            nbytes=self.nbytes,
            msg_id=self.msg_id,
            post_time=self.post_time,
            path=list(self.path),
            internal=self.internal,
        )
        return d


@dataclass(slots=True)
class CollExit(Event):
    """Completion of a collective operation by one participant.

    ``instance`` is the per-communicator collective sequence number, so
    events of the same collective call group by ``(comm_id, instance)``.
    ``root`` is the global rank of the root (or ``-1`` for rootless
    operations such as barrier/alltoall).
    """

    op: str = ""
    comm_id: int = 0
    instance: int = -1
    root: int = -1
    enter_time: float = 0.0
    bytes_sent: int = 0
    bytes_recv: int = 0
    path: CallPath = ()

    kind = "coll"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(
            op=self.op,
            comm_id=self.comm_id,
            instance=self.instance,
            root=self.root,
            enter_time=self.enter_time,
            bytes_sent=self.bytes_sent,
            bytes_recv=self.bytes_recv,
            path=list(self.path),
        )
        return d


@dataclass(slots=True)
class Fork(Event):
    """OpenMP team fork, recorded at the master location."""

    team_size: int = 0
    team_id: int = -1
    path: CallPath = ()

    kind = "fork"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(
            team_size=self.team_size,
            team_id=self.team_id,
            path=list(self.path),
        )
        return d


@dataclass(slots=True)
class Join(Event):
    """OpenMP team join, recorded at the master location."""

    team_id: int = -1
    path: CallPath = ()

    kind = "join"

    def to_dict(self) -> dict[str, Any]:
        d = _base_dict(self)
        d.update(team_id=self.team_id, path=list(self.path))
        return d


_EVENT_TYPES = {
    cls.kind: cls for cls in (Enter, Exit, Send, Recv, CollExit, Fork, Join)
}


def event_from_dict(d: dict[str, Any]) -> Event:
    """Inverse of ``Event.to_dict`` (used by the trace reader)."""
    d = dict(d)
    kind = d.pop("kind")
    try:
        cls = _EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None
    d["loc"] = Location.parse(d["loc"])
    if "path" in d:
        d["path"] = tuple(d["path"])
    return cls(**d)
