"""Package-level smoke tests: public API surface and metadata."""

import importlib

import pytest

import repro


def test_version_matches_pyproject():
    import pathlib

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    text = pyproject.read_text()
    assert f'version = "{repro.__version__}"' in text


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.simkernel",
        "repro.work",
        "repro.distributions",
        "repro.simmpi",
        "repro.simomp",
        "repro.trace",
        "repro.core",
        "repro.core.properties",
        "repro.analysis",
        "repro.asl",
        "repro.validation",
        "repro.apps",
        "repro.cli",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_public_docstrings_everywhere():
    """Every public module and every __all__ item carries a docstring."""
    undocumented = []
    for module_name in (
        "repro.simkernel", "repro.simmpi", "repro.simomp",
        "repro.trace", "repro.core", "repro.analysis", "repro.asl",
        "repro.validation", "repro.apps",
    ):
        mod = importlib.import_module(module_name)
        if not mod.__doc__:
            undocumented.append(module_name)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if not callable(obj):
                continue
            if not isinstance(obj, type) and not hasattr(
                obj, "__module__"
            ):
                continue  # typing aliases etc.
            if getattr(obj, "__module__", "").startswith("typing"):
                continue
            if not getattr(obj, "__doc__", None):
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, undocumented


def test_end_to_end_one_liner():
    """The README quickstart, as a test."""
    from repro import analyze_run, format_expert_report, get_property

    result = get_property("late_sender").run(size=8)
    report = format_expert_report(analyze_run(result))
    assert "late_sender" in report
