"""Circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.service.breaker import BreakerOpen, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)


class TestClosed:
    def test_unknown_cell_admits(self, breaker):
        breaker.check("cell-a")  # no raise

    def test_failures_below_threshold_admit(self, breaker):
        breaker.record_failure("a")
        breaker.record_failure("a")
        breaker.check("a")

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure("a")
        breaker.record_failure("a")
        breaker.record_success("a")
        breaker.record_failure("a")
        breaker.record_failure("a")
        breaker.check("a")  # still closed: count restarted


class TestOpen:
    def test_threshold_opens(self, breaker):
        for _ in range(3):
            breaker.record_failure("a")
        with pytest.raises(BreakerOpen) as exc:
            breaker.check("a")
        assert exc.value.key == "a"
        assert exc.value.retry_after == pytest.approx(10.0)

    def test_other_cells_unaffected(self, breaker):
        for _ in range(3):
            breaker.record_failure("a")
        breaker.check("b")

    def test_retry_after_counts_down(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("a")
        clock.advance(4.0)
        with pytest.raises(BreakerOpen) as exc:
            breaker.check("a")
        assert exc.value.retry_after == pytest.approx(6.0)


class TestHalfOpen:
    def _open(self, breaker):
        for _ in range(3):
            breaker.record_failure("a")

    def test_cooldown_admits_one_probe(self, breaker, clock):
        self._open(breaker)
        clock.advance(10.0)
        breaker.check("a")  # the probe
        with pytest.raises(BreakerOpen):
            breaker.check("a")  # concurrent submissions stay out

    def test_probe_success_closes(self, breaker, clock):
        self._open(breaker)
        clock.advance(10.0)
        breaker.check("a")
        breaker.record_success("a")
        breaker.check("a")
        assert breaker.open_count() == 0

    def test_probe_failure_reopens(self, breaker, clock):
        self._open(breaker)
        clock.advance(10.0)
        breaker.check("a")
        breaker.record_failure("a")
        with pytest.raises(BreakerOpen):
            breaker.check("a")
        # and a fresh cooldown applies
        clock.advance(10.0)
        breaker.check("a")


class TestObservability:
    def test_transitions_observed(self, clock):
        seen = []
        breaker = CircuitBreaker(
            threshold=1, cooldown=5.0, clock=clock,
            on_transition=lambda key, state: seen.append((key, state)),
        )
        breaker.record_failure("a")
        clock.advance(5.0)
        breaker.check("a")
        breaker.record_success("a")
        assert seen == [
            ("a", "open"), ("a", "half-open"), ("a", "closed"),
        ]

    def test_snapshot_lists_evicted_cells(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("a")
        clock.advance(3.0)
        snap = breaker.snapshot()
        assert len(snap) == 1
        assert snap[0]["cell"] == "a"
        assert snap[0]["state"] == "open"
        assert snap[0]["retry_after"] == pytest.approx(7.0)

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestServiceIntegration:
    def test_crashing_cell_evicted_and_503(self, tmp_path):
        from repro.archive import Archive
        from repro.service.server import AnalysisService

        service = AnalysisService(
            Archive(tmp_path / "archive"),
            max_workers=2,
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )

        def crash(job):
            raise RuntimeError("injected cell crash")

        service._job_history = crash
        # identical submissions crash the same cell twice
        for _ in range(2):
            job, _ = service.submit("history", {})
            assert job.wait(30)
            assert job.state == "failed"
            assert "injected cell crash" in job.error
        with pytest.raises(BreakerOpen):
            service.submit("history", {})
        assert service.counts["evicted"] == 1
        assert service.status()["breakers"][0]["state"] == "open"
        assert service.status()["breakers"][0]["cell"] == "history"
        # a different cell still flows
        job, _ = service.submit(
            "run",
            {"property": "balanced_omp_loop", "size": 4,
             "threads": 2},
        )
        assert job.wait(60)
        assert job.state == "done"
        service.close()
