"""CLI surface of the trace archive: run, analyze, history, diff.

Exit-code contract: 0 clean, 1 gate failure, 2 usage/data error --
the gate code is what CI keys regression blocking off, so it gets
explicit coverage here.
"""

import json

from repro.cli import main


def _run(capsys, *argv):
    rc = main(list(argv))
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def _archive_run(capsys, tmp_path, *extra):
    rc, out, err = _run(
        capsys, "archive", "run", "late_sender", "--size", "4",
        "--seed", "1", "--archive", str(tmp_path / "arch"), *extra,
    )
    assert rc == 0, err
    assert out.startswith("archived ")
    return out.split()[1]  # run_id


def test_archive_run_and_history(capsys, tmp_path):
    run_id = _archive_run(capsys, tmp_path)
    rc, out, _ = _run(
        capsys, "history", "--archive", str(tmp_path / "arch")
    )
    assert rc == 0
    assert run_id in out
    assert "1 archived run(s)" in out


def test_history_json(capsys, tmp_path):
    run_id = _archive_run(capsys, tmp_path)
    rc, out, _ = _run(
        capsys, "history", "--archive", str(tmp_path / "arch"), "--json"
    )
    assert rc == 0
    payload = json.loads(out)
    assert payload["format"] == "ats-archive-history"
    assert payload["runs"][0]["run_id"] == run_id


def test_archive_analyze_reports_cache(capsys, tmp_path):
    run_id = _archive_run(capsys, tmp_path)
    arch = str(tmp_path / "arch")
    rc, cold, _ = _run(capsys, "archive", "analyze", "--archive", arch)
    assert rc == 0
    assert run_id in cold
    assert "late_sender" in cold
    assert "misses" in cold
    rc, warm, _ = _run(capsys, "archive", "analyze", "--archive", arch)
    assert rc == 0
    assert "0 misses" in warm


def test_archive_export_roundtrip(capsys, tmp_path):
    run_id = _archive_run(capsys, tmp_path)
    out_path = tmp_path / "exported.jsonl.gz"
    rc, _, _ = _run(
        capsys, "archive", "export", run_id, str(out_path),
        "--archive", str(tmp_path / "arch"),
    )
    assert rc == 0
    rc, out, _ = _run(capsys, "analyze", str(out_path))
    assert rc == 0
    assert "late_sender" in out


def test_diff_self_gate_passes(capsys, tmp_path):
    run_id = _archive_run(capsys, tmp_path)
    rc, out, _ = _run(
        capsys, "diff", run_id, run_id,
        "--archive", str(tmp_path / "arch"), "--gate",
    )
    assert rc == 0
    assert "gate: no regressions" in out


def test_diff_gate_blocks_regression(capsys, tmp_path):
    healthy = _archive_run(capsys, tmp_path)
    collapsed = _archive_run(
        capsys, tmp_path, "--severity-scale", "0.05"
    )
    assert healthy != collapsed
    rc, _, err = _run(
        capsys, "diff", healthy, collapsed,
        "--archive", str(tmp_path / "arch"), "--gate",
    )
    assert rc == 1
    assert "ats: gate: " in err
    assert "severity regression" in err


def test_diff_json_output(capsys, tmp_path):
    healthy = _archive_run(capsys, tmp_path)
    collapsed = _archive_run(
        capsys, tmp_path, "--severity-scale", "0.05"
    )
    json_path = tmp_path / "diff.json"
    rc, out, _ = _run(
        capsys, "diff", healthy, collapsed,
        "--archive", str(tmp_path / "arch"),
        "--json", str(json_path),
    )
    assert rc == 0
    assert f"diff written to {json_path}" in out
    text = json_path.read_text()
    assert "Infinity" not in text
    payload = json.loads(text)
    assert payload["format"] == "ats-diff"
    assert payload["before"] == healthy
    assert payload["after"] == collapsed


def test_diff_unknown_run_is_clean_error(capsys, tmp_path):
    _archive_run(capsys, tmp_path)
    rc, _, err = _run(
        capsys, "diff", "zzzz", "zzzz",
        "--archive", str(tmp_path / "arch"),
    )
    assert rc == 2
    assert err.startswith("ats: error: ")
    assert "no run" in err


def test_archive_run_rejects_bad_severity_scale(capsys, tmp_path):
    rc, _, err = _run(
        capsys, "archive", "run", "late_sender",
        "--archive", str(tmp_path / "arch"),
        "--severity-scale", "0",
    )
    assert rc == 2
    assert "--severity-scale must be > 0" in err


def test_analyze_many_traces_from_directory(capsys, tmp_path):
    for i in range(2):
        assert main([
            "run", "late_sender", "--size", "4", "--no-analyze",
            "--trace-out", str(tmp_path / f"t{i}.jsonl"),
        ]) == 0
    capsys.readouterr()
    rc, out, _ = _run(capsys, "analyze", str(tmp_path))
    assert rc == 0
    assert out.count("== ") == 2
    assert out.count("ANALYSIS REPORT") == 2


def test_analyze_glob_with_missing_trace_keeps_going(capsys, tmp_path):
    good = tmp_path / "good.jsonl"
    assert main([
        "run", "late_sender", "--size", "4", "--no-analyze",
        "--trace-out", str(good),
    ]) == 0
    (tmp_path / "bad.jsonl").write_text("not a trace\n")
    capsys.readouterr()
    rc, out, err = _run(capsys, "analyze", str(tmp_path / "*.jsonl"))
    # the good trace is analyzed, the bad one reports, exit is 2
    assert rc == 2
    assert "ANALYSIS REPORT" in out
    assert "ats: error: " in err


def test_matrix_archive_flag_records_runs(capsys, tmp_path):
    arch = tmp_path / "arch"
    rc, out, _ = _run(
        capsys, "matrix", "--size", "4", "--threads", "2",
        "--archive", str(arch),
    )
    assert rc == 0
    assert f"runs archived in {arch}" in out
    rc, out, _ = _run(capsys, "history", "--archive", str(arch))
    assert rc == 0
    assert "late_sender" in out
