"""Stdlib clustering: k-medoids, single-link, silhouette."""

import pytest

from repro.stats import (
    cluster_rows,
    euclidean,
    kmedoids,
    manhattan,
    pairwise_distances,
    silhouette,
    single_link,
)

#: two tight blobs around (0, 0) and (10, 10), one per half
BLOBS = [
    (0.0, 0.1),
    (0.1, 0.0),
    (0.2, 0.1),
    (10.0, 10.1),
    (10.1, 10.0),
    (10.2, 9.9),
]


def test_metrics():
    assert euclidean((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
    assert manhattan((0.0, 0.0), (3.0, 4.0)) == pytest.approx(7.0)


def test_pairwise_matrix_is_symmetric_with_zero_diagonal():
    dist = pairwise_distances(BLOBS)
    n = len(BLOBS)
    for i in range(n):
        assert dist[i][i] == 0.0
        for j in range(n):
            assert dist[i][j] == dist[j][i]


@pytest.mark.parametrize("method", ["kmedoids", "single_link"])
def test_two_blobs_split_cleanly(method):
    assign = cluster_rows(BLOBS, k=2, method=method)
    assert assign.labels[:3] == (assign.labels[0],) * 3
    assert assign.labels[3:] == (assign.labels[3],) * 3
    assert assign.labels[0] != assign.labels[3]
    assert assign.sizes() == (3, 3)
    assert assign.silhouette > 0.9


def test_kmedoids_deterministic_across_seeds_on_clear_structure():
    dist = pairwise_distances(BLOBS)
    reference = kmedoids(dist, 2, seed=0)
    for seed in (1, 7, 12345):
        assert kmedoids(dist, 2, seed=seed) == reference


def test_kmedoids_k_clamped_to_n():
    dist = pairwise_distances(BLOBS[:2])
    labels, medoids = kmedoids(dist, 5)
    assert len(labels) == 2
    assert len(medoids) == 2


def test_kmedoids_rejects_bad_k():
    with pytest.raises(ValueError):
        kmedoids(pairwise_distances(BLOBS), 0)
    with pytest.raises(ValueError):
        single_link(pairwise_distances(BLOBS), 0)


def test_single_link_labels_renumbered_by_first_member():
    labels = single_link(pairwise_distances(BLOBS), 2)
    # cluster containing row 0 is always label 0
    assert labels[0] == 0
    assert labels[3] == 1


def test_silhouette_degenerate_labelings_score_zero():
    dist = pairwise_distances(BLOBS)
    assert silhouette(dist, [0] * len(BLOBS)) == 0.0
    assert silhouette([[0.0]], [0]) == 0.0


def test_silhouette_prefers_true_split():
    dist = pairwise_distances(BLOBS)
    good = silhouette(dist, [0, 0, 0, 1, 1, 1])
    bad = silhouette(dist, [0, 1, 0, 1, 0, 1])
    assert good > 0.9
    assert bad < good


def test_unknown_metric_and_method_raise():
    with pytest.raises(ValueError):
        pairwise_distances(BLOBS, metric="cosine")
    with pytest.raises(ValueError):
        cluster_rows(BLOBS, method="dbscan")
