"""The performance-property hierarchy.

EXPERT's left pane (paper figure 3.5) is a *tree*: specific patterns
(Late Broadcast) refine general ones (Collective Communication →
Communication → Time).  A parent's severity includes its children's,
so a tool user can drill down from "this program loses 25% to MPI"
to "...specifically to late broadcasts in late_broadcast()".

This module defines the hierarchy over the analyzer's property ids and
renders the classic indented tree with inclusive severities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .model import AnalysisResult

#: child property id -> parent node name.  Leaves are detector ids;
#: inner nodes are synthetic aggregates.
PARENT: Dict[str, str] = {
    # p2p refinements
    "messages_in_wrong_order": "late_sender",
    "late_sender": "p2p_communication",
    "late_receiver": "p2p_communication",
    "p2p_communication": "mpi_communication",
    # collective refinements
    "late_broadcast": "collective_communication",
    "late_scatter": "collective_communication",
    "late_scatterv": "collective_communication",
    "early_reduce": "collective_communication",
    "early_gather": "collective_communication",
    "early_gatherv": "collective_communication",
    "wait_at_barrier": "collective_communication",
    "wait_at_nxn": "collective_communication",
    "collective_communication": "mpi_communication",
    "mpi_init_overhead": "mpi_communication",
    "mpi_communication": "communication",
    # OpenMP refinements
    "imbalance_at_omp_barrier": "omp_synchronization",
    "imbalance_in_omp_pregion": "omp_synchronization",
    "imbalance_in_omp_loop": "omp_synchronization",
    "imbalance_in_omp_sections": "omp_synchronization",
    "imbalance_at_omp_single": "omp_synchronization",
    "imbalance_at_omp_reduce": "omp_synchronization",
    "omp_critical_contention": "omp_synchronization",
    "omp_lock_contention": "omp_synchronization",
    "omp_synchronization": "parallel_inefficiency",
    "communication": "parallel_inefficiency",
    # sequential
    "io_bound": "sequential_inefficiency",
    "parallel_inefficiency": "total",
    "sequential_inefficiency": "total",
}

ROOT = "total"


def ancestors(prop: str) -> Tuple[str, ...]:
    """Chain from ``prop``'s parent up to the root."""
    chain = []
    node = prop
    seen = set()
    while node in PARENT:
        node = PARENT[node]
        if node in seen:  # pragma: no cover - guards config mistakes
            raise ValueError(f"cycle in property hierarchy at {node}")
        seen.add(node)
        chain.append(node)
    return tuple(chain)


def children_of(node: str) -> Tuple[str, ...]:
    return tuple(
        sorted(c for c, p in PARENT.items() if p == node)
    )


@dataclass
class HierarchyNode:
    """One node of the severity tree."""

    name: str
    #: severity of exactly this property (leaves; 0 for aggregates)
    exclusive: float = 0.0
    #: severity including all descendants
    inclusive: float = 0.0
    children: list = field(default_factory=list)


def severity_tree(result: AnalysisResult) -> HierarchyNode:
    """Aggregate an analysis into the property hierarchy."""
    severities = result.severities_by_property()
    # Subset refinements: their waits are already counted by the parent
    # leaf (wrong-order waits ARE late-sender waits), so they appear in
    # the tree but do not propagate upward.
    subset_leaves = {"messages_in_wrong_order"}
    inclusive: Dict[str, float] = {}
    exclusive: Dict[str, float] = {}
    for prop, sev in severities.items():
        exclusive[prop] = sev
        inclusive[prop] = inclusive.get(prop, 0.0) + sev
        if prop in subset_leaves:
            continue
        for parent in ancestors(prop):
            inclusive[parent] = inclusive.get(parent, 0.0) + sev

    def build(name: str) -> HierarchyNode:
        node = HierarchyNode(
            name=name,
            exclusive=exclusive.get(name, 0.0),
            inclusive=inclusive.get(name, 0.0),
        )
        for child in children_of(name):
            if inclusive.get(child, 0.0) > 0 or exclusive.get(child, 0):
                node.children.append(build(child))
        node.children.sort(key=lambda n: -n.inclusive)
        return node

    return build(ROOT)


def format_property_tree(
    result: AnalysisResult, threshold: float = 0.0
) -> str:
    """Render the EXPERT-style indented property tree."""
    root = severity_tree(result)
    lines: list[str] = ["performance property tree (inclusive severity):"]

    def walk(node: HierarchyNode, depth: int) -> None:
        if node.inclusive < threshold and depth > 0:
            return
        indent = "  " * depth
        lines.append(
            f"  {node.inclusive:7.2%}  {indent}{node.name}"
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines) + "\n"
