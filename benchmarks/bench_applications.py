"""A-APP -- chapter 4: real applications with documented behaviour.

The paper proposes collecting applications "together with ...
descriptions of the application's performance behavior".  For each
bundled mini-application this bench runs the healthy and the
pathological configuration and checks the analyzer's diagnosis against
the documented ground truth.
"""

from repro.analysis import analyze_run
from repro.simmpi import run_mpi
from repro.apps import (
    CgConfig,
    FarmConfig,
    JacobiConfig,
    PipelineConfig,
    WavefrontConfig,
    cg_like,
    jacobi,
    master_worker,
    pipeline,
    wavefront,
)

FAST = dict(model_init_overhead=False)


def test_jacobi_strip_imbalance(benchmark):
    def run():
        healthy = run_mpi(jacobi, 8, JacobiConfig(iterations=15), **FAST)
        skewed = run_mpi(
            jacobi, 8, JacobiConfig(iterations=15, imbalance=2.0), **FAST
        )
        return analyze_run(healthy), analyze_run(skewed)

    healthy, skewed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA-APP jacobi: healthy={healthy.detected(0.02)} "
          f"skewed={skewed.detected(0.02)}")
    assert healthy.detected(0.02) == ()
    assert "wait_at_nxn" in skewed.detected(0.02)


def test_farm_master_bottleneck(benchmark):
    def run():
        fast = run_mpi(master_worker, 8, FarmConfig(ntasks=28), **FAST)
        slow = run_mpi(
            master_worker, 8,
            FarmConfig(ntasks=28, master_service_time=0.008), **FAST,
        )
        return analyze_run(fast), analyze_run(slow)

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    f = fast.severity(property="late_sender")
    s = slow.severity(property="late_sender")
    print(f"\nA-APP farm late_sender severity: fast={f:.2%} slow={s:.2%}")
    assert s > max(3 * f, 0.1)
    # the waits sit at the workers' receive from the master
    ranks = {loc.rank for loc in slow.locations_of("late_sender")}
    assert 0 not in ranks or len(ranks) > 1


def test_pipeline_slow_stage(benchmark):
    def run():
        base = run_mpi(pipeline, 4, PipelineConfig(nitems=12), **FAST)
        slowed = run_mpi(
            pipeline, 4,
            PipelineConfig(nitems=12, slow_stage=1, slow_factor=4.0),
            **FAST,
        )
        return base, slowed, analyze_run(slowed)

    base, slowed, analysis = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nA-APP pipeline: {base.final_time:.3f}s -> "
          f"{slowed.final_time:.3f}s with slow stage 1")
    assert slowed.final_time > 2 * base.final_time
    downstream = {
        loc.rank for loc in analysis.locations_of("late_sender")
    }
    print(f"  starving stages: {sorted(downstream)}")
    assert downstream & {2, 3}


def test_wavefront_startup_skew_amortizes(benchmark):
    def run():
        out = []
        for ncols in (4, 16, 48):
            result = run_mpi(
                wavefront, 6,
                WavefrontConfig(ncols=ncols, sweeps=1), **FAST,
            )
            out.append(
                (ncols,
                 analyze_run(result).severity(property="late_sender"))
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA-APP wavefront pipeline-fill skew vs width:")
    for ncols, sev in rows:
        print(f"  ncols={ncols:>3} -> late_sender {sev:.2%}")
    sevs = [sev for _, sev in rows]
    assert sevs[0] > sevs[1] > sevs[2]


def test_cg_imbalance_lands_on_dot_products(benchmark):
    def run():
        result = run_mpi(
            cg_like, 8,
            CgConfig(iterations=12, row_imbalance=2.0), **FAST,
        )
        return analyze_run(result)

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "wait_at_nxn" in analysis.detected(0.02)
    top_path = next(iter(analysis.callpaths_of("wait_at_nxn")))
    print(f"\nA-APP cg_like imbalance at: {' / '.join(top_path)}")
    assert "dot_products" in top_path
