"""Fingerprints: what makes a cached analysis cell valid.

A cached cell is keyed by ``(trace digest, detector fingerprint)``.
The detector fingerprint digests everything that could change that
detector's output on a fixed trace:

* the detector class's own source code *and* the source of its
  defining module (so editing a helper next to the class invalidates
  its cells, while an edit to an unrelated detector module does not),
* the source of every module the detector declares in
  ``fingerprint_modules`` -- detectors that delegate real work to
  helper modules (the statistical family computes in
  ``repro.stats.features`` / ``repro.stats.similarity``) would
  otherwise serve stale cells after an algorithm change that never
  touches the detector's own module,
* the detector instance's configuration attributes (``__dict__`` and
  ``__slots__``-declared state both count, so a slotted or dataclass
  detector cannot silently fingerprint as stateless),
* the :class:`~repro.analysis.AnalysisConfig` in effect,
* the global :data:`~repro.analysis.ANALYZER_VERSION` -- the manual
  escape hatch for changes in shared analyzer infrastructure.

This is deliberately *over*-eager at module granularity: a comment
edit in ``p2p.py`` recomputes the three p2p detectors' cells and
nothing else, which is exactly the "only recompute affected cells"
contract -- stale results are the one unacceptable outcome.
"""

from __future__ import annotations

import inspect
from functools import lru_cache
from typing import Optional, Sequence

from ..analysis import ANALYZER_VERSION, AnalysisConfig
from .store import canonical_json, sha256_hex


@lru_cache(maxsize=None)
def _class_source_hash(cls: type) -> str:
    """Digest of the class source + its defining module's source.

    Builtins or classes without retrievable source fall back to the
    qualified name -- fingerprints stay stable, just less sensitive.
    """
    try:
        class_src = inspect.getsource(cls)
    except (OSError, TypeError):
        class_src = cls.__qualname__
    module = inspect.getmodule(cls)
    try:
        module_src = inspect.getsource(module) if module else ""
    except (OSError, TypeError):
        module_src = ""
    return sha256_hex(class_src + "\n" + module_src)


@lru_cache(maxsize=None)
def _module_source_hash(name: str) -> str:
    """Digest of a named module's source (see ``fingerprint_modules``).

    An unimportable or sourceless module falls back to its name, so
    fingerprints stay stable rather than erroring -- just insensitive
    to that module.
    """
    import importlib

    try:
        module = importlib.import_module(name)
        src = inspect.getsource(module)
    except (ImportError, OSError, TypeError):
        src = name
    return sha256_hex(src)


def _instance_state(detector) -> dict:
    """Every configuration attribute of a detector instance.

    Collects ``__dict__`` *and* ``__slots__`` entries across the MRO;
    private (underscore) attributes are skipped as caches/plumbing.
    """
    state = {
        k: v
        for k, v in (getattr(detector, "__dict__", None) or {}).items()
        if not k.startswith("_")
    }
    for cls in type(detector).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name.startswith("_") or name in state:
                continue
            try:
                state[name] = getattr(detector, name)
            except AttributeError:
                continue
    return state


def config_fingerprint(config: Optional[AnalysisConfig]) -> str:
    config = config or AnalysisConfig()
    return sha256_hex(
        canonical_json(
            {
                "eager_threshold": config.eager_threshold,
                "noise_floor": config.noise_floor,
            }
        )
    )


def detector_fingerprint(
    detector, config: Optional[AnalysisConfig] = None
) -> str:
    """Cache-key component for one detector under one config."""
    cls = type(detector)
    state = _instance_state(detector)
    payload = {
        "analyzer": ANALYZER_VERSION,
        "module": cls.__module__,
        "class": cls.__qualname__,
        "source": _class_source_hash(cls),
        "delegates": {
            name: _module_source_hash(name)
            for name in getattr(detector, "fingerprint_modules", ())
        },
        "state": {k: repr(v) for k, v in sorted(state.items())},
        "config": config_fingerprint(config),
    }
    return sha256_hex(canonical_json(payload))


def detector_set_fingerprint(
    detectors: Sequence, config: Optional[AnalysisConfig] = None
) -> str:
    """Order-sensitive digest of a whole battery (manifest provenance).

    Order matters because the analyzer's finding list is the
    concatenation of per-detector outputs in battery order.
    """
    return sha256_hex(
        canonical_json(
            [detector_fingerprint(d, config) for d in detectors]
        )
    )
