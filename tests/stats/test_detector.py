"""The statistical detector family through the standard analyze path."""

import pytest

from repro.analysis import analyze_run
from repro.core import get_property
from repro.stats import (
    FAMILY_NAMES,
    PROPERTY_CLASSES,
    SIMILARITY_COVERS,
    SIMILARITY_PROPERTY_IDS,
    STATISTICAL_DETECTORS,
    battery_for,
    covers,
    parse_families,
    property_class,
    statistical_expectations,
)


def _detected(name, detectors, size=8, seed=0, threshold=0.01):
    run = get_property(name).run(size=size, seed=seed)
    return set(analyze_run(run, detectors=detectors).detected(threshold))


def test_rank_outlier_fires_on_late_sender():
    detected = _detected("late_sender", STATISTICAL_DETECTORS)
    assert "similarity_rank_outlier" in detected


def test_phase_anomaly_fires_on_barrier_imbalance():
    detected = _detected(
        "imbalance_at_mpi_barrier", STATISTICAL_DETECTORS
    )
    assert "similarity_phase_anomaly" in detected


@pytest.mark.parametrize(
    "name", ["balanced_sendrecv", "balanced_mpi_barrier"]
)
def test_negative_programs_stay_clean(name):
    assert _detected(name, STATISTICAL_DETECTORS) == set()


def test_statistical_findings_carry_wall_seconds():
    run = get_property("late_sender").run(size=8, seed=0)
    result = analyze_run(run, detectors=STATISTICAL_DETECTORS)
    outliers = [
        f for f in result.findings
        if f.property == "similarity_rank_outlier"
    ]
    assert outliers
    assert all(f.wait_time > 0.0 for f in outliers)


# ----------------------------------------------------------------------
# class taxonomy
# ----------------------------------------------------------------------

def test_every_similarity_pid_covers_known_classes():
    classes = set(PROPERTY_CLASSES.values())
    for pid in SIMILARITY_PROPERTY_IDS:
        assert SIMILARITY_COVERS[pid] <= classes


def test_covers_goes_through_the_class_taxonomy():
    assert covers("similarity_rank_outlier", "late_sender")
    assert covers("similarity_phase_anomaly", "wait_at_barrier")
    assert not covers("similarity_rank_outlier", "io_bound")
    assert not covers("similarity_rank_outlier", "not_a_property")


def test_statistical_expectations_derive_from_expected_classes():
    assert statistical_expectations(["late_sender"]) == (
        "similarity_phase_anomaly",
        "similarity_rank_outlier",
    )
    # io maps to no statistical property: uniform across ranks
    assert statistical_expectations(["io_bound"]) == ()
    assert statistical_expectations([]) == ()
    assert property_class("io_bound") == "io"
    assert property_class("unknown") == ""


# ----------------------------------------------------------------------
# family batteries
# ----------------------------------------------------------------------

def test_battery_order_is_fixed_rule_first():
    both = battery_for(("similarity", "rule"))
    assert both == battery_for(("rule", "similarity"))
    assert both[-len(STATISTICAL_DETECTORS):] == STATISTICAL_DETECTORS


def test_battery_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown detector families"):
        battery_for(("rule", "bayesian"))


def test_parse_families():
    assert parse_families("rule, similarity") == ("rule", "similarity")
    assert parse_families("rule") == ("rule",)
    with pytest.raises(ValueError):
        parse_families("  ,  ")
    with pytest.raises(ValueError):
        parse_families("nope")
    assert set(FAMILY_NAMES) == {"rule", "similarity"}
