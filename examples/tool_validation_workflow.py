#!/usr/bin/env python
"""Validate a performance tool with the ATS detection matrix.

This is the workflow the test suite exists for: a tool developer plugs
their analysis tool into the harness and gets a positive/negative
correctness report.  Three tools are exercised:

* the bundled analyzer (should pass everything),
* a 'blind' tool that reports nothing (fails positive correctness),
* a 'paranoid' tool that always reports late senders (fails negative
  correctness).
"""

from repro.core import get_property
from repro.validation import run_validation_matrix

SUBSET = [
    "late_sender",
    "late_broadcast",
    "early_reduce",
    "imbalance_at_mpi_barrier",
    "imbalance_at_omp_barrier",
    "balanced_mpi_barrier",
    "balanced_omp_region",
]


def main() -> None:
    specs = [get_property(name) for name in SUBSET]

    print("=" * 70)
    print("tool 1: the bundled EXPERT-style analyzer")
    print("=" * 70)
    matrix = run_validation_matrix(specs=specs, size=8)
    print(matrix.format_table())
    assert matrix.all_passed

    print("=" * 70)
    print("tool 2: a blind tool (never reports anything)")
    print("=" * 70)
    blind = run_validation_matrix(
        specs=specs, tool=lambda run: (), size=8
    )
    print(blind.format_table())
    assert not blind.all_passed
    assert blind.false_positive_rate == 0.0  # silent, at least

    print("=" * 70)
    print("tool 3: a paranoid tool (always cries late_sender)")
    print("=" * 70)
    paranoid = run_validation_matrix(
        specs=specs, tool=lambda run: ("late_sender",), size=8
    )
    print(paranoid.format_table())
    assert paranoid.false_positive_rate == 1.0

    print("the matrix separates correct, blind and paranoid tools.")


if __name__ == "__main__":
    main()
