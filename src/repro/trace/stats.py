"""Trace statistics: per-region and per-location time profiles.

A lightweight "profile view" over a trace, used by the overhead
benchmarks, ``ats analyze --profile`` and the Chrome trace-event
export.  Exclusive time of a region is its inclusive time minus the
inclusive time of its direct children.

:func:`region_intervals` is the shared replay underneath: one pass
over enter/exit events yielding every completed region instance with
its nesting depth -- :func:`profile_trace` aggregates the intervals,
:mod:`repro.obs.chrome` renders them as timeline slices.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Sequence

from .events import CallPath, Enter, Event, Exit, Location


@dataclass
class RegionProfile:
    """Aggregated timing of one region name at one location."""

    region: str
    loc: Location
    visits: int = 0
    inclusive: float = 0.0
    exclusive: float = 0.0


@dataclass
class TraceProfile:
    """Profile of a whole trace."""

    per_region: Dict[tuple[str, Location], RegionProfile] = field(
        default_factory=dict
    )
    total_time: float = 0.0
    locations: list[Location] = field(default_factory=list)

    def region_total(self, region: str) -> float:
        """Inclusive time of ``region`` summed over all locations."""
        return sum(
            p.inclusive
            for (name, _), p in self.per_region.items()
            if name == region
        )

    def exclusive_total(self, region: str) -> float:
        return sum(
            p.exclusive
            for (name, _), p in self.per_region.items()
            if name == region
        )

    def regions(self) -> list[str]:
        return sorted({name for name, _ in self.per_region})


@dataclass(frozen=True)
class RegionInterval:
    """One completed region instance: the unit of profile aggregation.

    ``depth`` is the nesting level at entry (0 = outermost) and
    ``child_time`` the summed inclusive time of direct children, so
    ``exclusive = exit - enter - child_time``.
    """

    loc: Location
    region: str
    path: CallPath
    enter: float
    exit: float
    depth: int
    child_time: float

    @property
    def inclusive(self) -> float:
        return self.exit - self.enter

    @property
    def exclusive(self) -> float:
        return self.exit - self.enter - self.child_time


def region_intervals(
    events: Iterable[Event],
) -> Iterator[RegionInterval]:
    """Replay enter/exit events into completed intervals (exit order).

    Events must be time-ordered per location (as recorded).  Mismatched
    exits and regions left open at the end of the stream are tolerated
    and skipped, so truncated traces still profile.
    """
    stacks: dict[Location, list[list]] = defaultdict(list)
    # stack entry: [region, enter_time, path, child_inclusive]
    for event in events:
        if isinstance(event, Enter):
            stacks[event.loc].append(
                [event.region, event.time, event.path, 0.0]
            )
        elif isinstance(event, Exit):
            stack = stacks[event.loc]
            if not stack or stack[-1][0] != event.region:
                continue  # tolerate truncated traces
            region, start, path, child_incl = stack.pop()
            inclusive = event.time - start
            if stack:
                stack[-1][3] += inclusive
            yield RegionInterval(
                loc=event.loc,
                region=region,
                path=path,
                enter=start,
                exit=event.time,
                depth=len(stack),
                child_time=child_incl,
            )


def profile_trace(events: Sequence[Event]) -> TraceProfile:
    """Compute inclusive/exclusive region times from enter/exit events.

    Accepts either a raw event sequence or anything carrying a
    precomputed ``region_visits`` list (a
    :class:`repro.analysis.index.TraceIndex`), in which case the replay
    is skipped entirely -- profile and analysis share one interval
    implementation.
    """
    profile = TraceProfile()
    max_time = 0.0
    for event in events:
        if event.time > max_time:
            max_time = event.time
    intervals = getattr(events, "region_visits", None)
    if intervals is None:
        ordered = sorted(events, key=lambda e: e.time)
        intervals = region_intervals(ordered)
    for interval in intervals:
        key = (interval.region, interval.loc)
        rp = profile.per_region.setdefault(
            key, RegionProfile(interval.region, interval.loc)
        )
        rp.visits += 1
        rp.inclusive += interval.inclusive
        rp.exclusive += interval.exclusive
    profile.total_time = max_time
    profile.locations = sorted({e.loc for e in events})
    return profile


def format_profile(profile: TraceProfile, top: int = 20) -> str:
    """Human-readable profile table (aggregated over locations)."""
    agg: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    for (region, _), rp in profile.per_region.items():
        agg[region][0] += rp.visits
        agg[region][1] += rp.inclusive
        agg[region][2] += rp.exclusive
    rows = sorted(agg.items(), key=lambda kv: -kv[1][2])[:top]
    lines = [f"{'region':<28}{'visits':>8}{'incl(s)':>12}{'excl(s)':>12}"]
    for region, (visits, incl, excl) in rows:
        lines.append(f"{region:<28}{visits:>8}{incl:>12.6f}{excl:>12.6f}")
    return "\n".join(lines) + "\n"
