"""Cartesian process topologies (``MPI_Cart_create`` family).

Grid-decomposed applications (2-D stencils, the hybrid SR-8000 codes
the paper's property catalog targets) address neighbours by grid
coordinates; this module provides the standard helpers: balanced
dimension factorization, a :class:`CartComm` with coordinate/rank
translation, and ``shift`` that yields ``PROC_NULL`` across
non-periodic boundaries.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .communicator import Communicator
from .errors import MpiError
from .status import PROC_NULL


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced factorization of ``nnodes`` into ``ndims`` dimensions.

    Like ``MPI_Dims_create`` with all-zero input: dimensions are as
    close to each other as possible, in non-increasing order.
    """
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly assign the largest prime factor to the smallest dim.
    factors = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        smallest = min(range(ndims), key=lambda i: dims[i])
        dims[smallest] *= factor
    return sorted(dims, reverse=True)


class CartComm(Communicator):
    """A communicator with an attached Cartesian grid topology."""

    def __init__(
        self,
        world,
        group: Sequence[int],
        comm_id: int,
        name: str,
        dims: Sequence[int],
        periods: Sequence[bool],
    ):
        super().__init__(world, group, comm_id, name)
        if len(dims) != len(periods):
            raise MpiError("dims and periods must have equal length")
        total = 1
        for d in dims:
            if d < 1:
                raise MpiError(f"invalid grid dimension {d}")
            total *= d
        if total != len(group):
            raise MpiError(
                f"grid {tuple(dims)} needs {total} processes, "
                f"group has {len(group)}"
            )
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)

    # ------------------------------------------------------------------
    # coordinate translation (row-major, like MPI)
    # ------------------------------------------------------------------

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a local rank (``MPI_Cart_coords``)."""
        self._check_rank(rank)
        coords = []
        remainder = rank
        for extent in reversed(self.dims):
            coords.append(remainder % extent)
            remainder //= extent
        return tuple(reversed(coords))

    def rank_at(self, coords: Sequence[int]) -> int:
        """Local rank at grid coordinates (``MPI_Cart_rank``).

        Periodic dimensions wrap; out-of-range coordinates on
        non-periodic dimensions yield ``PROC_NULL``.
        """
        if len(coords) != len(self.dims):
            raise MpiError("coordinate dimensionality mismatch")
        normalized = []
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                normalized.append(c % extent)
            elif 0 <= c < extent:
                normalized.append(c)
            else:
                return PROC_NULL
        rank = 0
        for c, extent in zip(normalized, self.dims):
            rank = rank * extent + c
        return rank

    def my_coords(self) -> Tuple[int, ...]:
        return self.coords_of(self.rank())

    def shift(self, dim: int, disp: int = 1) -> Tuple[int, int]:
        """(source, destination) ranks for a shift along ``dim``.

        Like ``MPI_Cart_shift``: returns ``PROC_NULL`` at open
        boundaries, so halo exchanges need no edge special-casing.
        """
        if not 0 <= dim < len(self.dims):
            raise MpiError(f"shift dimension {dim} out of range")
        me = list(self.my_coords())
        dst_coords = list(me)
        dst_coords[dim] += disp
        src_coords = list(me)
        src_coords[dim] -= disp
        return self.rank_at(src_coords), self.rank_at(dst_coords)


def cart_create(
    comm: Communicator,
    dims: Sequence[int],
    periods: Optional[Sequence[bool]] = None,
) -> CartComm:
    """Create a Cartesian topology over ``comm``'s processes.

    Collective over ``comm``; the grid must use exactly all processes
    (no reorder support -- rank order is preserved, which keeps traces
    comparable across runs).
    """
    if periods is None:
        periods = [False] * len(dims)

    def algo(instance: int) -> CartComm:
        from . import collectives as _coll

        _coll.barrier(comm, instance)
        comm_id = comm.world.comm_id_for(
            (comm.comm_id, instance, "cart"), comm.group
        )
        return CartComm(
            comm.world,
            comm.group,
            comm_id,
            f"{comm.name}.cart{tuple(dims)}",
            dims,
            periods,
        )

    return comm._run_collective("MPI_Cart_create", algo)
