#!/usr/bin/env python
"""The paper's figure 3.4/3.5 scenario, end to end.

16 MPI ranks split into two communicators; each half runs a different
set of performance property functions *concurrently*.  The analyzer
must keep the two universes apart: barrier imbalance and late senders
in the lower half, late broadcast and early reduce in the upper half
-- with the late broadcast localized at every upper rank except the
communicator-local root 1 (global rank 9), exactly as the EXPERT
screenshot in the paper shows.
"""

from repro import analyze_run, format_expert_report, run_split_program


def main() -> None:
    result = run_split_program(
        lower=["imbalance_at_mpi_barrier", "late_sender"],
        upper=["late_broadcast", "early_reduce"],
        size=16,
    )
    print(result.timeline(width=110, title="figure 3.4: split halves"))

    analysis = analyze_run(result)
    print(format_expert_report(analysis))

    # The figure 3.5 checks, as assertions:
    detected = analysis.detected(0.005)
    for expected in ("late_broadcast", "early_reduce",
                     "wait_at_barrier", "late_sender"):
        assert expected in detected, f"missing {expected}"

    bcast_ranks = sorted(
        loc.rank for loc in analysis.locations_of("late_broadcast")
    )
    print(f"late_broadcast located at global ranks: {bcast_ranks}")
    assert bcast_ranks == [8, 10, 11, 12, 13, 14, 15], (
        "late broadcast must hit the upper half minus the root (9)"
    )

    barrier_ranks = sorted(
        loc.rank for loc in analysis.locations_of("wait_at_barrier")
    )
    print(f"wait_at_barrier located at global ranks: {barrier_ranks}")
    assert all(r < 8 for r in barrier_ranks)
    print("\nEXPERT-equivalent localization reproduced.")


if __name__ == "__main__":
    main()
