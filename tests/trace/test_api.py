"""User-region API tests."""

import pytest

from repro.simkernel import Simulator, current_process
from repro.trace import (
    Location,
    TraceRecorder,
    bind_instrumentation,
    current_instrumentation,
    region,
)
from repro.work import do_work


def test_current_instrumentation_outside_process():
    rec, loc = current_instrumentation()
    assert rec is None
    assert loc == Location(0, 0)


def test_region_without_recorder_is_noop():
    sim = Simulator()

    def body():
        with region("anything"):
            do_work(0.1)

    sim.spawn(body)
    assert sim.run() == pytest.approx(0.1)


def test_region_records_and_nests():
    rec = TraceRecorder()
    sim = Simulator()

    def body():
        bind_instrumentation(rec, Location(3, 1))
        with region("outer"):
            with region("inner"):
                do_work(0.5)

    sim.spawn(body)
    sim.run()
    regions = [(e.kind, e.region) for e in rec.events]
    assert regions == [
        ("enter", "outer"),
        ("enter", "inner"),
        ("enter", "work"),
        ("exit", "work"),
        ("exit", "inner"),
        ("exit", "outer"),
    ]
    assert all(e.loc == Location(3, 1) for e in rec.events)


def test_region_intrusion_costs_virtual_time():
    rec = TraceRecorder(intrusion_per_event=0.01)
    sim = Simulator()

    def body():
        bind_instrumentation(rec, Location(0, 0))
        with region("r"):
            pass

    sim.spawn(body)
    # enter + exit each cost one intrusion unit
    assert sim.run() == pytest.approx(0.02)


def test_region_closes_on_exception():
    rec = TraceRecorder()
    sim = Simulator()

    def body():
        bind_instrumentation(rec, Location(0, 0))
        try:
            with region("r"):
                raise ValueError("inside")
        except ValueError:
            pass

    sim.spawn(body)
    sim.run()
    rec.finish()  # balanced despite the exception
    assert [e.kind for e in rec.events] == ["enter", "exit"]
