"""The fork-per-cell executor: ordering, capture, failure modes."""

import os
import time

import pytest

from repro.work.forkexec import (
    ForkOutcome,
    fork_available,
    run_forked_tasks,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork executor needs POSIX"
)


def _value_task(i, delay=0.0):
    def fn():
        if delay:
            time.sleep(delay)
        return {"i": i}

    return fn


def test_results_in_submission_order_despite_completion_order():
    # Earlier tasks sleep longer, so completion order is reversed.
    fns = [_value_task(i, delay=0.08 * (3 - i)) for i in range(4)]
    outcomes = run_forked_tasks(fns, workers=4)
    assert [o.payload for o in outcomes] == [{"i": i} for i in range(4)]
    assert all(o.ok for o in outcomes)


def test_more_tasks_than_workers_all_complete():
    outcomes = run_forked_tasks(
        [_value_task(i) for i in range(9)], workers=2
    )
    assert [o.payload["i"] for o in outcomes] == list(range(9))


def test_empty_and_bad_args():
    assert run_forked_tasks([], workers=2) == []
    with pytest.raises(ValueError, match="workers"):
        run_forked_tasks([_value_task(0)], workers=0)


def test_exception_becomes_failed_outcome():
    def boom():
        raise ValueError("broken cell")

    outcome = run_forked_tasks([boom], workers=1)[0]
    assert outcome.status == "failed"
    assert not outcome.ok
    assert outcome.kind == "ValueError"
    assert "ValueError: broken cell" in outcome.error
    assert "broken cell" in outcome.report  # traceback rides along


def test_timeout_kills_child():
    def hang():
        time.sleep(60)

    t0 = time.monotonic()
    outcome = run_forked_tasks([hang], workers=1, timeout=0.3)[0]
    assert outcome.status == "timeout"
    assert outcome.kind == "timeout"
    assert time.monotonic() - t0 < 30


def test_silent_child_death_is_crashed():
    def die():
        os._exit(7)

    outcome = run_forked_tasks([die], workers=1)[0]
    assert outcome.status == "crashed"
    assert outcome.kind == "crash"
    assert "status 7" in outcome.error


def test_stdout_and_stderr_captured_per_child():
    import sys

    def chatty():
        print("to stdout")
        print("to stderr", file=sys.stderr)
        return 1

    outcome = run_forked_tasks([chatty], workers=1)[0]
    assert outcome.ok
    assert "to stdout" in outcome.output
    assert "to stderr" in outcome.output


def test_extras_fn_rides_on_envelope():
    outcomes = run_forked_tasks(
        [_value_task(0), _value_task(1)],
        workers=2,
        extras_fn=lambda: {"note": "side-channel"},
    )
    assert all(o.extras == {"note": "side-channel"} for o in outcomes)


def test_on_outcome_fires_per_completion():
    seen = []
    run_forked_tasks(
        [_value_task(i) for i in range(3)],
        workers=3,
        on_outcome=lambda i, o: seen.append((i, o.ok)),
    )
    assert sorted(seen) == [(0, True), (1, True), (2, True)]


def test_parent_state_untouched_by_child_mutation():
    state = {"value": 1}

    def mutate():
        state["value"] = 99
        return state["value"]

    outcome = run_forked_tasks([mutate], workers=1)[0]
    assert outcome.payload == 99
    assert state["value"] == 1  # copy-on-write isolation


def test_simulations_run_inside_forked_children():
    """Worker-pool fork safety: parked parent threads never hang a child."""
    from repro.core import get_property

    spec = get_property("imbalance_at_mpi_barrier")
    parent = spec.run(size=4, num_threads=2, seed=0)

    def cell(seed):
        def fn():
            run = spec.run(size=4, num_threads=2, seed=seed)
            return {"events": len(run.events), "t": run.final_time}

        return fn

    outcomes = run_forked_tasks([cell(0), cell(1)], workers=2, timeout=60)
    assert all(o.ok for o in outcomes)
    assert outcomes[0].payload["events"] == len(parent.events)
    assert outcomes[0].payload["t"] == parent.final_time


def test_fork_outcome_defaults():
    outcome = ForkOutcome(status="ok", payload=3)
    assert outcome.ok
    assert outcome.metrics == {}
    assert outcome.extras is None
