"""CLI service commands: serve wiring, submit, watch (via main(argv))."""

import json

import pytest

from repro.archive import Archive
from repro.cli import main
from repro.core import get_property
from repro.obs import (
    reset_metrics,
    reset_spans,
    set_metrics_enabled,
    set_spans_enabled,
)
from repro.service import AnalysisService, run_service_in_thread


@pytest.fixture
def served(tmp_path):
    """A live service (thread-hosted) with one archived run."""
    set_metrics_enabled(True)
    archive = Archive(tmp_path / "archive")
    run = archive.archive_run(
        get_property("late_sender"), size=4, num_threads=2, seed=1
    )
    service = AnalysisService(archive, max_workers=2)
    handle = run_service_in_thread(service)
    handle.seeded_run = run
    yield handle
    handle.stop(drain=False)
    set_metrics_enabled(False)
    set_spans_enabled(False)
    reset_metrics()
    reset_spans()


def test_submit_run_wait_prints_result(served, capsys):
    code = main([
        "submit", "run", "late_sender", "--size", "4",
        "--threads", "2", "--seed", "5",
        "--server", served.url, "--wait",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["state"] == "done"
    assert payload["result"]["program"] == "late_sender"


def test_submit_analyze_then_poll_job(served, capsys):
    assert main([
        "submit", "analyze", served.seeded_run.run_id,
        "--server", served.url,
    ]) == 0
    out = capsys.readouterr().out
    assert "submitted job-" in out
    job_id = out.split("submitted ", 1)[1].split(";", 1)[0].split()[0]
    assert main([
        "submit", "job", job_id, "--server", served.url, "--wait",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["state"] == "done"
    assert "late_sender" in payload["result"]["detected"]


def test_submit_history(served, capsys):
    assert main(["submit", "history", "--server", served.url]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["result"]["count"] == 1


def test_submit_diff(served, capsys):
    main([
        "submit", "run", "late_sender", "--size", "4",
        "--threads", "2", "--seed", "6",
        "--server", served.url, "--wait",
    ])
    first = json.loads(capsys.readouterr().out)["result"]["run_id"]
    assert main([
        "submit", "diff", served.seeded_run.run_id, first,
        "--server", served.url, "--wait",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["result"]["report"]["is_regression"] is False


def test_watch_renders_dashboard_frames(served, capsys):
    assert main([
        "watch", "--server", served.url,
        "--count", "2", "--interval", "0.01", "--plain",
    ]) == 0
    out = capsys.readouterr().out
    assert out.count("ats analysis service") == 2
    assert "jobs:" in out


def test_unreachable_server_is_cli_error(capsys):
    code = main([
        "submit", "history",
        "--server", "http://127.0.0.1:1",  # nothing listens here
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "ats: error: cannot reach service" in err


def test_unknown_property_is_clean_error(served, capsys):
    code = main([
        "submit", "run", "not_a_property",
        "--server", served.url, "--wait",
    ])
    assert code == 2
    assert "unknown property function" in capsys.readouterr().err
