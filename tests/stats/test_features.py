"""The feature layer: per-rank behavior vectors from the TraceIndex."""

import json

import pytest

from repro.core import get_property
from repro.stats import BASE_FEATURES, FeatureMatrix, behavior_matrix


@pytest.fixture(scope="module")
def late_run():
    return get_property("late_sender").run(size=6, seed=3)


def _matrix(run):
    return behavior_matrix(
        list(run.recorder.events), total_time=run.final_time
    )


def test_one_row_per_rank_in_rank_order(late_run):
    matrix = _matrix(late_run)
    assert matrix.kind == "rank"
    assert len(matrix) == 6
    assert matrix.keys == tuple(str(r) for r in range(6))
    assert [loc.rank for loc in matrix.locs] == list(range(6))


def test_vector_layout_and_normalization(late_run):
    matrix = _matrix(late_run)
    assert matrix.names[: len(BASE_FEATURES)] == BASE_FEATURES
    for name in matrix.names[len(BASE_FEATURES):]:
        assert name.startswith("path:")
    for i, row in enumerate(matrix.rows):
        assert len(row) == len(matrix.names)
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in row)
        # comm + comp + wait fractions partition busy time
        assert row[0] + row[1] + row[2] == pytest.approx(1.0)
        assert matrix.busy(i) == pytest.approx(
            matrix.comm[i] + matrix.comp[i] + matrix.wait[i]
        )


def test_same_trace_builds_byte_identical_vectors(late_run):
    a = _matrix(late_run)
    b = _matrix(late_run)
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


def test_round_trip_through_dict(late_run):
    matrix = _matrix(late_run)
    clone = FeatureMatrix.from_dict(
        json.loads(json.dumps(matrix.to_dict()))
    )
    assert clone == matrix


def test_omp_trace_groups_by_location():
    run = get_property("omp_critical_contention").run(
        num_threads=4, seed=1
    )
    matrix = behavior_matrix(
        list(run.recorder.events), total_time=run.final_time
    )
    # single-rank traces fall back to one row per (rank, thread)
    assert matrix.kind == "location"
    assert len(matrix) == 4


def test_straggler_rank_separates_in_overhead(late_run):
    matrix = _matrix(late_run)
    overhead = [
        matrix.overhead(i) / matrix.busy(i)
        for i in range(len(matrix))
    ]
    # late_sender starves its receivers: some rank spends a far larger
    # share of its time in non-computation than the quietest one
    assert max(overhead) > 2 * min(overhead)


def test_empty_trace_is_an_empty_matrix():
    matrix = behavior_matrix([], total_time=0.0)
    assert len(matrix) == 0
    assert matrix.paths == ()
