"""Structured hang/deadlock diagnosis for the simulation kernel.

When a simulation stops making progress the scheduler already *detects*
it -- no runnable process, a virtual-time budget overrun, a dispatch
limit hit.  This module turns those detections into structured,
actionable reports instead of generic one-line errors:

* :class:`DeadlockReport` -- built when no process is runnable but
  passive processes remain.  One :class:`PendingCall` per blocked
  process names the rank/thread and classifies what it is blocked on
  (``recv``, ``send``, ``barrier``, ``lock``, ...), enriched by walking
  the MPI matching engine's unmatched queues (which peer a pending
  receive is waiting for, which destination a rendezvous send is stuck
  on) and the OpenMP team-barrier arrival state (how many threads have
  arrived out of how many parties).

* :class:`HangReport` -- built when a virtual-time budget
  (``Simulator.run(budget=...)``) or the dispatch limit is exceeded: a
  livelocked or pathologically slow program.  It snapshots every live
  process with the same classification, so "where is it spinning" is
  answerable from the exception alone.

The enrichment is deliberately duck-typed through ``proc.context``
(``mpi_world``, ``omp_team``): the kernel never imports the MPI or
OpenMP layers, and programs built directly on the kernel still get the
generic wait-reason classification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from .process import ProcState, SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

#: wait-reason prefixes -> pending-call kind
_KIND_PREFIXES = (
    ("MPI_Wait(recv", "recv"),
    ("MPI_Wait(send", "send"),
    ("barrier(", "barrier"),
    ("lock(", "lock"),
    ("acquire(", "semaphore"),
    ("cond(", "condition"),
    ("wait(", "event"),
    ("mailbox(", "mailbox"),
    ("hold(", "hold"),
)


def classify_wait(reason: str) -> str:
    """Map a raw ``waiting_on`` string to a pending-call kind."""
    for prefix, kind in _KIND_PREFIXES:
        if reason.startswith(prefix):
            return kind
    return "passive"


@dataclass(frozen=True)
class PendingCall:
    """One blocked (or live) process and the call it is stuck in."""

    process: str
    pid: int
    kind: str
    detail: str
    rank: Optional[int] = None
    thread: Optional[int] = None

    def describe(self) -> str:
        where = self.process
        if self.rank is not None:
            where += f" (rank {self.rank}"
            if self.thread is not None:
                where += f", thread {self.thread}"
            where += ")"
        elif self.thread is not None:
            where += f" (thread {self.thread})"
        return f"{where}: {self.kind} -- {self.detail}"

    def to_dict(self) -> dict:
        return {
            "process": self.process,
            "pid": self.pid,
            "kind": self.kind,
            "detail": self.detail,
            "rank": self.rank,
            "thread": self.thread,
        }


def _mpi_pending_detail(proc: SimProcess, kind: str) -> Optional[str]:
    """What the MPI transport says this process is waiting on.

    Walks the matching engine's unmatched queues for requests owned by
    ``proc``: a blocked receive names the peer it expects (or the
    wildcard), a stuck rendezvous send names its destination.
    """
    world = proc.context.get("mpi_world")
    if world is None:
        return None
    engine = getattr(world, "engine", None)
    if engine is None:
        return None
    parts = []
    if kind == "recv":
        for (comm_id, dst), queue in engine._recvs.items():
            for ritem in queue:
                if ritem.request.owner is not proc:
                    continue
                src = (
                    "any" if ritem.src_spec < 0 else str(ritem.src_spec)
                )
                tag = "any" if ritem.tag_spec < 0 else str(ritem.tag_spec)
                parts.append(
                    f"recv from {src} tag {tag} comm {comm_id}"
                    + (" (internal)" if ritem.internal else "")
                )
    elif kind == "send":
        for (comm_id, dst), queue in engine._sends.items():
            for item in queue:
                if item.request.owner is not proc:
                    continue
                proto = "eager" if item.eager else "rendezvous"
                parts.append(
                    f"send to {dst} tag {item.tag} comm {comm_id} "
                    f"({item.nbytes}B {proto})"
                    + (" (internal)" if item.internal else "")
                )
    if not parts:
        return None
    return "; ".join(parts)


def _omp_pending_detail(proc: SimProcess) -> Optional[str]:
    """Barrier arrival state of the process's OpenMP team, if any."""
    team = proc.context.get("omp_team")
    if team is None:
        return None
    barrier = getattr(team, "_barrier", None)
    if barrier is None:
        return None
    arrived = len(barrier._arrived)
    return (
        f"team {team.team_id} barrier: {arrived}/{barrier.parties} arrived"
    )


def pending_call_of(proc: SimProcess) -> PendingCall:
    """Classify what ``proc`` is blocked on, with MPI/OpenMP enrichment."""
    reason = proc.waiting_reason()
    kind = classify_wait(reason)
    detail = reason or "passive"
    if kind in ("recv", "send"):
        extra = _mpi_pending_detail(proc, kind)
        if extra is not None:
            detail = extra
    elif kind == "barrier":
        extra = _omp_pending_detail(proc)
        if extra is not None:
            detail = f"{reason}: {extra}"
    return PendingCall(
        process=proc.name,
        pid=proc.pid,
        kind=kind,
        detail=detail,
        rank=proc.context.get("mpi_rank"),
        thread=proc.context.get("omp_thread_num"),
    )


@dataclass(frozen=True)
class DeadlockReport:
    """No process is runnable; these are the ones blocked forever."""

    time: float
    entries: Tuple[PendingCall, ...]

    @property
    def blocked(self) -> int:
        return len(self.entries)

    def blocked_ranks(self) -> Tuple[int, ...]:
        """Distinct MPI ranks among the blocked processes, sorted."""
        return tuple(
            sorted({e.rank for e in self.entries if e.rank is not None})
        )

    def format(self) -> str:
        lines = [
            f"DEADLOCK at t={self.time:.6f}: "
            f"{self.blocked} blocked process(es)"
        ]
        lines.extend(f"  {entry.describe()}" for entry in self.entries)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "kind": "deadlock",
            "time": self.time,
            "blocked": self.blocked,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


@dataclass(frozen=True)
class HangReport:
    """The run exceeded its budget; these are the live processes.

    ``budget`` is the virtual-time limit when that is what tripped,
    ``max_dispatches`` the dispatch limit otherwise; exactly one is set.
    """

    time: float
    dispatch_count: int
    entries: Tuple[PendingCall, ...]
    budget: Optional[float] = None
    max_dispatches: Optional[int] = None

    @property
    def reason(self) -> str:
        if self.budget is not None:
            return f"virtual-time budget {self.budget:g}s exceeded"
        return f"dispatch limit {self.max_dispatches} exceeded"

    def format(self) -> str:
        lines = [
            f"HANG at t={self.time:.6f}: {self.reason} "
            f"({self.dispatch_count} dispatches); "
            f"{len(self.entries)} live process(es)"
        ]
        lines.extend(f"  {entry.describe()}" for entry in self.entries)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "kind": "hang",
            "time": self.time,
            "reason": self.reason,
            "dispatch_count": self.dispatch_count,
            "budget": self.budget,
            "max_dispatches": self.max_dispatches,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


def build_deadlock_report(sim: "Simulator") -> DeadlockReport:
    """Snapshot every passive process of a deadlocked simulation."""
    entries = tuple(
        pending_call_of(p)
        for p in sim.processes
        if p.state is ProcState.PASSIVE
    )
    return DeadlockReport(time=sim.now, entries=entries)


def build_hang_report(
    sim: "Simulator",
    budget: Optional[float] = None,
    max_dispatches: Optional[int] = None,
) -> HangReport:
    """Snapshot every live process of a budget-exceeded simulation."""
    entries = []
    for proc in sim.processes:
        if proc.state is ProcState.PASSIVE:
            entries.append(pending_call_of(proc))
        elif proc.state in (ProcState.SCHEDULED, ProcState.RUNNING):
            entries.append(
                PendingCall(
                    process=proc.name,
                    pid=proc.pid,
                    kind="runnable",
                    detail=proc.waiting_reason() or proc.state.value,
                    rank=proc.context.get("mpi_rank"),
                    thread=proc.context.get("omp_thread_num"),
                )
            )
    return HangReport(
        time=sim.now,
        dispatch_count=sim.dispatch_count,
        entries=tuple(entries),
        budget=budget,
        max_dispatches=max_dispatches,
    )
