"""Shared benchmark fixtures and reporting helpers.

Besides the pytest-benchmark integration, every benchmark run through
the ``run_bench`` fixture is recorded into a machine-readable summary
(``benchmarks/BENCH_SUMMARY.json``): wall time, simulator dispatch
count and trace event count per benchmark.  Perf-trajectory tooling
reads that file instead of scraping pytest-benchmark's console output.
"""

import json
import time
from pathlib import Path

import pytest

SUMMARY_PATH = Path(__file__).resolve().parent / "BENCH_SUMMARY.json"

_records: list[dict] = []


def _extract_run_stats(value) -> tuple[int, int]:
    """Best-effort (dispatch_count, event_count) from a bench result.

    Benchmarks return ``RunResult``/``OmpRunResult`` objects, tuples
    containing them, or unrelated values; anything unrecognized simply
    contributes zero.
    """
    dispatches = 0
    events = 0
    items = value if isinstance(value, (tuple, list)) else (value,)
    for item in items:
        sim = getattr(item, "sim", None)
        if sim is None:
            world = getattr(item, "world", None)
            sim = getattr(world, "sim", None)
        if sim is not None:
            dispatches += getattr(sim, "dispatch_count", 0)
        recorder = getattr(item, "recorder", None)
        if recorder is not None:
            events += len(getattr(recorder, "events", ()))
    return dispatches, events


def _benchmark_time(benchmark, fallback: float) -> float:
    try:
        return float(benchmark.stats.stats.min)
    except AttributeError:
        return fallback


def run_once_benchmark(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic simulation with few rounds.

    Simulated runs are deterministic, so statistical repetition only
    measures host jitter; three rounds keep pytest-benchmark's
    reporting while bounding wall time.
    """
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=3, iterations=1,
        warmup_rounds=0,
    )
    elapsed = time.perf_counter() - t0
    dispatches, events = _extract_run_stats(result)
    _records.append(
        {
            "name": getattr(benchmark, "name", fn.__name__),
            "time_s": round(_benchmark_time(benchmark, elapsed), 6),
            "dispatch_count": dispatches,
            "events": events,
        }
    )
    return result


@pytest.fixture
def run_bench():
    return run_once_benchmark


def pytest_sessionfinish(session, exitstatus):
    if not _records:
        return
    SUMMARY_PATH.write_text(
        json.dumps({"benchmarks": _records}, indent=2) + "\n"
    )
