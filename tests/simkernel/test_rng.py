"""Unit and property-based tests for the lock-free parallel RNG."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Lcg64


def test_same_seed_same_stream():
    a, b = Lcg64(42), Lcg64(42)
    assert [a.next_u64() for _ in range(10)] == [
        b.next_u64() for _ in range(10)
    ]


def test_different_seeds_differ():
    a, b = Lcg64(1), Lcg64(2)
    assert [a.next_u64() for _ in range(4)] != [
        b.next_u64() for _ in range(4)
    ]


def test_random_in_unit_interval():
    rng = Lcg64(7)
    for _ in range(1000):
        x = rng.random()
        assert 0.0 <= x < 1.0


def test_random_roughly_uniform():
    rng = Lcg64(123)
    n = 20000
    mean = sum(rng.random() for _ in range(n)) / n
    assert abs(mean - 0.5) < 0.02


def test_randrange_bounds_and_error():
    rng = Lcg64(5)
    for _ in range(200):
        assert 0 <= rng.randrange(7) < 7
    with pytest.raises(ValueError):
        rng.randrange(0)


def test_uniform_bounds():
    rng = Lcg64(9)
    for _ in range(200):
        x = rng.uniform(2.0, 3.0)
        assert 2.0 <= x < 3.0


def test_spawn_deterministic_and_independent():
    parent = Lcg64(99)
    c1 = parent.spawn(0)
    c2 = parent.spawn(1)
    c1_again = Lcg64(99).spawn(0)
    seq1 = [c1.next_u64() for _ in range(5)]
    assert seq1 == [c1_again.next_u64() for _ in range(5)]
    assert seq1 != [c2.next_u64() for _ in range(5)]


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=50)
def test_next_u64_always_64bit(seed):
    rng = Lcg64(seed)
    for _ in range(8):
        assert 0 <= rng.next_u64() < 2**64


@given(
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50)
def test_spawn_children_reproducible(seed, index):
    a = Lcg64(seed).spawn(index)
    b = Lcg64(seed).spawn(index)
    assert a.next_u64() == b.next_u64()


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=30)
def test_sibling_streams_decorrelated(seed):
    # Adjacent spawn indices must not produce identical first draws.
    parent = Lcg64(seed)
    draws = {parent.spawn(i).next_u64() for i in range(16)}
    assert len(draws) == 16
