"""CLI tests for ``ats synth`` (in-process via main(argv))."""

import json

import pytest

from repro.cli import main


def _args(sub, name, *extra):
    return [
        "synth", sub, name,
        "--scenarios", "6", "--sizes", "4", "--threads", "2",
        "--seed", "3", *extra,
    ]


def test_synth_generate_prints_table(capsys):
    assert main(_args("generate", "cli-gen")) == 0
    out = capsys.readouterr().out
    assert "cli-gen/00000" in out
    assert "cli-gen/00005" in out


def test_synth_generate_json_artifact(tmp_path, capsys):
    dest = tmp_path / "scenarios.json"
    assert main(_args("generate", "cli-gen", "--json", str(dest))) == 0
    payload = json.loads(dest.read_text())
    assert payload["format"] == "ats-synth-scenarios"
    assert len(payload["scenarios"]) == 6
    for entry in payload["scenarios"]:
        expected_name = f"cli-gen/{entry['index']:05d}"
        assert entry["manifest"]["scenario"] == expected_name


def test_synth_campaign_runs_scores_and_archives(tmp_path, capsys):
    dest = tmp_path / "campaign.json"
    arch = tmp_path / "arch"
    code = main(_args(
        "campaign", "cli-camp",
        "--json", str(dest), "--archive", str(arch),
    ))
    out = capsys.readouterr().out
    assert code == 0
    assert "cli-camp" in out
    assert "recall" in out
    payload = json.loads(dest.read_text())
    assert payload["format"] == "ats-synth-campaign"
    assert len(payload["cells"]) == 6
    assert (arch / "manifest.json").exists() or any(arch.iterdir())


def test_synth_score_reads_campaign_artifact(tmp_path, capsys):
    dest = tmp_path / "campaign.json"
    main(_args("campaign", "cli-camp", "--json", str(dest)))
    capsys.readouterr()
    assert main(["synth", "score", str(dest)]) == 0
    out = capsys.readouterr().out
    assert "cli-camp" in out


def test_synth_campaign_spec_file_round_trip(tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "name": "cli-spec", "scenarios": 4, "sizes": [4],
        "threads": 2, "seed": 1,
    }))
    assert main(["synth", "generate", "--spec", str(spec_file)]) == 0
    out = capsys.readouterr().out
    assert "cli-spec/00000" in out


def test_synth_name_collision_exits_2_with_one_stderr_line(capsys):
    assert main(_args("generate", "late_sender")) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert err.startswith("ats: error:")
    assert "collides" in err


def test_synth_unknown_property_suggests_alternative(capsys):
    assert main(
        _args("generate", "cli-gen", "--properties", "late_snder")
    ) == 2
    err = capsys.readouterr().err
    assert "late_sender" in err


def test_synth_bad_spec_file_rejected(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["synth", "generate", "--spec", str(missing)]) == 2

    garbled = tmp_path / "bad.json"
    garbled.write_text("{not json")
    assert main(["synth", "generate", "--spec", str(garbled)]) == 2


def test_synth_score_rejects_non_campaign_artifact(tmp_path, capsys):
    other = tmp_path / "other.json"
    other.write_text(json.dumps({"format": "something-else"}))
    assert main(["synth", "score", str(other)]) == 2
