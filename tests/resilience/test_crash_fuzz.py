"""Crash fuzzing the journals: truncate at every byte a kill can tear.

A SIGKILL (or power cut, modulo fsync) leaves an append-only journal
truncated at an arbitrary point of its final in-flight write.  These
tests enumerate the interesting truncation points of real journal
files -- every record boundary plus several mid-record offsets -- and
assert the recovery contract at each one:

* ``load()`` never raises: the torn tail heals away;
* every record fully on disk before the cut survives;
* appending after recovery produces a clean, fully loadable journal.

The same machinery backs the supervised-sweep checkpoints, the archive
manifest and the service job journal, so all three formats are fuzzed.
"""

import json
import threading

import pytest

from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointJournal,
)
from repro.service.journal import ServiceJournal
from repro.service.jobs import Job


def _cut_points(data: bytes):
    """Every record boundary plus mid-record offsets, 0..len(data)."""
    points = {0, len(data)}
    offset = 0
    for line in data.splitlines(keepends=True):
        end = offset + len(line)
        points.add(end)
        for cut in (offset + 1, offset + len(line) // 2, end - 1):
            if offset < cut < end:
                points.add(cut)
        offset = end
    return sorted(points)


def _expected_records(prefix: bytes):
    """The records a correct recovery must yield from ``prefix``.

    Mirrors the acknowledgment contract rather than the parser: a
    record is acknowledged once its full line -- newline terminator
    included -- is flushed, so exactly those records survive; the torn
    final write (even a complete-JSON one missing only its newline)
    must vanish.
    """
    text = prefix.decode("utf-8", errors="replace")
    nl = text.rfind("\n")
    complete = text[: nl + 1].splitlines() if nl >= 0 else []
    expected = {}
    for index, line in enumerate(complete):
        record = json.loads(line)  # complete lines are intact
        if index:
            expected[record["key"]] = record["payload"]
    return expected


class TestCheckpointFuzz:
    def _intact(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "sweep.jsonl")
        for i in range(6):
            journal.record(f"cell-{i}", {"i": i, "out": "x" * (5 * i)})
        journal.close()
        return (tmp_path / "sweep.jsonl").read_bytes()

    def test_every_cut_point_recovers(self, tmp_path):
        data = self._intact(tmp_path)
        points = _cut_points(data)
        assert len(points) > 20  # the fuzz actually enumerates
        for cut in points:
            path = tmp_path / f"cut-{cut}.jsonl"
            path.write_bytes(data[:cut])
            loaded = CheckpointJournal(path).load()
            assert loaded == _expected_records(data[:cut]), (
                f"divergence at cut {cut}"
            )

    def test_append_after_every_cut_heals(self, tmp_path):
        data = self._intact(tmp_path)
        for cut in _cut_points(data):
            path = tmp_path / f"cut-{cut}.jsonl"
            path.write_bytes(data[:cut])
            journal = CheckpointJournal(path)
            journal.record("after-crash", {"ok": True})
            journal.close()
            # the healed file replays cleanly, torn record gone,
            # new record present
            loaded = CheckpointJournal(path).load()
            assert loaded["after-crash"] == {"ok": True}
            survivors = _expected_records(data[:cut])
            for key, payload in survivors.items():
                assert loaded[key] == payload

    def test_mid_file_corruption_still_raises(self, tmp_path):
        # fuzz tolerance must not have widened into accepting garbage
        path = tmp_path / "sweep.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a", {})
        journal.record("b", {})
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b'{"torn' + b"".join(lines[1:]))
        with pytest.raises(CheckpointError):
            CheckpointJournal(path).load()


class TestServiceJournalFuzz:
    def _intact(self, tmp_path):
        journal = ServiceJournal(tmp_path / "jobs.jsonl", fsync=False)
        jobs = []
        for i in range(4):
            job = Job("run", {"property": "p", "seed": i})
            journal.record_state(job)
            jobs.append(job)
        jobs[0].mark_running()
        journal.record_state(jobs[0])
        jobs[0].resolve({"answer": 1}, None)
        journal.record_state(jobs[0])
        jobs[1].resolve(None, "boom")
        journal.record_state(jobs[1])
        journal.close()
        return (tmp_path / "jobs.jsonl").read_bytes(), jobs

    def test_every_cut_point_recovers(self, tmp_path):
        data, jobs = self._intact(tmp_path)
        for cut in _cut_points(data):
            path = tmp_path / f"cut-{cut}.jsonl"
            path.write_bytes(data[:cut])
            loaded = ServiceJournal(path).load()
            expected = _expected_records(data[:cut])
            assert loaded == expected, f"divergence at cut {cut}"
            # acknowledgment contract: every job whose spec record
            # is complete on disk is still known after the crash
            for job in jobs:
                spec_line = data.split(b"\n")[1:][
                    [j.id for j in jobs].index(job.id)
                ]
                if data[:cut].count(spec_line + b"\n"):
                    assert job.id in loaded

    def test_full_journal_replays_last_wins(self, tmp_path):
        data, jobs = self._intact(tmp_path)
        loaded = ServiceJournal(tmp_path / "jobs.jsonl").load()
        assert loaded[jobs[0].id]["state"] == "done"
        assert loaded[jobs[1].id]["state"] == "failed"
        assert loaded[jobs[2].id]["state"] == "queued"


class TestWriteFailureRollback:
    def test_failed_write_is_truncated_away(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a", {"n": 1})
        size_before = path.stat().st_size

        real = journal._open()

        class TornWriter:
            def write(self, s):
                # tear a prefix into the file, then fail -- the worst
                # shape a disk-full write can leave behind
                real.write(s[: len(s) // 2])
                real.flush()
                raise OSError(28, "No space left on device")

            def __getattr__(self, name):
                return getattr(real, name)

        journal._fh = TornWriter()
        with pytest.raises(OSError):
            journal.record("b", {"n": 2})
        journal._fh = real

        # the torn bytes are gone: the file is exactly as acknowledged
        assert path.stat().st_size == size_before
        journal.record("c", {"n": 3})
        journal.close()
        loaded = CheckpointJournal(path).load()
        assert loaded == {"a": {"n": 1}, "c": {"n": 3}}

    def test_unrollbackable_failure_marks_broken(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a", {})
        real = journal._open()

        class Bricked:
            def write(self, s):
                raise OSError(5, "Input/output error")

            def truncate(self, n):
                raise OSError(5, "Input/output error")

            def __getattr__(self, name):
                return getattr(real, name)

        journal._fh = Bricked()
        with pytest.raises(OSError):
            journal.record("b", {})
        journal._fh = real
        # further appends refuse rather than bury a torn record
        with pytest.raises(CheckpointError, match="broken"):
            journal.record("c", {})


class TestConcurrentManifestWriters:
    def test_many_threads_one_clean_journal(self, tmp_path):
        from repro.archive.store import ArchiveStore

        store = ArchiveStore(tmp_path / "archive")
        threads, per_thread = 8, 25
        errors = []

        def writer(t):
            try:
                for i in range(per_thread):
                    store.record_run(
                        f"run-{t}-{i}", {"thread": t, "i": i}
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [
            threading.Thread(target=writer, args=(t,))
            for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        store.close()

        assert not errors
        # load_manifest raises on any interleaved/corrupt line, so a
        # clean load of the full count proves writer serialization
        manifest = ArchiveStore(tmp_path / "archive").load_manifest()
        assert len(manifest) == threads * per_thread
        assert manifest["run-3-7"] == {"thread": 3, "i": 7}

    def test_concurrent_identical_blobs_race_benignly(self, tmp_path):
        from repro.archive.store import ArchiveStore

        store = ArchiveStore(tmp_path / "archive")
        data = b"trace-bytes" * 1000
        digests = []

        def writer():
            digests.append(store.put_blob(data))

        pool = [threading.Thread(target=writer) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(set(digests)) == 1
        assert store.get_blob(digests[0]) == data
