"""MPI_Waitany / MPI_Testall semantics."""

import pytest

from repro.simkernel import SimulationCrashed
from repro.simmpi import (
    MPI_INT,
    MpiError,
    alloc_mpi_buf,
    run_mpi,
)
from repro.work import do_work

FAST = dict(model_init_overhead=False)


def test_waitany_returns_earliest_completion():
    order = []

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            bufs = [alloc_mpi_buf(MPI_INT, 1) for _ in range(2)]
            reqs = [
                comm.irecv(bufs[0], 1, tag=1),
                comm.irecv(bufs[1], 2, tag=2),
            ]
            for _ in range(2):
                i, status = comm.waitany(reqs)
                order.append((i, status.source))
        elif me == 1:
            do_work(0.05)  # slower sender
            comm.send(buf, 0, tag=1)
        elif me == 2:
            do_work(0.01)  # faster sender
            comm.send(buf, 0, tag=2)

    run_mpi(main, 3, **FAST)
    assert order == [(1, 2), (0, 1)]  # rank 2's message first


def test_waitany_blocks_until_something_completes():
    times = {}

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            req = comm.irecv(buf, 1)
            i, _ = comm.waitany([req])
            times["done"] = comm.world.sim.now
            assert i == 0
        else:
            do_work(0.1)
            comm.send(buf, 0)

    run_mpi(main, 2, **FAST)
    assert times["done"] >= 0.1


def test_waitany_skips_consumed_requests():
    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            b1, b2 = alloc_mpi_buf(MPI_INT, 1), alloc_mpi_buf(MPI_INT, 1)
            reqs = [comm.irecv(b1, 1, 1), comm.irecv(b2, 1, 2)]
            first, _ = comm.waitany(reqs)
            second, _ = comm.waitany(reqs)
            assert {first, second} == {0, 1}
        else:
            comm.send(buf, 0, tag=1)
            comm.send(buf, 0, tag=2)

    run_mpi(main, 2, **FAST)


def test_waitany_empty_list_is_error():
    def main(comm):
        comm.waitany([])

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 1, **FAST)
    assert isinstance(info.value.original, MpiError)


def test_waitany_all_consumed_is_error():
    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            req = comm.irecv(buf, 1)
            comm.waitany([req])
            comm.waitany([req])  # nothing left
        else:
            comm.send(buf, 0)

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, MpiError)


def test_waitany_wakeup_does_not_leak_to_later_waits():
    """A stale waitany registration must not wake an unrelated wait."""

    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            b1, b2 = alloc_mpi_buf(MPI_INT, 1), alloc_mpi_buf(MPI_INT, 1)
            r1 = comm.irecv(b1, 1, 1)
            r2 = comm.irecv(b2, 1, 2)
            i, _ = comm.waitany([r1, r2])
            assert i == 0
            # r2 completes later; a stale registration from the first
            # waitany must not interfere with the plain wait below.
            do_work(0.01)
            comm.wait(r2)
        else:
            comm.send(buf, 0, tag=1)
            do_work(0.05)
            comm.send(buf, 0, tag=2)

    run_mpi(main, 2, **FAST)


def test_testall_polls_everything():
    def main(comm):
        me = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 1)
        if me == 0:
            bufs = [alloc_mpi_buf(MPI_INT, 1) for _ in range(2)]
            reqs = [comm.irecv(bufs[i], 1, tag=i) for i in range(2)]
            assert comm.testall(reqs) is False
            do_work(0.1)
            assert comm.testall(reqs) is True
        else:
            do_work(0.02)
            comm.send(buf, 0, tag=0)
            comm.send(buf, 0, tag=1)

    run_mpi(main, 2, **FAST)
