"""Detector robustness under injected faults (noise-swept validation).

The harness in :mod:`repro.validation.harness` grades a tool on clean
traces.  This module sweeps a :class:`~repro.faults.FaultPlan`'s
magnitude across the same programs and measures how detection degrades:
for every analyzer property id it produces a **true-positive curve**
(fraction of runs that should exhibit the property where the tool still
reports it) and a **false-positive curve** (fraction of runs that
should *not* exhibit it where the tool reports it anyway) as functions
of perturbation magnitude.

The per-cell pipeline matches how a real tool meets a noisy run:

1. execute the program with the scaled plan's runtime perturbations
   (stragglers, jitter, latency noise, reorder) active,
2. if the plan carries trace faults, round-trip the trace through a
   fault-injecting :class:`~repro.trace.io.TraceWriter` and read it
   back with ``skip_bad_lines`` + ``salvage`` (the recovery path),
3. analyze and compare against the registry ground truth.

Magnitude 0 scales every perturbation to a no-op, so the zero point of
each curve is exactly the clean validation matrix.  Everything is
seed-deterministic: the same ``(programs, magnitudes, seeds, plan)``
produces byte-identical JSON across invocations.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import AnalysisConfig, analyze_events, analyze_run
from ..core.registry import PropertySpec, list_properties
from ..faults import FaultInjector, FaultPlan
from ..trace.io import read_trace, write_trace
from .harness import GLOBALLY_ALLOWED

#: default magnitude grid (>= 3 nonzero-capable points, anchored at 0)
DEFAULT_MAGNITUDES: Tuple[float, ...] = (0.0, 0.35, 0.7, 1.0)


@dataclass(frozen=True)
class RobustnessCell:
    """One program run under one (magnitude, seed) noise setting."""

    program: str
    paradigm: str
    negative: bool
    magnitude: float
    seed: int
    expected: Tuple[str, ...]
    detected: Tuple[str, ...]
    missing: Tuple[str, ...]
    spurious: Tuple[str, ...]
    #: property ids tolerated but not required (spec.allowed + global)
    allowed: Tuple[str, ...]
    events: int
    #: exception text when the perturbed run or trace read failed;
    #: a failed cell counts as detecting nothing
    error: Optional[str] = None
    salvaged: bool = False

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "paradigm": self.paradigm,
            "negative": self.negative,
            "magnitude": self.magnitude,
            "seed": self.seed,
            "expected": list(self.expected),
            "detected": list(self.detected),
            "missing": list(self.missing),
            "spurious": list(self.spurious),
            "allowed": list(self.allowed),
            "events": self.events,
            "error": self.error,
            "salvaged": self.salvaged,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RobustnessCell":
        """Inverse of :meth:`to_dict` (checkpoint replay)."""
        return cls(
            program=d["program"],
            paradigm=d["paradigm"],
            negative=d["negative"],
            magnitude=d["magnitude"],
            seed=d["seed"],
            expected=tuple(d["expected"]),
            detected=tuple(d["detected"]),
            missing=tuple(d["missing"]),
            spurious=tuple(d["spurious"]),
            allowed=tuple(d["allowed"]),
            events=d["events"],
            error=d.get("error"),
            salvaged=d.get("salvaged", False),
        )


@dataclass(frozen=True)
class CurvePoint:
    """One magnitude sample of one detector's TP/FP rates."""

    magnitude: float
    #: runs where the property was expected / where it was detected
    opportunities: int
    detections: int
    #: runs where it was neither expected nor allowed / false alarms
    clean_runs: int
    false_alarms: int

    @property
    def true_positive_rate(self) -> Optional[float]:
        if not self.opportunities:
            return None
        return self.detections / self.opportunities

    @property
    def false_positive_rate(self) -> Optional[float]:
        if not self.clean_runs:
            return None
        return self.false_alarms / self.clean_runs

    def to_dict(self) -> dict:
        return {
            "magnitude": self.magnitude,
            "opportunities": self.opportunities,
            "detections": self.detections,
            "clean_runs": self.clean_runs,
            "false_alarms": self.false_alarms,
            "true_positive_rate": self.true_positive_rate,
            "false_positive_rate": self.false_positive_rate,
        }


@dataclass
class RobustnessResult:
    """All cells of one sweep plus the derived per-detector curves."""

    magnitudes: Tuple[float, ...]
    seeds: Tuple[int, ...]
    plan: FaultPlan
    cells: List[RobustnessCell] = field(default_factory=list)
    #: detector families the sweep ran (provenance)
    families: Tuple[str, ...] = ("rule",)

    # ------------------------------------------------------------------
    # curve derivation
    # ------------------------------------------------------------------

    def properties(self) -> List[str]:
        """Every property id that is expected or was ever detected."""
        props = set()
        for cell in self.cells:
            props.update(cell.expected)
            props.update(cell.detected)
        return sorted(props)

    def curves(self) -> Dict[str, List[CurvePoint]]:
        """Property id -> TP/FP curve over the magnitude grid."""
        out: Dict[str, List[CurvePoint]] = {}
        for prop in self.properties():
            points = []
            for magnitude in self.magnitudes:
                opportunities = detections = clean = alarms = 0
                for cell in self.cells:
                    if cell.magnitude != magnitude:
                        continue
                    if prop in cell.expected:
                        opportunities += 1
                        if prop in cell.detected:
                            detections += 1
                    elif prop not in cell.allowed:
                        clean += 1
                        if prop in cell.detected:
                            alarms += 1
                points.append(
                    CurvePoint(
                        magnitude=magnitude,
                        opportunities=opportunities,
                        detections=detections,
                        clean_runs=clean,
                        false_alarms=alarms,
                    )
                )
            out[prop] = points
        return out

    @property
    def errors(self) -> List[RobustnessCell]:
        return [c for c in self.cells if c.error is not None]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "format": "ats-robustness",
            "version": 1,
            "magnitudes": list(self.magnitudes),
            "seeds": list(self.seeds),
            "families": list(self.families),
            "plan": self.plan.to_dict(),
            "programs": sorted({c.program for c in self.cells}),
            "curves": {
                prop: [p.to_dict() for p in points]
                for prop, points in self.curves().items()
            },
            "cells": [c.to_dict() for c in self.cells],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    def format_table(self) -> str:
        """Per-detector TP/FP rates across the magnitude grid."""

        def pct(rate: Optional[float]) -> str:
            return "   -" if rate is None else f"{rate:4.0%}"

        header = f"{'detector / magnitude':<28}" + "".join(
            f"{m:>12g}" for m in self.magnitudes
        )
        lines = [header]
        for prop, points in self.curves().items():
            tp = "".join(f"{pct(p.true_positive_rate):>12}" for p in points)
            fp = "".join(f"{pct(p.false_positive_rate):>12}" for p in points)
            lines.append(f"{prop:<28}{tp}  TP")
            lines.append(f"{'':<28}{fp}  FP")
        n_err = len(self.errors)
        lines.append(
            f"{len(self.cells)} runs over {len(self.magnitudes)} "
            f"magnitudes x {len(self.seeds)} seed(s)"
            + (f", {n_err} failed under faults" if n_err else "")
        )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _build_cell(
    spec: PropertySpec,
    magnitude: float,
    seed: int,
    detected: Sequence[str] = (),
    events: int = 0,
    error: Optional[str] = None,
    salvaged: bool = False,
    families: Tuple[str, ...] = ("rule",),
) -> RobustnessCell:
    tolerated = tuple(
        sorted(set(spec.allowed) | set(GLOBALLY_ALLOWED))
    )
    expected = spec.expected
    if "similarity" in families:
        # The statistical family is graded through the class taxonomy:
        # every statistical property whose covered classes intersect
        # the registry ground truth becomes expected, so its TP/FP
        # curves are as well-defined as the rule-based ones.  On
        # *positive* programs the remaining statistical ids are
        # tolerated -- a statistical anomaly flag on a run that is
        # pathological by construction is correct at the family's
        # granularity -- while on negative programs no statistical id
        # is allowed, so false alarms are measured honestly.
        from ..stats import (
            SIMILARITY_PROPERTY_IDS,
            statistical_expectations,
        )

        expected = tuple(
            sorted(set(expected) | set(statistical_expectations(expected)))
        )
        if not spec.negative:
            tolerated = tuple(
                sorted(
                    set(tolerated)
                    | (set(SIMILARITY_PROPERTY_IDS) - set(expected))
                )
            )
    detected = tuple(detected)
    return RobustnessCell(
        program=spec.name,
        paradigm=spec.paradigm,
        negative=spec.negative,
        magnitude=magnitude,
        seed=seed,
        expected=expected,
        detected=detected,
        missing=tuple(p for p in expected if p not in detected),
        spurious=tuple(
            p
            for p in detected
            if p not in expected and p not in tolerated
        ),
        allowed=tolerated,
        events=events,
        error=error,
        salvaged=salvaged,
    )


def _run_cell_checked(
    spec: PropertySpec,
    magnitude: float,
    seed: int,
    plan: FaultPlan,
    size: int,
    num_threads: int,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float] = None,
    archive=None,
    families: Tuple[str, ...] = ("rule",),
) -> RobustnessCell:
    """One cell, raising on failure (the supervisor's entry point).

    A deadlocking or hung program raises
    :class:`~repro.simkernel.DeadlockError` /
    :class:`~repro.simkernel.HangError` out of here so the supervisor
    can classify and quarantine it with its structured report intact.

    With an ``archive``, the events the analyzer actually saw (after
    any trace-fault round trip) are recorded under the scaled plan --
    the faulty-run side of an ``ats diff`` against a clean baseline.
    """

    def _archive(events, final_time, transport) -> None:
        if archive is None:
            return
        from ..archive import params_to_jsonable

        archive.record(
            program=spec.name,
            events=events,
            final_time=final_time,
            paradigm=spec.paradigm,
            params=params_to_jsonable(spec.default_params),
            size=size,
            threads=num_threads,
            seed=seed,
            plan=dict(scaled.to_dict(), magnitude=magnitude),
            eager_threshold=(
                transport.eager_threshold if transport is not None else None
            ),
        )

    from ..stats import battery_for

    detectors = battery_for(families)
    scaled = plan.scaled(magnitude)
    injector = FaultInjector.coerce(scaled, seed=seed)
    run = spec.run(
        size=size,
        num_threads=num_threads,
        seed=seed,
        faults=injector,
        time_budget=time_budget,
    )
    if injector is None or not injector.has_trace_faults:
        _archive(run.events, run.final_time, getattr(run, "transport", None))
        analysis = analyze_run(run, detectors=detectors)
        return _build_cell(
            spec,
            magnitude,
            seed,
            detected=analysis.detected(threshold),
            events=len(run.events),
            families=families,
        )
    # Trace faults: round-trip through the fault-injecting writer and
    # the salvaging reader -- the analyzer sees what landed on disk.
    path = workdir / (
        f"{spec.name}-m{magnitude:g}-s{seed}.trace.jsonl"
    )
    write_trace(
        path,
        run.events,
        metadata={"program": spec.name, "seed": seed},
        faults=injector,
    )
    events, metadata = read_trace(
        path, skip_bad_lines=True, salvage=True
    )
    transport = getattr(run, "transport", None)
    _archive(events, run.final_time, transport)
    config = (
        AnalysisConfig(eager_threshold=transport.eager_threshold)
        if transport is not None
        else None
    )
    analysis = analyze_events(
        events,
        total_time=run.final_time,
        config=config,
        detectors=detectors,
    )
    return _build_cell(
        spec,
        magnitude,
        seed,
        detected=analysis.detected(threshold),
        events=len(events),
        salvaged=bool(metadata.get("truncated")),
        families=families,
    )


def _run_cell(
    spec: PropertySpec,
    magnitude: float,
    seed: int,
    plan: FaultPlan,
    size: int,
    num_threads: int,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float] = None,
    archive=None,
    families: Tuple[str, ...] = ("rule",),
) -> RobustnessCell:
    """One cell with failures folded into the cell itself (direct mode)."""
    try:
        return _run_cell_checked(
            spec,
            magnitude,
            seed,
            plan,
            size,
            num_threads,
            threshold,
            workdir,
            time_budget,
            archive,
            families,
        )
    except Exception as exc:  # a fault broke the run or its trace
        return _build_cell(
            spec,
            magnitude,
            seed,
            error=f"{type(exc).__name__}: {exc}",
            families=families,
        )


def cell_key(spec_name: str, magnitude: float, seed: int) -> str:
    """Stable checkpoint key of one sweep cell."""
    return f"{spec_name}|m{magnitude:g}|s{seed}"


def _forked_cell(
    runner,
    spec: PropertySpec,
    magnitude: float,
    seed: int,
    plan: FaultPlan,
    size: int,
    num_threads: int,
    threshold: float,
    workdir: Path,
    time_budget: Optional[float],
    archive,
    families: Tuple[str, ...],
) -> dict:
    """Child-side cell body for the fork executor.

    Flips the inherited archive into deferred-manifest mode (blob
    writes are fork-safe; journal appends are not -- the queued records
    ride home on the extras channel) and returns the cell as the JSON
    dict that crosses the result pipe.
    """
    if archive is not None:
        archive.store.begin_deferred()
    return runner(
        spec,
        magnitude,
        seed,
        plan,
        size,
        num_threads,
        threshold,
        workdir,
        time_budget,
        archive,
        families,
    ).to_dict()


def _run_grid_forked(
    specs,
    magnitudes,
    seeds,
    plan,
    size,
    num_threads,
    threshold,
    workdir,
    time_budget,
    supervisor,
    archive,
    workers,
    result,
    families,
) -> None:
    """Fan the cell grid out over forked workers (see run_robustness)."""
    from ..resilience.forked import run_cells_forked

    runner = _run_cell_checked if supervisor is not None else _run_cell
    grid = []
    cells = []
    for spec in specs:
        for magnitude in magnitudes:
            for seed in seeds:
                grid.append((spec, magnitude, seed))
                cells.append(
                    (
                        cell_key(spec.name, magnitude, seed),
                        lambda spec=spec, m=magnitude, s=seed: _forked_cell(
                            runner,
                            spec,
                            m,
                            s,
                            plan,
                            size,
                            num_threads,
                            threshold,
                            workdir,
                            time_budget,
                            archive,
                            families,
                        ),
                    )
                )
    extras_fn = None
    on_extras = None
    if archive is not None:
        extras_fn = archive.store.drain_deferred

        def on_extras(key, records):
            for run_id, payload in records:
                archive.store.record_run(run_id, payload)

    outcomes = run_cells_forked(
        cells,
        workers=workers,
        supervisor=supervisor,
        extras_fn=extras_fn,
        on_extras=on_extras,
    )
    for (spec, magnitude, seed), outcome in zip(grid, outcomes):
        if outcome.ok:
            value = outcome.value
            if not isinstance(value, RobustnessCell):
                value = RobustnessCell.from_dict(value)
            result.cells.append(value)
        else:
            result.cells.append(
                _build_cell(
                    spec,
                    magnitude,
                    seed,
                    error=outcome.failure.error,
                    families=families,
                )
            )


def run_robustness(
    specs: Optional[Sequence[PropertySpec]] = None,
    magnitudes: Sequence[float] = DEFAULT_MAGNITUDES,
    seeds: Sequence[int] = (0,),
    plan: Optional[FaultPlan] = None,
    size: int = 8,
    num_threads: int = 4,
    threshold: float = 0.01,
    time_budget: Optional[float] = None,
    supervisor=None,
    archive=None,
    workers: int = 1,
    families: Sequence[str] = ("rule",),
) -> RobustnessResult:
    """Sweep perturbation magnitude across the validation programs.

    ``specs`` defaults to every registered program (positive and
    negative); ``plan`` defaults to :meth:`FaultPlan.default`.  Returns
    the full cell grid with per-detector TP/FP curves.

    ``time_budget`` arms the per-run virtual-time watchdog, and
    ``supervisor`` (a :class:`repro.resilience.Supervisor`) runs each
    cell supervised: wall-clock timeout, retry, quarantine, and -- when
    the supervisor carries a checkpoint journal -- resume.  Failed
    cells surface identically in both modes (as error cells counting as
    "detected nothing"), so a supervised sweep's artifact is
    byte-identical to a direct one unless wall-clock timeouts fire.
    ``archive`` records every analyzed (possibly fault-damaged) trace
    in a :class:`repro.archive.Archive` under its scaled fault plan.

    ``workers > 1`` fans the cell grid out over forked child processes
    (:mod:`repro.resilience.forked`) -- true multicore throughput.
    Cells are independent and seed-deterministic, and results are
    assembled in grid order, so the returned result (and its JSON) is
    byte-identical to a serial sweep for any worker count.

    ``families`` selects the detector families to run (see
    :func:`repro.stats.battery_for`).  With ``"similarity"`` enabled,
    each cell's ``expected`` set is augmented with the statistical
    property ids the ground truth obliges (class-taxonomy mapping), so
    the statistical family gets TP/FP curves of its own -- and the
    statistical ids are *not* added to ``allowed``, so a statistical
    detection on a negative program counts as a false positive.
    """
    specs = list_properties() if specs is None else list(specs)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if archive is not None:
        from ..archive import coerce_archive

        archive = coerce_archive(archive)
    plan = FaultPlan.default() if plan is None else plan
    magnitudes = tuple(magnitudes)
    seeds = tuple(seeds)
    families = tuple(families)
    if not magnitudes:
        raise ValueError("need at least one magnitude")
    if not seeds:
        raise ValueError("need at least one seed")
    from ..stats import battery_for

    battery_for(families)  # validates family names
    result = RobustnessResult(
        magnitudes=magnitudes, seeds=seeds, plan=plan, families=families
    )
    with tempfile.TemporaryDirectory(prefix="ats-robustness-") as tmp:
        workdir = Path(tmp)
        if workers > 1:
            _run_grid_forked(
                specs,
                magnitudes,
                seeds,
                plan,
                size,
                num_threads,
                threshold,
                workdir,
                time_budget,
                supervisor,
                archive,
                workers,
                result,
                families,
            )
            return result
        for spec in specs:
            for magnitude in magnitudes:
                for seed in seeds:
                    if supervisor is None:
                        result.cells.append(
                            _run_cell(
                                spec,
                                magnitude,
                                seed,
                                plan,
                                size,
                                num_threads,
                                threshold,
                                workdir,
                                time_budget,
                                archive,
                                families,
                            )
                        )
                        continue
                    outcome = supervisor.run_cell(
                        cell_key(spec.name, magnitude, seed),
                        lambda spec=spec, m=magnitude, s=seed: (
                            _run_cell_checked(
                                spec,
                                m,
                                s,
                                plan,
                                size,
                                num_threads,
                                threshold,
                                workdir,
                                time_budget,
                                archive,
                                families,
                            )
                        ),
                        encode=lambda c: c.to_dict(),
                        decode=RobustnessCell.from_dict,
                    )
                    if outcome.ok:
                        result.cells.append(outcome.value)
                    else:
                        result.cells.append(
                            _build_cell(
                                spec,
                                magnitude,
                                seed,
                                error=outcome.failure.error,
                                families=families,
                            )
                        )
    return result
