"""MPI point-to-point performance property functions.

``late_sender`` and ``late_receiver`` are the two functions of the
paper's prototype; ``messages_in_wrong_order`` and
``late_sender_bottleneck`` extend the list toward the ASL catalog, as
the paper's future-work section plans.

Every property function is a collective-style call: all processes of
the communicator execute it, and its body is bracketed in a trace
region named after the function, so automatic analysis tools localize
the property at the right call path (paper figure 3.5).
"""

from __future__ import annotations

from ...distributions import Val2Distr, df_cyclic2
from ...simmpi.buffers import alloc_mpi_buf, free_mpi_buf
from ...simmpi.communicator import Communicator
from ...simmpi.patterns import mpi_commpattern_sendrecv
from ...simmpi.status import DIR_UP
from ...trace.api import region
from ...work import do_work, par_do_mpi_work
from ..base import alloc_base_buf, base_type


def late_sender(
    basework: float,
    extrawork: float,
    r: int,
    comm: Communicator,
) -> None:
    """*Late sender*: receivers block because sends start too late.

    Paper implementation, verbatim: even ranks (the senders of the
    ``DIR_UP`` send-receive pattern) get ``basework + extrawork`` while
    the odd receivers get only ``basework``, so every receive waits
    about ``extrawork`` seconds, ``r`` times.
    """
    dd = Val2Distr(low=basework + extrawork, high=basework)
    buf = alloc_base_buf()
    with region("late_sender"):
        for _ in range(r):
            par_do_mpi_work(df_cyclic2, dd, 1.0, comm)
            mpi_commpattern_sendrecv(buf, DIR_UP, False, False, comm)
    free_mpi_buf(buf)


def late_receiver(
    basework: float,
    extrawork: float,
    r: int,
    comm: Communicator,
) -> None:
    """*Late receiver*: senders block because receives start too late.

    The symmetric twin of :func:`late_sender`: the odd receivers get
    the extra work.  A sender can only be observed blocking when the
    message uses the rendezvous protocol, so the buffer is sized above
    the transport's eager threshold.
    """
    dd = Val2Distr(low=basework, high=basework + extrawork)
    threshold = comm.world.transport.eager_threshold
    cnt = max(1, threshold // base_type().size + 1)
    buf = alloc_mpi_buf(base_type(), cnt)
    with region("late_receiver"):
        for _ in range(r):
            par_do_mpi_work(df_cyclic2, dd, 1.0, comm)
            mpi_commpattern_sendrecv(buf, DIR_UP, False, False, comm)
    free_mpi_buf(buf)


def messages_in_wrong_order(
    basework: float,
    msgwork: float,
    nmsg: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Messages in wrong order*: receives posted against send order.

    Even ranks send ``nmsg`` messages with descending tags, doing
    ``msgwork`` between sends; odd ranks receive in ascending tag
    order.  The first receive therefore waits for the *last* send --
    a late-sender situation caused purely by message ordering (an ASL
    catalog pattern beyond the paper's initial list).
    """
    buf = alloc_base_buf()
    with region("messages_in_wrong_order"):
        for _ in range(r):
            par_do_mpi_work(
                df_cyclic2, Val2Distr(basework, basework), 1.0, comm
            )
            me = comm.rank()
            sz = comm.size()
            if sz < 2:
                continue
            if sz % 2 and me == sz - 1:
                continue
            if me % 2 == 0:
                for tag in reversed(range(nmsg)):
                    do_work(msgwork)
                    comm.send(buf, me + 1, tag=tag)
            else:
                for tag in range(nmsg):
                    comm.recv(buf, me - 1, tag=tag)
    free_mpi_buf(buf)


def late_sender_bottleneck(
    basework: float,
    extrawork: float,
    r: int,
    comm: Communicator,
) -> None:
    """*N-to-1 late senders*: one receiver drained by many late senders.

    Rank 0 posts wildcard receives from every other rank; the senders
    all carry extra work.  Exercises wildcard matching under the
    late-sender pattern (receiver waits repeatedly).
    """
    from ...simmpi.status import ANY_SOURCE, ANY_TAG

    buf = alloc_base_buf()
    with region("late_sender_bottleneck"):
        for _ in range(r):
            me = comm.rank()
            sz = comm.size()
            if me == 0:
                do_work(basework)
                for _ in range(sz - 1):
                    comm.recv(buf, ANY_SOURCE, ANY_TAG)
            else:
                do_work(basework + extrawork)
                comm.send(buf, 0, tag=me)
    free_mpi_buf(buf)
