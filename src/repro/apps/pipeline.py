"""A software pipeline over the ranks.

Rank ``i`` is pipeline stage ``i``: it receives an item from stage
``i-1``, processes it and forwards it to stage ``i+1``.  Documented
performance behaviour:

* with uniform stage costs the pipeline reaches steady state after a
  fill phase of ``size`` items; only the startup skew shows up,
* one slow stage (``slow_stage``/``slow_factor``) throttles everything
  behind it: upstream stages become *late receivers* of nothing -- in
  practice downstream stages show *late sender* waits as they starve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_DOUBLE
from ..trace.api import region
from ..work import do_work

TAG_ITEM = 7


@dataclass(frozen=True)
class PipelineConfig:
    """Parameters of one pipeline run."""

    nitems: int = 16
    stage_time: float = 0.003
    slow_stage: int = -1  # -1: no slow stage
    slow_factor: float = 4.0

    def stage_cost(self, stage: int) -> float:
        if stage == self.slow_stage:
            return self.stage_time * self.slow_factor
        return self.stage_time


def pipeline(
    comm: Communicator, config: PipelineConfig = PipelineConfig()
) -> float:
    """Run the pipeline; the last stage returns the output checksum."""
    me = comm.rank()
    sz = comm.size()
    item = alloc_mpi_buf(MPI_DOUBLE, 4)
    checksum = 0.0
    with region("pipeline_stage"):
        for i in range(config.nitems):
            if me == 0:
                item.data[:] = float(i)
            else:
                comm.recv(item, me - 1, TAG_ITEM)
            do_work(config.stage_cost(me))
            item.data[:] = item.data + 1.0  # each stage increments
            if me + 1 < sz:
                comm.send(item, me + 1, TAG_ITEM)
            else:
                checksum += float(np.sum(item.data))
    return checksum
