"""Write-time trace faults and the salvage recovery path."""

import pytest

from repro.core.registry import get_property
from repro.faults import (
    DropRecords,
    DuplicateRecords,
    FaultInjector,
    FaultPlan,
    TruncateTrace,
)
from repro.trace.io import (
    TraceFormatError,
    read_trace,
    write_trace,
)


@pytest.fixture(scope="module")
def events():
    run = get_property("late_sender").run(size=4, num_threads=2, seed=0)
    return run.events


def _faulty(plan, seed=0):
    return FaultInjector.coerce(plan, seed=seed)


def test_drop_records_shrinks_the_trace(tmp_path, events):
    path = tmp_path / "t.jsonl"
    write_trace(
        path, events, faults=_faulty(FaultPlan.of(DropRecords(0.3)))
    )
    kept, _ = read_trace(path)
    assert 0 < len(kept) < len(events)


def test_duplicate_records_grows_the_trace(tmp_path, events):
    path = tmp_path / "t.jsonl"
    write_trace(
        path, events, faults=_faulty(FaultPlan.of(DuplicateRecords(0.3)))
    )
    kept, _ = read_trace(path)
    assert len(kept) > len(events)


def test_truncation_leaves_partial_final_record(tmp_path, events):
    path = tmp_path / "t.jsonl"
    write_trace(
        path, events, faults=_faulty(FaultPlan.of(TruncateTrace(0.3)))
    )
    # the cut lands mid-line: a plain read fails on the last line...
    with pytest.raises(TraceFormatError):
        read_trace(path)
    # ...and salvage recovers everything before it
    kept, metadata = read_trace(path, salvage=True)
    assert metadata["truncated"] is True
    assert 0 < len(kept) < len(events)


def test_salvage_does_not_mask_midfile_corruption(tmp_path, events):
    path = tmp_path / "t.jsonl"
    write_trace(path, events[:10])
    lines = path.read_text().splitlines(keepends=True)
    lines[4] = "{broken json\n"  # corruption followed by more records
    path.write_text("".join(lines))
    with pytest.raises(TraceFormatError, match=":5:"):
        read_trace(path, salvage=True)
    # skip-bad-lines still gets past it
    kept, metadata = read_trace(path, skip_bad_lines=True)
    assert metadata["skipped_lines"] == 1
    assert len(kept) == 9


def test_trailing_truncation_with_skip_bad_lines_reports_truncated(
    tmp_path, events
):
    # Regression: with *both* recovery flags (the robustness sweep's
    # invocation) a trailing mid-record truncation used to be counted
    # as one skipped line, with ``truncated`` never set.
    path = tmp_path / "t.jsonl"
    write_trace(
        path, events, faults=_faulty(FaultPlan.of(TruncateTrace(0.3)))
    )
    kept, metadata = read_trace(path, skip_bad_lines=True, salvage=True)
    assert metadata["truncated"] is True
    assert "skipped_lines" not in metadata
    assert 0 < len(kept) < len(events)
    # and both flags agree with salvage alone
    salvage_only, salvage_md = read_trace(path, salvage=True)
    assert len(salvage_only) == len(kept)
    assert salvage_md["truncated"] is True


def test_trace_faults_deterministic(tmp_path, events):
    plan = FaultPlan.of(
        DropRecords(0.1), DuplicateRecords(0.1), TruncateTrace(0.1)
    )
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    write_trace(a, events, faults=_faulty(plan, seed=4))
    write_trace(b, events, faults=_faulty(plan, seed=4))
    assert a.read_bytes() == b.read_bytes()


def test_recorder_dump_applies_faults(tmp_path):
    run = get_property("late_sender").run(size=4, num_threads=2, seed=0)
    path = tmp_path / "dumped.jsonl"
    run.recorder.dump(
        path,
        metadata={"program": "late_sender"},
        faults=_faulty(FaultPlan.of(DropRecords(0.3))),
    )
    kept, metadata = read_trace(path)
    assert 0 < len(kept) < len(run.events)
    assert metadata["program"] == "late_sender"


def test_no_faults_means_untouched_trace(tmp_path, events):
    clean = tmp_path / "clean.jsonl"
    via_none = tmp_path / "none.jsonl"
    write_trace(clean, events)
    write_trace(via_none, events, faults=None)
    assert clean.read_bytes() == via_none.read_bytes()
