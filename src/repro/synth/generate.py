"""Scenario generation strategies: grid, random, adversarial mutation.

All strategies are pure functions of the :class:`CampaignSpec`: the
same spec always yields the same scenario list, and every scenario's
run seed is splitmix-derived from the campaign seed and the scenario
index (:func:`repro.simkernel.derive_seed`), so sibling cells draw
independent random streams -- never ``seed + i`` arithmetic.

The adversarial strategy's *mutation* step lives here too
(:func:`mutate_scenario`); the search loop that picks which cells to
perturb needs detector verdicts and therefore lives in
:mod:`.campaign`.
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Sequence, Tuple

from ..core.registry import (
    PropertySpec,
    get_property,
    has_property,
    list_properties,
)
from ..simkernel import Lcg64, derive_seed
from .scenario import SKELETONS, PropertyDose, Scenario
from .spec import CampaignSpec, SynthError

#: Lcg64 spawn indices reserved by the synthesis engine (arbitrary but
#: fixed: distinct subsystems must never share a derived stream)
_RANDOM_STREAM = 0x5CE_A01
_ADVERSARIAL_STREAM = 0xAD_0B5


def resolve_pool(spec: CampaignSpec) -> List[PropertySpec]:
    """The property specs a campaign samples doses from."""
    if not spec.properties:
        pool = list_properties()
    else:
        pool = []
        for name in spec.properties:
            if not has_property(name):
                candidates = [s.name for s in list_properties()]
                close = difflib.get_close_matches(name, candidates, n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise SynthError(
                    f"campaign {spec.name!r}: unknown property "
                    f"{name!r}{hint}"
                )
            pool.append(get_property(name))
    max_size = max(spec.sizes)
    usable = [p for p in pool if p.min_size <= max(2, max_size)]
    if not usable:
        raise SynthError(
            f"campaign {spec.name!r}: no usable properties "
            f"(every candidate needs more than {max_size} ranks)"
        )
    return usable


def validate_skeletons(spec: CampaignSpec) -> None:
    for name in spec.skeletons:
        if name not in SKELETONS:
            close = difflib.get_close_matches(name, SKELETONS, n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise SynthError(
                f"campaign {spec.name!r}: unknown skeleton "
                f"{name!r}{hint}"
            )


def _make_scenario(
    spec: CampaignSpec,
    index: int,
    doses: Sequence[PropertyDose],
    placement: str,
    skeleton: str,
    size: int,
    magnitude: float,
) -> Scenario:
    """Canonicalize one sampled point into a runnable Scenario.

    Placement and size are adjusted so the scenario is actually
    launchable: pure-OpenMP mixes collapse to placement "all" (there is
    no communicator to split), and undersized cells are bumped to the
    smallest spec size that satisfies every step's rank floor.
    """
    doses = tuple(doses)
    omp_only = doses and all(
        d.spec().paradigm == "omp" for d in doses
    )
    if omp_only and skeleton == "none":
        placement = "all"
    scenario = Scenario(
        campaign=spec.name,
        index=index,
        doses=doses,
        placement=placement,
        skeleton=skeleton,
        size=size,
        threads=spec.threads,
        seed=derive_seed(spec.seed, index),
        noise_magnitude=magnitude,
    )
    required = scenario.min_size()
    split = placement in ("lower", "upper")
    if scenario.paradigm == "mpi":
        ok = size >= required and not (split and size % 2)
        if not ok:
            fits = [
                s
                for s in sorted(spec.sizes)
                if s >= required and not (split and s % 2)
            ]
            size = fits[0] if fits else required + (required % 2)
            scenario = Scenario(
                campaign=spec.name,
                index=index,
                doses=doses,
                placement=placement,
                skeleton=skeleton,
                size=size,
                threads=spec.threads,
                seed=scenario.seed,
                noise_magnitude=magnitude,
            )
    return scenario


def _grid_mixes(
    spec: CampaignSpec, pool: Sequence[PropertySpec]
) -> List[Tuple[str, ...]]:
    """Deterministic mix axis: every single plus adjacent pairs."""
    names = [p.name for p in pool]
    mixes: List[Tuple[str, ...]] = [(n,) for n in names]
    if spec.max_properties >= 2:
        mixes.extend(
            (names[i], names[i + 1])
            for i in range(0, len(names) - 1, 2)
        )
    return mixes


def _generate_grid(
    spec: CampaignSpec, pool: Sequence[PropertySpec]
) -> List[Scenario]:
    # The mix axis varies fastest so short campaigns still sample the
    # whole property pool before revisiting any mix.
    combos = []
    for band in spec.bands:
        for placement in spec.placements:
            for skeleton in spec.skeletons:
                for size in spec.sizes:
                    for magnitude in spec.noise.magnitudes:
                        for mix in _grid_mixes(spec, pool):
                            combos.append(
                                (mix, band, placement, skeleton,
                                 size, magnitude)
                            )
    out = []
    for index in range(spec.scenarios):
        mix, band, placement, skeleton, size, magnitude = combos[
            index % len(combos)
        ]
        doses = [PropertyDose(name, band) for name in mix]
        out.append(
            _make_scenario(
                spec, index, doses, placement, skeleton, size, magnitude
            )
        )
    return out


def _sample_scenario(
    spec: CampaignSpec,
    pool: Sequence[PropertySpec],
    index: int,
    rng: Lcg64,
) -> Scenario:
    k = 1 + rng.randrange(spec.max_properties)
    k = min(k, len(pool))
    chosen: List[int] = []
    while len(chosen) < k:
        pick = rng.randrange(len(pool))
        if pick not in chosen:
            chosen.append(pick)
    doses = [
        PropertyDose(
            pool[i].name, spec.bands[rng.randrange(len(spec.bands))]
        )
        for i in chosen
    ]
    placement = spec.placements[rng.randrange(len(spec.placements))]
    skeleton = spec.skeletons[rng.randrange(len(spec.skeletons))]
    size = spec.sizes[rng.randrange(len(spec.sizes))]
    magnitude = spec.noise.magnitudes[
        rng.randrange(len(spec.noise.magnitudes))
    ]
    return _make_scenario(
        spec, index, doses, placement, skeleton, size, magnitude
    )


def _generate_random(
    spec: CampaignSpec, pool: Sequence[PropertySpec]
) -> List[Scenario]:
    rng = Lcg64(spec.seed).spawn(_RANDOM_STREAM)
    return [
        _sample_scenario(spec, pool, index, rng)
        for index in range(spec.scenarios)
    ]


def generate_scenarios(
    spec: CampaignSpec,
    pool: Optional[Sequence[PropertySpec]] = None,
) -> List[Scenario]:
    """The base scenario list of one campaign (strategy-dispatched).

    The adversarial strategy starts from the random sample; its guided
    refinement rounds are appended during execution (see
    :func:`.campaign.run_campaign`).
    """
    validate_skeletons(spec)
    if pool is None:
        pool = resolve_pool(spec)
    if spec.strategy == "grid":
        return _generate_grid(spec, pool)
    return _generate_random(spec, pool)


def adversarial_rng(spec: CampaignSpec, round_index: int) -> Lcg64:
    """The dedicated stream of one adversarial refinement round."""
    return Lcg64(spec.seed).spawn(_ADVERSARIAL_STREAM).spawn(round_index)


def mutate_scenario(
    spec: CampaignSpec,
    scenario: Scenario,
    index: int,
    rng: Lcg64,
) -> Scenario:
    """Perturb one axis of a disagreement cell (adversarial search).

    The mutant keeps the parent's property mix but moves one sampled
    axis -- severity bands, placement, noise magnitude, or size -- to
    probe the FP/FN boundary the parent sits near.  Its seed is derived
    from its own (fresh) index, so the mutant's trace is independent.
    """
    doses = scenario.doses
    placement = scenario.placement
    magnitude = scenario.noise_magnitude
    size = scenario.size
    axis = rng.randrange(4)
    if axis == 0 and doses:
        doses = tuple(
            PropertyDose(
                d.property,
                spec.bands[rng.randrange(len(spec.bands))],
            )
            for d in doses
        )
    elif axis == 1:
        placement = spec.placements[
            rng.randrange(len(spec.placements))
        ]
    elif axis == 2:
        magnitude = spec.noise.magnitudes[
            rng.randrange(len(spec.noise.magnitudes))
        ]
    else:
        size = spec.sizes[rng.randrange(len(spec.sizes))]
    return _make_scenario(
        spec,
        index,
        doses,
        placement,
        scenario.skeleton,
        size,
        magnitude,
    )
