"""Parallel work specification (paper section 3.1.1).

``par_do_mpi_work`` and ``par_do_omp_work`` are collective-style calls:
every participant of the parallel construct calls them, determines its
own rank/size, evaluates the distribution for itself and performs the
resulting amount of sequential work.  The paper shows the MPI variant's
complete implementation; these are line-for-line equivalents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..distributions import DistrDescriptor
from ..distributions.functions import DistrFunc
from ..simkernel import current_process
from .virtual import do_work

if TYPE_CHECKING:  # pragma: no cover
    from ..simmpi.communicator import Communicator
    from ..simomp.team import Team


def par_do_mpi_work(
    df: DistrFunc,
    dd: DistrDescriptor,
    sf: float,
    comm: "Communicator",
) -> None:
    """Distributed work over the processes of an MPI communicator.

    Equivalent of the paper's::

        void par_do_mpi_work(distr_func_t df, distr_t* dd,
                             double sf, MPI_Comm c)
        {
          int me, sz;
          MPI_Comm_rank(c, &me);  MPI_Comm_size(c, &sz);
          do_work(df(me, sz, sf, dd));
        }
    """
    me = comm.rank()
    sz = comm.size()
    do_work(df(me, sz, sf, dd))


def par_do_omp_work(
    df: DistrFunc,
    dd: DistrDescriptor,
    sf: float,
) -> None:
    """Distributed work over the threads of the active OpenMP team.

    The participants are "specified implicitly by the active OpenMP
    thread team" (paper) -- here via the team binding the OpenMP runtime
    stores in the process context.  Outside any parallel region this
    degrades to a single-participant team, matching OpenMP's sequential
    semantics outside parallel constructs.
    """
    proc = current_process()
    team = proc.context.get("omp_team")
    if team is None:
        do_work(df(0, 1, sf, dd))
    else:
        do_work(df(team.thread_num_of(proc), team.size, sf, dd))
