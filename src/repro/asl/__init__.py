"""ASL: the APART Specification Language layer.

The paper bases the ATS property list on the ASL catalog [7]; this
package encodes ASL's condition/confidence/severity structure and the
catalog itself, so test intent is machine-checkable.
"""

from .catalog import (
    ANALYZER_PROPERTY_IDS,
    CommunicationBound,
    FrequentSynchronization,
    PatternProperty,
    SequentialBottleneck,
    default_catalog,
)
from .spec import (
    AslProperty,
    Diagnosis,
    PerformanceData,
    evaluate,
    format_diagnoses,
)

__all__ = [
    "ANALYZER_PROPERTY_IDS",
    "AslProperty",
    "CommunicationBound",
    "Diagnosis",
    "FrequentSynchronization",
    "PatternProperty",
    "PerformanceData",
    "SequentialBottleneck",
    "default_catalog",
    "evaluate",
    "format_diagnoses",
]
