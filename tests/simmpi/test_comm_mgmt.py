"""Communicator management: split, dup, rank translation, tracing ids."""

import numpy as np
import pytest

from repro.simmpi import (
    MPI_INT,
    MPI_SUM,
    MpiError,
    alloc_mpi_buf,
    run_mpi,
)
from repro.simkernel import SimulationCrashed

FAST = dict(model_init_overhead=False)


def test_split_halves():
    infos = {}

    def main(comm):
        me, sz = comm.rank(), comm.size()
        half = comm.split(me // (sz // 2))
        infos[me] = (half.rank(), half.size(), half.group)

    run_mpi(main, 8, **FAST)
    for g in range(8):
        local, size, group = infos[g]
        assert size == 4
        assert local == g % 4
        assert group == tuple(range(4)) if g < 4 else tuple(range(4, 8))


def test_split_key_reorders_ranks():
    infos = {}

    def main(comm):
        me, sz = comm.rank(), comm.size()
        # All the same color; key reverses the order.
        sub = comm.split(0, key=sz - me)
        infos[me] = sub.rank()

    run_mpi(main, 4, **FAST)
    assert infos == {0: 3, 1: 2, 2: 1, 3: 0}


def test_split_undefined_color_returns_none():
    infos = {}

    def main(comm):
        me = comm.rank()
        sub = comm.split(-1 if me == 0 else 0)
        infos[me] = None if sub is None else sub.size()

    run_mpi(main, 4, **FAST)
    assert infos == {0: None, 1: 3, 2: 3, 3: 3}


def test_split_communicators_are_independent_universes():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        half = comm.split(me % 2)
        sb = alloc_mpi_buf(MPI_INT, 1)
        sb.data[0] = comm.world.comm_world.group[me]  # global rank
        rb = alloc_mpi_buf(MPI_INT, 1)
        half.allreduce(sb, rb, MPI_SUM)
        if me % 2 == 0:
            assert rb.data[0] == 0 + 2 + 4 + 6
        else:
            assert rb.data[0] == 1 + 3 + 5 + 7

    run_mpi(main, 8, **FAST)


def test_split_comm_ids_consistent_across_members():
    ids = {}

    def main(comm):
        me = comm.rank()
        sub = comm.split(me // 2)
        ids[me] = sub.comm_id

    run_mpi(main, 4, **FAST)
    assert ids[0] == ids[1]
    assert ids[2] == ids[3]
    assert ids[0] != ids[2]


def test_nested_split():
    infos = {}

    def main(comm):
        me, sz = comm.rank(), comm.size()
        half = comm.split(me // 4)
        quarter = half.split(half.rank() // 2)
        infos[me] = (quarter.size(), quarter.group)

    run_mpi(main, 8, **FAST)
    assert infos[0] == (2, (0, 1))
    assert infos[5] == (2, (4, 5))
    assert infos[7] == (2, (6, 7))


def test_dup_creates_distinct_context():
    infos = {}

    def main(comm):
        dup = comm.dup()
        infos[comm.rank()] = (dup.comm_id, dup.group)
        # traffic on the dup must not interfere with comm
        buf = alloc_mpi_buf(MPI_INT, 1)
        cbuf = alloc_mpi_buf(MPI_INT, 1)
        me = comm.rank()
        if me == 0:
            buf.data[0] = 42
            dup.send(buf, 1, tag=0)
        elif me == 1:
            comm_req = comm.irecv(cbuf, 0, 0)
            dup.recv(buf, 0, 0)
            assert buf.data[0] == 42
            assert not comm_req.test()  # message went to the dup context
            # leave no pending request: have rank 0 send on comm too
        if me == 0:
            buf2 = alloc_mpi_buf(MPI_INT, 1)
            buf2.data[0] = 7
            comm.send(buf2, 1, tag=0)
        elif me == 1:
            comm.wait(comm_req)
            assert cbuf.data[0] == 7

    run_mpi(main, 2, **FAST)
    assert infos[0][0] == infos[1][0]
    assert infos[0][1] == (0, 1)


def test_rank_translation():
    def main(comm):
        me, sz = comm.rank(), comm.size()
        upper = comm.split(0 if me < sz // 2 else 1)
        if me >= sz // 2:
            assert upper.global_rank(upper.rank()) == me
            assert upper.contains_global(me)
            assert not upper.contains_global(0)

    run_mpi(main, 8, **FAST)


def test_foreign_communicator_use_rejected():
    def main(comm):
        me = comm.rank()
        sub = comm.split(0 if me < 2 else 1)
        if me == 0:
            other_members_comm = sub  # rank 0's sub contains {0,1}
            # fine: use own sub
            other_members_comm.barrier()
        else:
            sub.barrier()

    run_mpi(main, 4, **FAST)


def test_comm_world_registered_in_trace():
    def main(comm):
        comm.barrier()

    result = run_mpi(main, 4, **FAST)
    assert result.recorder.comm_registry[comm_id_of(result)] == (0, 1, 2, 3)


def comm_id_of(result):
    return result.world.comm_world.comm_id


def test_split_registered_in_trace():
    def main(comm):
        comm.split(comm.rank() % 2)

    result = run_mpi(main, 4, **FAST)
    groups = set(result.recorder.comm_registry.values())
    assert (0, 2) in groups and (1, 3) in groups


def test_duplicate_group_rejected():
    from repro.simmpi import Communicator

    def main(comm):
        Communicator(comm.world, (0, 0), 99, "bad")

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 2, **FAST)
    assert isinstance(info.value.original, MpiError)
