"""Tests for analysis comparison (regression detection)."""

import pytest

from repro.analysis import (
    AnalysisResult,
    Finding,
    analyze_run,
    compare_analyses,
)
from repro.core import get_property
from repro.trace import Location

L0 = Location(0, 0)


def result_with(severities, total=10.0):
    findings = [
        Finding(prop, ("main",), L0, sev * total)
        for prop, sev in severities.items()
    ]
    return AnalysisResult(findings=findings, total_time=total,
                          locations=[L0])


def test_identical_analyses_show_no_change():
    a = result_with({"late_sender": 0.3})
    report = compare_analyses(a, result_with({"late_sender": 0.3}))
    assert not report.is_regression
    assert report.lost == () and report.gained == ()
    assert report.max_abs_shift() == pytest.approx(0.0)
    assert "unchanged" in report.format()


def test_lost_property_is_a_regression():
    before = result_with({"late_sender": 0.3, "wait_at_barrier": 0.2})
    after = result_with({"wait_at_barrier": 0.2})
    report = compare_analyses(before, after)
    assert report.is_regression
    assert report.lost == ("late_sender",)
    assert "LOST" in report.format()


def test_gained_property_reported():
    before = result_with({"late_sender": 0.3})
    after = result_with({"late_sender": 0.3, "late_receiver": 0.1})
    report = compare_analyses(before, after)
    assert not report.is_regression
    assert report.gained == ("late_receiver",)


def test_severity_shift_quantified():
    before = result_with({"late_sender": 0.3})
    after = result_with({"late_sender": 0.2})
    report = compare_analyses(before, after)
    delta = report.deltas["late_sender"]
    assert delta.delta == pytest.approx(-0.1)
    assert delta.relative == pytest.approx(-1 / 3)
    assert report.max_abs_shift() == pytest.approx(0.1)


def test_relative_shift_from_zero_is_infinite():
    before = result_with({})
    after = result_with({"late_sender": 0.2})
    report = compare_analyses(before, after, threshold=0.05)
    assert report.deltas["late_sender"].relative == float("inf")
    assert report.gained == ("late_sender",)


def test_threshold_controls_detection_sets():
    before = result_with({"late_sender": 0.04})
    after = result_with({"late_sender": 0.004})
    # at 1%: property lost; at 10%: it never counted
    assert compare_analyses(before, after, 0.01).is_regression
    assert not compare_analyses(before, after, 0.10).is_regression


def test_real_runs_compare_cleanly():
    """The intended workflow: same program, two analyzer versions."""
    run = get_property("late_sender").run(size=4)
    full = analyze_run(run)
    # a 'broken' tool version: battery without the late-sender detector
    from repro.analysis.detectors import (
        DEFAULT_DETECTORS,
        LateSenderDetector,
    )

    crippled_battery = [
        d for d in DEFAULT_DETECTORS
        if not isinstance(d, LateSenderDetector)
    ]
    crippled = analyze_run(run, detectors=crippled_battery)
    report = compare_analyses(full, crippled)
    assert report.is_regression
    assert "late_sender" in report.lost
