"""Lock-free splittable random number generation.

The ATS paper (section 3.1.1) reports that the original ``do_work``
implementation used the libc ``rand()``, whose thread-safe variant
serializes parallel work through a hidden lock.  ATS therefore switched
to "our own simple (but efficient, while lock-free) parallel random
generator".  This module is the Python equivalent: a per-stream 64-bit
linear congruential generator with a cheap deterministic ``spawn`` so
every simulated process/thread owns an independent stream and never
shares mutable state.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
# Knuth MMIX LCG constants.
_MULT = 6364136223846793005
_INC = 1442695040888963407
# SplitMix64 constants, used to decorrelate derived seeds.
_SM_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    x = (x + _SM_GAMMA) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(parent_seed: int, index: int) -> int:
    """An independent child *seed* from a parent seed and an index.

    The integer equivalent of :meth:`Lcg64.spawn`: the child seed is
    splitmix-decorrelated from both the parent and every sibling, so
    sweep frameworks that must hand out plain ``int`` seeds (campaign
    cells, forked tasks, synthesized scenarios) never fall back to
    low-entropy ``seed + i`` arithmetic.  ``Lcg64(derive_seed(p, i))``
    draws the same stream as ``Lcg64(p).spawn(i)``.
    """
    return _splitmix64((parent_seed & _MASK64) ^ _splitmix64(index))


class Lcg64:
    """A small, fast, lock-free PRNG stream.

    Each instance is completely independent mutable state, so any number
    of simulated threads may draw numbers concurrently without
    serialization -- the property the ATS authors needed for
    ``par_do_omp_work``.
    """

    __slots__ = ("_state", "seed")

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK64
        # Run the seed through splitmix so that small consecutive seeds
        # (0, 1, 2, ...) still yield uncorrelated streams.
        self._state = _splitmix64(self.seed)

    def next_u64(self) -> int:
        """Advance the stream and return a 64-bit unsigned integer."""
        self._state = (self._state * _MULT + _INC) & _MASK64
        return self._state

    def random(self) -> float:
        """Return a float uniformly distributed in ``[0, 1)``."""
        # Use the top 53 bits; LCG low bits have short periods.
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randrange(self, n: int) -> int:
        """Return an integer uniformly distributed in ``[0, n)``."""
        if n <= 0:
            raise ValueError("randrange() argument must be positive")
        return self.next_u64() % n

    def uniform(self, lo: float, hi: float) -> float:
        """Return a float uniformly distributed in ``[lo, hi)``."""
        return lo + (hi - lo) * self.random()

    def spawn(self, index: int) -> "Lcg64":
        """Derive an independent child stream.

        Deterministic: the same parent seed and index always produce the
        same child stream, which keeps whole simulations reproducible.
        """
        return Lcg64(_splitmix64(self.seed ^ _splitmix64(index)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lcg64(seed={self.seed:#x})"
