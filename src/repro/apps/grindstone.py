"""Grindstone-style test programs.

The paper's chapter 2 cites *Grindstone: A Test Suite for Parallel
Performance Tools* (Hollingsworth/Miller; 9 PVM programs) as the
closest predecessor of ATS.  This module reimplements the Grindstone
program archetypes on the simulated MPI substrate, each with its
documented diagnosis:

===================  =====================================================
program              documented behaviour / expected diagnosis
===================  =====================================================
``big_message``      bandwidth-bound: few huge messages dominate
                     (``communication_bound`` summary property)
``small_messages``   latency-bound: many tiny messages dominate
                     (``communication_bound`` + high sync rate)
``intensive_server`` one server computes for everyone; clients block on
                     replies (``late_sender`` concentrated at clients)
``random_barrier``   a rotating random rank is slow before each barrier
                     (``wait_at_barrier`` spread over *all* ranks)
``hot_procedure``    one procedure consumes almost all CPU time
                     (profile: dominant exclusive region)
``diffuse_procedure`` the hot procedure's time is diffused over many
                     call sites (same total, many paths)
===================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simkernel import current_process
from ..simmpi.buffers import alloc_mpi_buf
from ..simmpi.communicator import Communicator
from ..simmpi.datatypes import MPI_BYTE, MPI_DOUBLE
from ..trace.api import region
from ..work import do_work

TAG_DATA = 3
TAG_REQUEST = 4
TAG_REPLY = 5


@dataclass(frozen=True)
class GrindstoneConfig:
    """Shared knobs for the Grindstone programs."""

    repetitions: int = 8
    big_bytes: int = 4 << 20       # big_message payload
    small_count: int = 60          # small_messages per repetition
    server_time: float = 0.004     # intensive_server per request
    work_time: float = 0.003
    procedure_time: float = 0.002


def big_message(
    comm: Communicator, config: GrindstoneConfig = GrindstoneConfig()
) -> int:
    """Pairs exchange few very large messages; bandwidth dominates."""
    me = comm.rank()
    sz = comm.size()
    buf = alloc_mpi_buf(MPI_BYTE, config.big_bytes)
    moved = 0
    with region("big_message"):
        for _ in range(config.repetitions):
            if sz < 2 or (sz % 2 and me == sz - 1):
                continue
            if me % 2 == 0:
                comm.send(buf, me + 1, TAG_DATA)
            else:
                comm.recv(buf, me - 1, TAG_DATA)
                moved += buf.nbytes
    return moved


def small_messages(
    comm: Communicator, config: GrindstoneConfig = GrindstoneConfig()
) -> int:
    """Pairs exchange floods of tiny messages; latency dominates."""
    me = comm.rank()
    sz = comm.size()
    buf = alloc_mpi_buf(MPI_BYTE, 4)
    count = 0
    with region("small_messages"):
        for _ in range(config.repetitions):
            if sz < 2 or (sz % 2 and me == sz - 1):
                continue
            for _ in range(config.small_count):
                if me % 2 == 0:
                    comm.send(buf, me + 1, TAG_DATA)
                else:
                    comm.recv(buf, me - 1, TAG_DATA)
                    count += 1
    return count


def intensive_server(
    comm: Communicator, config: GrindstoneConfig = GrindstoneConfig()
) -> int:
    """Rank 0 serves compute requests; clients block on the replies."""
    me = comm.rank()
    sz = comm.size()
    if sz < 2:
        raise ValueError("intensive_server needs at least one client")
    msg = alloc_mpi_buf(MPI_DOUBLE, 1)
    served = 0
    with region("intensive_server"):
        if me == 0:
            from ..simmpi.status import ANY_SOURCE

            for _ in range(config.repetitions * (sz - 1)):
                status = comm.recv(msg, ANY_SOURCE, TAG_REQUEST)
                do_work(config.server_time)  # serialized service
                comm.send(msg, status.source, TAG_REPLY)
                served += 1
        else:
            for _ in range(config.repetitions):
                comm.send(msg, 0, TAG_REQUEST)
                comm.recv(msg, 0, TAG_REPLY)
    return served


def random_barrier(
    comm: Communicator,
    config: GrindstoneConfig = GrindstoneConfig(),
) -> int:
    """Each iteration a (deterministic pseudo-)random rank is slow.

    Unlike a fixed-peak imbalance, the waits spread over *all* ranks
    across iterations -- the barrier property without a blamable rank.
    """
    me = comm.rank()
    sz = comm.size()
    # All ranks must agree on the slow rank; derive it from the shared
    # simulation seed (same stream on every rank by construction).
    rng = comm.world.sim.rng.spawn(987)
    slow_ranks = [rng.randrange(sz) for _ in range(config.repetitions)]
    with region("random_barrier"):
        for slow in slow_ranks:
            do_work(
                config.work_time * (6 if me == slow else 1)
            )
            comm.barrier()
    return len(slow_ranks)


def hot_procedure(
    comm: Communicator, config: GrindstoneConfig = GrindstoneConfig()
) -> float:
    """One procedure consumes ~90% of CPU time at a single call site."""
    total = 0.0
    with region("hot_procedure_main"):
        for _ in range(config.repetitions):
            with region("cold_code"):
                do_work(config.procedure_time * 0.1)
            with region("the_hot_procedure"):
                do_work(config.procedure_time * 0.9)
                total += config.procedure_time * 0.9
    return total


def diffuse_procedure(
    comm: Communicator, config: GrindstoneConfig = GrindstoneConfig()
) -> float:
    """The same hot procedure, called from many different sites.

    Total procedure time matches :func:`hot_procedure`, but no single
    call path dominates -- tools must aggregate by procedure, not by
    call site, to spot it.
    """
    total = 0.0

    def the_procedure(share: float) -> float:
        with region("the_hot_procedure"):
            do_work(share)
        return share

    with region("diffuse_procedure_main"):
        for i in range(config.repetitions):
            site = f"call_site_{i % 4}"
            with region(site):
                total += the_procedure(config.procedure_time * 0.9)
            with region("cold_code"):
                do_work(config.procedure_time * 0.1)
    return total


GRINDSTONE_PROGRAMS = {
    "big_message": big_message,
    "small_messages": small_messages,
    "intensive_server": intensive_server,
    "random_barrier": random_barrier,
    "hot_procedure": hot_procedure,
    "diffuse_procedure": diffuse_procedure,
}
