"""Trace persistence: JSON-lines writer and reader.

The format is deliberately simple and line-oriented so traces can be
inspected with standard text tools, diffed across runs (determinism
checks) and loaded back for offline analysis -- the workflow the paper
envisions between the ATS programs and the analysis tools under test.

:class:`TraceWriter` buffers serialized lines and writes them in large
chunks; it is a context manager with explicit ``flush``/``close`` so
buffered tails cannot be silently dropped when a run crashes --
``close`` always drains the buffer first.  A ``.gz`` destination
(conventionally ``.jsonl.gz``) writes through a deterministic gzip
stream -- ``mtime=0``, no embedded filename -- so compressed traces of
the same run are byte-identical across invocations, which is what lets
the content-addressed archive (:mod:`repro.archive`) key blobs by
digest.

Reading is hardened against the real world: a truncated or corrupt
file raises :class:`TraceFormatError` carrying the path and the exact
line number, and :func:`read_trace` can instead *skip* bad event lines
(``skip_bad_lines=True``, surfaced as ``ats analyze
--skip-bad-lines``) so a partially written trace from a crashed run
remains analyzable.  ``salvage=True`` (``ats analyze --salvage``)
additionally forgives a corrupt *final* line -- the signature of a
mid-file truncation -- returning every record up to the cut and
flagging ``metadata["truncated"]``.  Gzip input is auto-detected from
the magic bytes regardless of suffix, and a gzip stream cut mid-file
is salvaged the same way: whatever decompresses cleanly is parsed,
the partial tail line is dropped.

Both writer-side trace faults (record drop/duplication, mid-file
truncation -- see :mod:`repro.faults`) enter through the optional
``faults`` hook of :class:`TraceWriter`, so fault-injected trace files
exercise exactly the production serialization path.
"""

from __future__ import annotations

import gzip
import io
import json
import zlib
from pathlib import Path
from typing import Iterable, Optional, Union

from ..obs.instruments import trace_metrics
from .events import Event, event_from_dict

FORMAT_VERSION = 1

#: buffered lines before an automatic drain to the file
_BUFFER_LINES = 1024

#: the two magic bytes opening every gzip member (RFC 1952)
GZIP_MAGIC = b"\x1f\x8b"


class TraceFormatError(ValueError):
    """A trace file is malformed; pinpoints the offending line.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the reader's old error type keep working.
    """

    def __init__(
        self,
        path: Union[str, Path],
        message: str,
        lineno: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.lineno = lineno
        prefix = (
            f"{self.path}:{lineno}" if lineno is not None else str(self.path)
        )
        super().__init__(f"{prefix}: {message}")


# ----------------------------------------------------------------------
# codec helpers (shared with the archive blob store)
# ----------------------------------------------------------------------

def is_gzip_bytes(data: bytes) -> bool:
    """True when ``data`` starts a gzip stream."""
    return data[:2] == GZIP_MAGIC


def gzip_bytes(data: bytes) -> bytes:
    """Deterministically gzip ``data`` (``mtime=0``, no filename).

    Plain :func:`gzip.compress` embeds the current time in the header,
    which would give the same trace a different digest on every call;
    this helper is the codec both ``.jsonl.gz`` traces and archive
    blobs go through.
    """
    return gzip.compress(data, mtime=0)


def gunzip_bytes(data: bytes, salvage: bool = False) -> bytes:
    """Decompress a gzip stream; optionally salvage a truncated one.

    With ``salvage``, a stream cut mid-file (missing trailer, partial
    deflate block) yields everything that decompresses cleanly instead
    of raising.  Corruption *inside* the stream still raises
    :class:`zlib.error` / :class:`EOFError` either way.
    """
    if not salvage:
        return gzip.decompress(data)
    decomp = zlib.decompressobj(wbits=16 + zlib.MAX_WBITS)
    return decomp.decompress(data)


def _header_line(metadata: Optional[dict]) -> str:
    header: dict = {"format": "ats-trace", "version": FORMAT_VERSION}
    if metadata:
        header["metadata"] = metadata
    return json.dumps(header) + "\n"


def events_to_jsonl(
    events: Iterable[Event], metadata: Optional[dict] = None
) -> str:
    """Serialize events to the exact text a :class:`TraceWriter` emits.

    The archive stores this string's UTF-8 bytes as the trace blob, so
    a blob dumped to a file *is* a valid trace file and the blob digest
    doubles as the trace's identity.
    """
    parts = [_header_line(metadata)]
    parts.extend(json.dumps(e.to_dict()) + "\n" for e in events)
    return "".join(parts)


def events_from_jsonl(
    text: str,
    label: Union[str, Path] = "<memory>",
    skip_bad_lines: bool = False,
    salvage: bool = False,
) -> tuple[list[Event], dict]:
    """Parse trace text (the inverse of :func:`events_to_jsonl`).

    ``label`` only decorates error messages; semantics match
    :func:`read_trace`.
    """
    return _parse_trace_text(
        text, label, skip_bad_lines=skip_bad_lines, salvage=salvage
    )


class TraceWriter:
    """Buffered JSONL trace writer.

    Opens ``path`` immediately and queues the header; event lines are
    serialized eagerly but written in chunks of ``buffer_lines``.  A
    path ending in ``.gz`` writes through a deterministic gzip stream.
    Always use as a context manager (or call :meth:`close`)::

        with TraceWriter(path, metadata={"program": name}) as writer:
            writer.write_many(recorder.events)
    """

    def __init__(
        self,
        path: Union[str, Path],
        metadata: dict | None = None,
        buffer_lines: int = _BUFFER_LINES,
        faults=None,
    ):
        self.path = Path(path)
        self.count = 0
        self.closed = False
        self._buffer_lines = max(1, buffer_lines)
        self._buf: list[str] = []
        self._metrics = trace_metrics()
        #: fault injector (see :mod:`repro.faults`), or None: decides
        #: per record whether to drop/duplicate it, and whether to
        #: truncate the finished file mid-line on close.
        self._faults = faults
        if self.path.suffix == ".gz":
            # Deterministic gzip: mtime pinned to 0 and no filename in
            # the member header, so identical events yield identical
            # compressed bytes (digest-stable traces).
            self._raw = self.path.open("wb")
            # filename="" keeps the destination path out of the member
            # header (GzipFile would otherwise embed fileobj.name).
            self._gz = gzip.GzipFile(
                filename="", fileobj=self._raw, mode="wb", mtime=0
            )
            self._fh = io.TextIOWrapper(self._gz, encoding="utf-8")
        else:
            self._raw = None
            self._gz = None
            self._fh = self.path.open("w", encoding="utf-8")
        self._buf.append(_header_line(metadata))

    def write(self, event: Event) -> None:
        """Queue one event line (drains when the buffer fills)."""
        if self.closed:
            raise ValueError("write to closed TraceWriter")
        copies = 1
        if self._faults is not None:
            copies = self._faults.record_copies()
            if copies == 0:
                return
        buf = self._buf
        line = json.dumps(event.to_dict()) + "\n"
        for _ in range(copies):
            buf.append(line)
        self.count += copies
        if len(buf) >= self._buffer_lines:
            self._drain()

    def write_many(self, events: Iterable[Event]) -> int:
        """Queue a batch of events; returns how many were queued."""
        n = 0
        for event in events:
            self.write(event)
            n += 1
        return n

    def _drain(self) -> None:
        if self._buf:
            if self._metrics is not None:
                self._metrics.writer_flushes.inc()
                self._metrics.writer_lines.inc(len(self._buf))
            self._fh.write("".join(self._buf))
            self._buf.clear()

    def flush(self) -> None:
        """Drain the line buffer and flush the underlying file."""
        self._drain()
        self._fh.flush()
        if self._raw is not None:
            self._raw.flush()

    def close(self) -> None:
        """Drain, flush and close (idempotent)."""
        if self.closed:
            return
        try:
            self._drain()
            self._fh.flush()
        finally:
            self.closed = True
            # Closing the text wrapper closes the gzip member (writing
            # its trailer); the raw handle is ours to close separately.
            self._fh.close()
            if self._raw is not None:
                self._raw.close()
        if self._faults is not None:
            self._apply_truncation()

    def _apply_truncation(self) -> None:
        """Cut the closed file mid-stream if the fault plan says so.

        Done on the raw bytes after the text handle is closed, so the
        cut point is exact and usually lands inside a record line (or,
        for gzip output, inside the compressed stream).
        """
        size = self.path.stat().st_size
        cut = self._faults.truncate_at(size)
        if cut is None or cut >= size:
            return
        with self.path.open("r+b") as fh:
            fh.truncate(cut)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace(
    path: Union[str, Path],
    events: Iterable[Event],
    metadata: dict | None = None,
    faults=None,
) -> int:
    """Write events to ``path`` in JSONL format; returns event count.

    The first line is a header record with the format version and
    optional run metadata (program name, size, transport parameters...).
    A ``.gz`` path writes deterministic gzip.  ``faults`` (a
    :class:`~repro.faults.FaultInjector`) applies write-time record
    faults -- see :class:`TraceWriter`.
    """
    with TraceWriter(path, metadata, faults=faults) as writer:
        return writer.write_many(events)


def read_trace(
    path: Union[str, Path],
    skip_bad_lines: bool = False,
    salvage: bool = False,
) -> tuple[list[Event], dict]:
    """Read a JSONL trace; returns ``(events, metadata)``.

    Gzip input is detected from the magic bytes (any suffix).
    Malformed files raise :class:`TraceFormatError` with the offending
    line number.  With ``skip_bad_lines`` corrupt *event* lines are
    dropped instead (the header must still be intact) and the count of
    dropped lines is reported under ``metadata["skipped_lines"]``.
    With ``salvage``, a corrupt line with nothing but whitespace after
    it -- the signature of a file truncated mid-record -- is treated as
    the end of the trace: everything before the cut is returned and
    ``metadata["truncated"]`` is set; a gzip stream truncated mid-file
    is recovered the same way from whatever decompresses cleanly.
    Mid-file corruption (bad line followed by more records) still
    raises, so salvage never silently papers over structural damage.
    When both flags are given, a trailing truncation is classified as
    ``truncated`` (not as a skipped line): the two report different
    facts about the file.
    """
    path = Path(path)
    data = path.read_bytes()
    gz_truncated = False
    if is_gzip_bytes(data):
        try:
            data = gunzip_bytes(data)
        except (EOFError, zlib.error, OSError) as exc:
            # gzip.decompress signals a stream cut mid-file (missing
            # trailer) with EOFError; anything else is corruption.
            kind = (
                "truncated gzip stream"
                if isinstance(exc, EOFError)
                else "corrupt gzip stream"
            )
            if not salvage:
                raise TraceFormatError(path, f"{kind}: {exc}") from exc
            try:
                data = gunzip_bytes(data, salvage=True)
            except zlib.error as exc2:
                raise TraceFormatError(
                    path, f"corrupt gzip stream: {exc2}"
                ) from exc2
            gz_truncated = True
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError:
        if not (salvage or skip_bad_lines):
            raise TraceFormatError(path, "trace is not UTF-8 text") from None
        text = data.decode("utf-8", errors="replace")
    events, metadata = _parse_trace_text(
        text, path, skip_bad_lines=skip_bad_lines, salvage=salvage
    )
    if gz_truncated and not metadata.get("truncated"):
        metadata = dict(metadata)
        metadata["truncated"] = True
    return events, metadata


def _parse_trace_text(
    text: str,
    path: Union[str, Path],
    skip_bad_lines: bool = False,
    salvage: bool = False,
) -> tuple[list[Event], dict]:
    """Shared line-level parser behind :func:`read_trace`."""
    all_lines = text.splitlines()
    events: list[Event] = []
    metadata: dict = {}
    skipped = 0
    truncated = False
    if not all_lines:
        raise TraceFormatError(path, "empty trace file")
    try:
        header = json.loads(all_lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            path, f"corrupt header: {exc}", lineno=1
        ) from exc
    if not isinstance(header, dict) or header.get("format") != "ats-trace":
        raise TraceFormatError(path, "not an ats-trace file", lineno=1)
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            path,
            f"unsupported trace version {header.get('version')}",
            lineno=1,
        )
    metadata = header.get("metadata", {})
    lines = all_lines[1:]
    # Index of the last line with content: a bad line *there* is the
    # signature of a mid-record truncation, which salvage must report
    # as such even when skip_bad_lines would also tolerate it --
    # "skipped one line" and "the file was cut" are different facts.
    last_content = -1
    for i, raw in enumerate(lines):
        if raw.strip():
            last_content = i
    for offset, line in enumerate(lines):
        lineno = offset + 2
        line = line.strip()
        if not line:
            continue
        try:
            events.append(event_from_dict(json.loads(line)))
        except (
            json.JSONDecodeError,
            ValueError,
            TypeError,
            KeyError,
            AttributeError,
        ) as exc:
            if salvage and offset == last_content:
                truncated = True
                break
            if skip_bad_lines:
                skipped += 1
                continue
            raise TraceFormatError(
                path, f"bad event: {exc}", lineno=lineno
            ) from exc
    if skipped or truncated:
        metadata = dict(metadata)
        if skipped:
            metadata["skipped_lines"] = skipped
        if truncated:
            metadata["truncated"] = True
    return events, metadata
