"""FaultInjector: coercion, hook behavior, end-to-end determinism."""

import pytest

from repro.core.registry import get_property
from repro.faults import (
    DropRecords,
    FaultInjector,
    FaultPlan,
    MessageLatencyNoise,
    RankStragglers,
    TimingJitter,
)
from repro.simmpi import run_mpi
from repro.trace.io import write_trace


def test_coerce_none_and_noop_to_none():
    assert FaultInjector.coerce(None) is None
    assert FaultInjector.coerce(FaultPlan.of()) is None
    assert FaultInjector.coerce(FaultPlan.default().scaled(0.0)) is None


def test_coerce_plan_and_passthrough():
    injector = FaultInjector.coerce(FaultPlan.default(), seed=7)
    assert isinstance(injector, FaultInjector)
    assert injector.seed == 7
    assert FaultInjector.coerce(injector) is injector


def test_coerce_rejects_garbage():
    with pytest.raises(TypeError, match="FaultPlan or FaultInjector"):
        FaultInjector.coerce(0.5)


def test_has_trace_faults_flag():
    assert not FaultInjector(
        FaultPlan.of(TimingJitter(0.1))
    ).has_trace_faults
    assert FaultInjector(
        FaultPlan.of(DropRecords(0.1))
    ).has_trace_faults


class _FakeProc:
    def __init__(self, rank=None):
        self.context = {} if rank is None else {"mpi_rank": rank}


def test_straggler_slows_only_listed_ranks():
    injector = FaultInjector(
        FaultPlan.of(RankStragglers(ranks=(1,), slowdown=0.5))
    )
    assert injector.perturb_hold(_FakeProc(rank=1), 1.0) == pytest.approx(1.5)
    assert injector.perturb_hold(_FakeProc(rank=0), 1.0) == 1.0
    # no rank in context -> treated as rank 0
    assert injector.perturb_hold(_FakeProc(), 1.0) == 1.0


def test_jitter_bounded_and_nonnegative():
    injector = FaultInjector(FaultPlan.of(TimingJitter(0.2)), seed=3)
    for _ in range(200):
        out = injector.perturb_hold(_FakeProc(), 0.01)
        assert 0.0 <= out
        assert abs(out - 0.01) <= 0.01 * 0.2 + 1e-12


def test_wire_delay_nonnegative_and_scaled_by_latency():
    injector = FaultInjector(FaultPlan.of(MessageLatencyNoise(2.0)), seed=1)
    for _ in range(100):
        extra = injector.wire_delay(1e-5)
        assert 0.0 <= extra < 2.0 * 1e-5


def test_reorder_keeps_queue_contents():
    from repro.faults import MessageReorder

    injector = FaultInjector(
        FaultPlan.of(MessageReorder(probability=1.0, window=3)), seed=5
    )
    queue = list(range(10))
    injector.reorder_sends(queue)
    assert sorted(queue) == list(range(10))
    # displacement bounded by the window
    assert queue.index(9) >= 10 - 1 - 3


def _perturbed_trace_bytes(tmp_path, seed, name):
    spec = get_property("late_sender")
    injector = FaultInjector.coerce(FaultPlan.default(), seed=seed)
    run = spec.run(size=6, num_threads=2, seed=seed, faults=injector)
    path = tmp_path / f"{name}.jsonl"
    write_trace(path, run.events, faults=injector)
    return path.read_bytes()


def test_same_seed_same_plan_byte_identical_traces(tmp_path):
    a = _perturbed_trace_bytes(tmp_path, seed=11, name="a")
    b = _perturbed_trace_bytes(tmp_path, seed=11, name="b")
    assert a == b


def test_different_seed_different_trace(tmp_path):
    a = _perturbed_trace_bytes(tmp_path, seed=11, name="a")
    b = _perturbed_trace_bytes(tmp_path, seed=12, name="b")
    assert a != b


def test_perturbed_run_differs_from_clean_and_stays_valid():
    from repro.simmpi import MPI_INT, alloc_mpi_buf
    from repro.work import do_work

    def pingpong(comm):
        rank = comm.rank()
        buf = alloc_mpi_buf(MPI_INT, 16)
        do_work(0.01)
        if rank == 0:
            comm.send(buf, 1)
            comm.recv(buf, 1)
        else:
            comm.recv(buf, 0)
            comm.send(buf, 0)

    clean = run_mpi(pingpong, size=2, seed=0)
    noisy = run_mpi(
        pingpong,
        size=2,
        seed=0,
        faults=FaultPlan.of(
            TimingJitter(0.2), MessageLatencyNoise(5.0)
        ),
    )
    assert noisy.final_time > 0
    assert noisy.final_time != clean.final_time
    # same structure: perturbations change timings, never the events
    assert [type(e) for e in noisy.events] == [
        type(e) for e in clean.events
    ]
