"""Parallel regions, barriers, team identity, nesting."""

import pytest

from repro.simkernel import SimulationCrashed, current_process
from repro.simomp import (
    OmpError,
    current_team,
    omp_barrier,
    omp_get_num_threads,
    omp_get_thread_num,
    omp_master,
    omp_parallel,
    omp_single,
    run_omp,
)
from repro.trace import Enter, Fork, Join, Location
from repro.work import do_work


def test_parallel_region_runs_every_thread():
    def body():
        return omp_get_thread_num()

    def main():
        return omp_parallel(body, num_threads=5)

    result = run_omp(main)
    assert result.result == [0, 1, 2, 3, 4]


def test_default_num_threads_from_runtime():
    def main():
        return omp_parallel(lambda: omp_get_num_threads())

    result = run_omp(main, num_threads=3)
    assert result.result == [3, 3, 3]


def test_sequential_code_reports_single_thread():
    def main():
        assert current_team() is None
        assert omp_get_thread_num() == 0
        assert omp_get_num_threads() == 1

    run_omp(main)


def test_region_end_has_implicit_barrier():
    ends = {}

    def body():
        me = omp_get_thread_num()
        do_work(0.01 * (me + 1))
        return current_process().sim.now

    def main():
        omp_parallel(body, num_threads=4)
        # master resumes only after the last thread (0.04s of work)
        ends["master"] = current_process().sim.now

    run_omp(main)
    assert ends["master"] >= 0.04


def test_explicit_barrier_synchronizes():
    after = {}

    def body():
        me = omp_get_thread_num()
        do_work(0.01 * (me + 1))
        omp_barrier()
        after[me] = current_process().sim.now

    run_omp(lambda: omp_parallel(body, num_threads=3))
    assert all(t >= 0.03 for t in after.values())


def test_barrier_outside_region_rejected():
    def main():
        omp_barrier()

    with pytest.raises(SimulationCrashed) as info:
        run_omp(main)
    assert isinstance(info.value.original, OmpError)


def test_nested_parallel_regions():
    seen = []

    def inner():
        seen.append(("inner", omp_get_thread_num(), omp_get_num_threads()))

    def outer():
        seen.append(("outer", omp_get_thread_num(), omp_get_num_threads()))
        omp_parallel(inner, num_threads=2)

    run_omp(lambda: omp_parallel(outer, num_threads=2))
    outers = [s for s in seen if s[0] == "outer"]
    inners = [s for s in seen if s[0] == "inner"]
    assert len(outers) == 2 and len(inners) == 4
    assert {s[2] for s in inners} == {2}


def test_master_construct_runs_on_thread0_only():
    ran = []

    def body():
        if omp_master():
            ran.append(omp_get_thread_num())

    run_omp(lambda: omp_parallel(body, num_threads=4))
    assert ran == [0]


def test_single_construct_runs_once_and_synchronizes():
    ran = []
    after = {}

    def body():
        me = omp_get_thread_num()
        do_work(0.01 * me)
        with omp_single() as chosen:
            if chosen:
                ran.append(me)
                do_work(0.05)
        after[me] = current_process().sim.now

    run_omp(lambda: omp_parallel(body, num_threads=4))
    assert len(ran) == 1
    # All threads wait at the single's implicit barrier until the
    # executing thread finished its 0.05s of work.
    assert all(t >= 0.05 for t in after.values())


def test_team_results_indexed_by_thread():
    def body():
        return omp_get_thread_num() * 100

    result = run_omp(lambda: omp_parallel(body, num_threads=4))
    assert result.result == [0, 100, 200, 300]


def test_fork_join_events_recorded():
    result = run_omp(lambda: omp_parallel(lambda: None, num_threads=3))
    kinds = [e.kind for e in result.events]
    assert "fork" in kinds and "join" in kinds
    fork = next(e for e in result.events if isinstance(e, Fork))
    assert fork.team_size == 3


def test_thread0_shares_master_location():
    def body():
        do_work(0.001)

    result = run_omp(lambda: omp_parallel(body, num_threads=2))
    locs = {
        e.loc
        for e in result.events
        if isinstance(e, Enter) and e.region == "omp_parallel"
    }
    assert Location(0, 0) in locs
    assert len(locs) == 2


def test_thread_rngs_are_independent():
    draws = {}

    def body():
        rng = current_process().context["rng"]
        draws[omp_get_thread_num()] = rng.next_u64()

    run_omp(lambda: omp_parallel(body, num_threads=4))
    assert len(set(draws.values())) == 4


def test_invalid_num_threads_rejected():
    def main():
        omp_parallel(lambda: None, num_threads=0)

    with pytest.raises(SimulationCrashed) as info:
        run_omp(main)
    assert isinstance(info.value.original, OmpError)


def test_exception_in_thread_propagates():
    def body():
        if omp_get_thread_num() == 1:
            raise RuntimeError("thread died")

    with pytest.raises(SimulationCrashed) as info:
        run_omp(lambda: omp_parallel(body, num_threads=3))
    assert isinstance(info.value.original, RuntimeError)
