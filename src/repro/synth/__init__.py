"""Scenario synthesis engine: generative campaigns with ground truth.

The hand-written registry covers ~35 programs; this package samples the
property x severity x placement x skeleton x noise space into
synthesized :class:`~repro.core.registry.PropertySpec`-compatible
programs, each carrying a machine-checkable ground-truth manifest
derived from the same sampling decisions.  Campaigns are declared with
:class:`CampaignSpec`, executed on the supervised sweep engine
(:func:`run_campaign`), archived with manifests attached, and graded
with :func:`score_result` / :func:`score_campaign_json`.
"""

from .campaign import (
    CampaignError,
    CampaignResult,
    ScenarioCell,
    cell_key,
    run_campaign,
)
from .generate import (
    adversarial_rng,
    generate_scenarios,
    mutate_scenario,
    resolve_pool,
)
from .scenario import (
    SKELETONS,
    GroundTruthManifest,
    PropertyDose,
    Scenario,
    run_skeleton,
)
from .score import (
    BandScore,
    ClassScore,
    DetectorScore,
    ScoreReport,
    score_campaign_json,
    score_cells,
    score_result,
)
from .spec import (
    BAND_FACTORS,
    BANDS,
    GENERATORS,
    PLACEMENTS,
    STRATEGIES,
    CampaignSpec,
    NoiseConfig,
    SynthError,
)

__all__ = [
    "BAND_FACTORS",
    "BANDS",
    "BandScore",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "ClassScore",
    "DetectorScore",
    "GENERATORS",
    "GroundTruthManifest",
    "NoiseConfig",
    "PLACEMENTS",
    "PropertyDose",
    "STRATEGIES",
    "SKELETONS",
    "Scenario",
    "ScenarioCell",
    "ScoreReport",
    "SynthError",
    "adversarial_rng",
    "cell_key",
    "generate_scenarios",
    "mutate_scenario",
    "resolve_pool",
    "run_campaign",
    "run_skeleton",
    "score_campaign_json",
    "score_cells",
    "score_result",
]
