"""Composite programs (paper 3.3) and the program generator (paper 3.2)."""

import subprocess
import sys

import pytest

from repro.analysis import analyze_run
from repro.core import (
    ALL_MPI_PROPERTY_CHAIN,
    Step,
    generate_single_property_script,
    get_property,
    run_all_mpi_properties,
    run_chain,
    run_hybrid_composite,
    run_split_program,
    write_generated_programs,
)

THRESH = 0.005


# ----------------------------------------------------------------------
# figure 3.3: all MPI properties in sequence
# ----------------------------------------------------------------------

def test_all_mpi_properties_chain_detects_everything():
    result = run_all_mpi_properties(size=8)
    analysis = analyze_run(result)
    detected = set(analysis.detected(THRESH))
    expected = set()
    for name in ALL_MPI_PROPERTY_CHAIN:
        expected |= set(get_property(name).expected)
    missing = expected - detected
    assert not missing, f"chain failed to exhibit {missing}"


def test_chain_callpaths_separate_the_properties():
    """Each property is localized at its own function's call path."""
    result = run_all_mpi_properties(size=8)
    analysis = analyze_run(result)
    for prop, fn in [
        ("late_sender", "late_sender"),
        ("wait_at_barrier", "imbalance_at_mpi_barrier"),
        ("late_broadcast", "late_broadcast"),
        ("early_reduce", "early_reduce"),
    ]:
        callpaths = analysis.callpaths_of(prop)
        assert callpaths, f"no call paths for {prop}"
        top_path = next(iter(callpaths))
        assert fn in top_path, (
            f"{prop} located at {top_path}, expected under {fn}"
        )


def test_chain_with_explicit_steps_and_params():
    result = run_chain(
        [
            Step("late_sender", {"extrawork": 0.03, "r": 2}),
            Step("imbalance_at_mpi_barrier"),
        ],
        size=4,
        model_init_overhead=False,
    )
    analysis = analyze_run(result)
    detected = analysis.detected(THRESH)
    assert "late_sender" in detected
    assert "wait_at_barrier" in detected


def test_chain_rejects_bad_step_type():
    with pytest.raises(TypeError):
        run_chain([42], size=4)


# ----------------------------------------------------------------------
# figures 3.4/3.5: split communicators
# ----------------------------------------------------------------------

def test_split_program_concurrent_properties_localized():
    result = run_split_program(
        lower=["imbalance_at_mpi_barrier"],
        upper=["late_broadcast"],
        size=16,
    )
    analysis = analyze_run(result)
    detected = analysis.detected(THRESH)
    assert "wait_at_barrier" in detected
    assert "late_broadcast" in detected
    barrier_ranks = {
        loc.rank for loc in analysis.locations_of("wait_at_barrier")
    }
    bcast_ranks = {
        loc.rank for loc in analysis.locations_of("late_broadcast")
    }
    assert barrier_ranks <= set(range(8))
    assert bcast_ranks <= set(range(8, 16))


def test_split_program_reproduces_figure_3_5():
    """EXPERT found Late Broadcast at MPI_Bcast under late_broadcast(),
    at the upper half's non-root ranks (local root 1 = global rank 9)."""
    result = run_split_program(
        lower=["imbalance_at_mpi_barrier", "late_sender"],
        upper=["late_broadcast", "early_reduce"],
        size=16,
    )
    analysis = analyze_run(result)
    # pane 1: the property is found
    assert "late_broadcast" in analysis.detected(THRESH)
    # pane 2: located at MPI_Bcast inside late_broadcast()
    (path, _), *_ = list(analysis.callpaths_of("late_broadcast").items())
    assert path[-1] == "MPI_Bcast" and "late_broadcast" in path
    # pane 3: located at the upper half minus the root (global rank 9)
    ranks = {loc.rank for loc in analysis.locations_of("late_broadcast")}
    assert ranks == {8, 10, 11, 12, 13, 14, 15}


def test_split_program_size_validation():
    with pytest.raises(ValueError):
        run_split_program(["late_sender"], ["late_sender"], size=5)
    with pytest.raises(ValueError):
        run_split_program(["late_sender"], ["late_sender"], size=2)


# ----------------------------------------------------------------------
# hybrid composition (paper 3.3 closing paragraph)
# ----------------------------------------------------------------------

def test_hybrid_composite_mixes_paradigms():
    result = run_hybrid_composite(
        mpi_steps=["late_sender"],
        omp_steps=["imbalance_at_omp_barrier"],
        size=4,
        num_threads=4,
    )
    analysis = analyze_run(result)
    detected = analysis.detected(THRESH)
    assert "late_sender" in detected
    assert "imbalance_at_omp_barrier" in detected
    # OpenMP findings live on thread locations within MPI ranks
    omp_locs = analysis.locations_of("imbalance_at_omp_barrier")
    assert any(loc.thread > 0 for loc in omp_locs)


# ----------------------------------------------------------------------
# the program generator (paper 3.2)
# ----------------------------------------------------------------------

def test_generated_script_is_valid_python():
    source = generate_single_property_script("late_sender")
    compile(source, "test_late_sender.py", "exec")
    assert 'get_property' in source
    assert "--basework" in source
    assert "--extrawork" in source


def test_generated_script_exposes_distribution_options():
    source = generate_single_property_script("imbalance_at_mpi_barrier")
    compile(source, "gen.py", "exec")
    assert "--dist-shape" in source
    assert "--dist-values" in source


def test_generated_scripts_for_all_properties(tmp_path):
    paths = write_generated_programs(tmp_path)
    from repro.core import list_properties

    assert len(paths) == len(list_properties())
    for path in paths:
        compile(path.read_text(), str(path), "exec")


def test_generated_script_runs_end_to_end(tmp_path):
    (path,) = [
        p
        for p in write_generated_programs(tmp_path, paradigm="mpi")
        if p.name == "test_late_sender.py"
    ]
    proc = subprocess.run(
        [
            sys.executable,
            str(path),
            "--size",
            "4",
            "--r",
            "1",
            "--analyze",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "late_sender: finished" in proc.stdout
    assert "late_sender" in proc.stdout


def test_generated_script_writes_trace(tmp_path):
    source = generate_single_property_script("imbalance_at_omp_barrier")
    script = tmp_path / "prog.py"
    script.write_text(source)
    out = tmp_path / "trace.jsonl"
    proc = subprocess.run(
        [sys.executable, str(script), "--trace-out", str(out), "--r", "1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    from repro.trace import read_trace

    events, meta = read_trace(out)
    assert events
    assert meta["program"] == "imbalance_at_omp_barrier"
