"""Event tracing: the measurement substrate of the reproduction.

Simulated runtimes record EPILOG/OTF-style events here; the automatic
analyzer (:mod:`repro.analysis`) and the ASCII timeline renderer (the
stand-in for the paper's Vampir displays) consume them.
"""

from .api import bind_instrumentation, current_instrumentation, region
from .comm_matrix import CommMatrix, comm_matrix, format_comm_matrix
from .filter import (
    by_callpath_prefix,
    by_location,
    by_predicate,
    by_time_window,
)
from .events import (
    CallPath,
    CollExit,
    Enter,
    Event,
    Exit,
    Fork,
    Join,
    Location,
    Recv,
    Send,
    event_from_dict,
)
from .io import (
    TraceFormatError,
    TraceWriter,
    events_from_jsonl,
    events_to_jsonl,
    gunzip_bytes,
    gzip_bytes,
    is_gzip_bytes,
    read_trace,
    write_trace,
)
from .recorder import TraceError, TraceRecorder
from .stats import (
    RegionInterval,
    RegionProfile,
    TraceProfile,
    format_profile,
    profile_trace,
    region_intervals,
)
from .timeline import region_char, render_timeline, state_at

__all__ = [
    "CallPath",
    "CollExit",
    "CommMatrix",
    "comm_matrix",
    "format_comm_matrix",
    "Enter",
    "Event",
    "Exit",
    "Fork",
    "Join",
    "Location",
    "Recv",
    "RegionInterval",
    "RegionProfile",
    "Send",
    "TraceError",
    "TraceFormatError",
    "TraceProfile",
    "TraceRecorder",
    "TraceWriter",
    "bind_instrumentation",
    "by_callpath_prefix",
    "by_location",
    "by_predicate",
    "by_time_window",
    "current_instrumentation",
    "event_from_dict",
    "events_from_jsonl",
    "events_to_jsonl",
    "gunzip_bytes",
    "gzip_bytes",
    "is_gzip_bytes",
    "format_profile",
    "profile_trace",
    "read_trace",
    "region",
    "region_intervals",
    "region_char",
    "render_timeline",
    "state_at",
    "write_trace",
]
