"""Tool-adapter tests: the matrix discriminates tool capabilities."""

import pytest

from repro.analysis.detectors import (
    LateSenderDetector,
    WaitAtBarrierDetector,
)
from repro.analysis.tools import (
    battery_without,
    pattern_tool,
    profile_only_tool,
    single_detector_tool,
)
from repro.core import get_property
from repro.validation import run_validation_matrix, validate_spec

SPECS = [
    get_property("late_sender"),
    get_property("imbalance_at_mpi_barrier"),
    get_property("balanced_mpi_barrier"),
]


def test_pattern_tool_passes_everything():
    matrix = run_validation_matrix(
        specs=SPECS, tool=pattern_tool(), size=4
    )
    assert matrix.all_passed


def test_pattern_tool_sensitivity_matters():
    """An insensitive tool (50% threshold) misses moderate properties."""
    blunt = pattern_tool(threshold=0.5)
    row = validate_spec(get_property("late_sender"), tool=blunt, size=4)
    assert row.missing == ("late_sender",)


def test_profile_only_tool_fails_pattern_positives():
    tool = profile_only_tool()
    matrix = run_validation_matrix(
        specs=[get_property("late_sender")], tool=tool, size=4
    )
    assert not matrix.all_passed
    assert matrix.rows[0].missing == ("late_sender",)


def test_profile_only_tool_stays_silent_on_balanced():
    tool = profile_only_tool()
    row = validate_spec(
        get_property("balanced_mpi_barrier"), tool=tool, size=4
    )
    # It must not claim pattern properties it cannot see; its summary
    # verdicts (communication_bound) count as spurious against ATS.
    assert "late_sender" not in row.detected


def test_single_detector_tool_passes_its_own_property_only():
    tool = single_detector_tool(LateSenderDetector())
    ok = validate_spec(get_property("late_sender"), tool=tool, size=4)
    assert not ok.missing
    other = validate_spec(
        get_property("imbalance_at_mpi_barrier"), tool=tool, size=4
    )
    assert other.missing == ("wait_at_barrier",)


def test_battery_without_loses_exactly_that_capability():
    tool = battery_without(WaitAtBarrierDetector)
    barrier_row = validate_spec(
        get_property("imbalance_at_mpi_barrier"), tool=tool, size=4
    )
    assert barrier_row.missing == ("wait_at_barrier",)
    sender_row = validate_spec(
        get_property("late_sender"), tool=tool, size=4
    )
    assert not sender_row.missing
