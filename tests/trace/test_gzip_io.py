"""Gzip-compressed traces: writer suffix, reader auto-detect, salvage."""

import gzip

import pytest

from repro.trace import (
    TraceFormatError,
    TraceRecorder,
    TraceWriter,
    read_trace,
    write_trace,
)
from repro.trace.events import Location
from repro.trace.io import (
    events_to_jsonl,
    gunzip_bytes,
    gzip_bytes,
    is_gzip_bytes,
)


def _record_some(rec: TraceRecorder, n: int = 4) -> None:
    loc = Location(0, 0)
    for i in range(n):
        rec.enter(float(i), loc, f"r{i}")
    for i in reversed(range(n)):
        rec.exit(float(n + i), loc, f"r{i}")


def test_gz_suffix_writes_gzip(tmp_path):
    rec = TraceRecorder()
    _record_some(rec)
    path = tmp_path / "t.jsonl.gz"
    write_trace(path, rec.events, metadata={"program": "x"})
    assert is_gzip_bytes(path.read_bytes())
    events, metadata = read_trace(path)
    assert len(events) == len(rec.events)
    assert metadata == {"program": "x"}
    assert [e.to_dict() for e in events] == [
        e.to_dict() for e in rec.events
    ]


def test_reader_detects_gzip_regardless_of_name(tmp_path):
    rec = TraceRecorder()
    _record_some(rec)
    # gzip content under a plain .jsonl name still reads.
    path = tmp_path / "misnamed.jsonl"
    path.write_bytes(
        gzip_bytes(events_to_jsonl(rec.events).encode("utf-8"))
    )
    events, _ = read_trace(path)
    assert len(events) == len(rec.events)


def test_plain_and_gzip_traces_have_identical_payload(tmp_path):
    rec = TraceRecorder()
    _record_some(rec)
    plain = tmp_path / "t.jsonl"
    packed = tmp_path / "t.jsonl.gz"
    write_trace(plain, rec.events)
    write_trace(packed, rec.events)
    assert gunzip_bytes(packed.read_bytes()) == plain.read_bytes()


def test_gzip_compression_is_deterministic():
    payload = b"same trace bytes, every time\n" * 50
    assert gzip_bytes(payload) == gzip_bytes(payload)
    # mtime is pinned: no timestamp leaks into the stream
    assert gzip_bytes(payload)[4:8] == b"\x00\x00\x00\x00"


def test_gzip_writer_output_independent_of_destination(tmp_path):
    # Neither mtime nor the destination filename may leak into the
    # stream: the same events under different paths are byte-identical
    # (this is what lets archive digests dedupe identical runs).
    rec = TraceRecorder()
    _record_some(rec)
    a = tmp_path / "first.jsonl.gz"
    b = tmp_path / "second.jsonl.gz"
    write_trace(a, rec.events)
    write_trace(b, rec.events)
    assert a.read_bytes() == b.read_bytes()


def test_truncated_gzip_salvages(tmp_path):
    rec = TraceRecorder()
    _record_some(rec, n=50)
    path = tmp_path / "t.jsonl.gz"
    write_trace(path, rec.events)
    data = path.read_bytes()
    # Cut mid-stream: the deflate tail and CRC are gone.
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(TraceFormatError, match="truncated gzip"):
        read_trace(path)
    events, metadata = read_trace(path, salvage=True)
    assert metadata.get("truncated") is True
    assert 0 < len(events) < len(rec.events)


def test_gzip_writer_flush_midstream_is_readable(tmp_path):
    rec = TraceRecorder()
    _record_some(rec)
    path = tmp_path / "t.jsonl.gz"
    writer = TraceWriter(path, buffer_lines=1)
    writer.write_many(rec.events[:4])
    writer.flush()
    # A flushed-but-unclosed gzip stream salvages up to the flush.
    events, metadata = read_trace(path, salvage=True)
    assert metadata.get("truncated") is True
    assert len(events) == 4
    writer.write_many(rec.events[4:])
    writer.close()
    events, _ = read_trace(path)
    assert len(events) == len(rec.events)
