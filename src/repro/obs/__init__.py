"""Runtime observability: metrics registry, host spans, exporters.

The paper's chapter-2 validation asks how much a tool's measurement
machinery costs; this package turns that question on our own stack.
Every runtime layer reports into a process-global, label-aware metrics
registry (counters / gauges / fixed-bucket histograms) and a host-side
span log; exporters render the result as Prometheus text exposition, a
JSON snapshot, or a Perfetto-viewable Chrome trace-event file.

Everything defaults to **off** and is engineered so the disabled path
adds no observable overhead and never perturbs simulation determinism:

* instrument bundles (:mod:`repro.obs.instruments`) resolve to ``None``
  while disabled -- hot paths guard with one ``is not None`` branch,
* :func:`span` hands out a shared no-op context manager,
* nothing in this package reads or writes virtual time, RNG streams or
  the event trace; with metrics on or off, per-seed trace dumps are
  byte-identical.

Enable programmatically (before constructing simulators/recorders)::

    from repro import obs
    obs.set_metrics_enabled(True)
    obs.set_spans_enabled(True)

or via ``ATS_METRICS=1`` in the environment, or with the CLI flags
``ats run ... --metrics-out FILE --chrome-trace FILE`` / ``ats
metrics``.  See ``docs/OBSERVABILITY.md``.
"""

from .chrome import build_chrome_trace, write_chrome_trace
from .export import SNAPSHOT_QUANTILES, to_json, to_json_str, to_prometheus
from .instruments import (
    analysis_metrics,
    archive_metrics,
    fault_metrics,
    kernel_metrics,
    omp_metrics,
    service_metrics,
    trace_metrics,
    transport_metrics,
)
from .merge import merge_state, registry_state, state_delta
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    null_registry,
    quantile_from_counts,
    reset_metrics,
    set_metrics_enabled,
)
from .spans import (
    Span,
    SpanLog,
    reset_spans,
    set_spans_enabled,
    span,
    span_log,
    spans_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SNAPSHOT_QUANTILES",
    "Span",
    "SpanLog",
    "analysis_metrics",
    "archive_metrics",
    "build_chrome_trace",
    "fault_metrics",
    "get_registry",
    "kernel_metrics",
    "merge_state",
    "metrics_enabled",
    "null_registry",
    "omp_metrics",
    "quantile_from_counts",
    "registry_state",
    "reset_metrics",
    "reset_spans",
    "service_metrics",
    "set_metrics_enabled",
    "set_spans_enabled",
    "span",
    "span_log",
    "spans_enabled",
    "state_delta",
    "to_json",
    "to_json_str",
    "to_prometheus",
    "trace_metrics",
    "transport_metrics",
    "write_chrome_trace",
]
