"""MPI collective performance property functions.

The paper's prototype list -- imbalance at barrier/alltoall, late
broadcast/scatter/scatterv, early reduce/gather/gatherv -- plus
allreduce/allgather imbalance extensions toward the full ASL catalog.
"""

from __future__ import annotations

from ...distributions import (
    DistrDescriptor,
    Val1Distr,
    df_same,
)
from ...distributions.functions import DistrFunc
from ...simmpi.buffers import (
    alloc_mpi_buf,
    alloc_mpi_vbuf,
    free_mpi_buf,
    free_mpi_vbuf,
)
from ...simmpi.communicator import Communicator
from ...simmpi.datatypes import MPI_SUM
from ...trace.api import region
from ...work import do_work, par_do_mpi_work
from ..base import alloc_base_buf, base_cnt, base_type


# ----------------------------------------------------------------------
# imbalance entering synchronizing collectives
# ----------------------------------------------------------------------

def imbalance_at_mpi_barrier(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
) -> None:
    """*Wait at barrier*: unevenly distributed work before a barrier."""
    with region("imbalance_at_mpi_barrier"):
        for _ in range(r):
            par_do_mpi_work(df, dd, 1.0, comm)
            comm.barrier()


def growing_imbalance_at_mpi_barrier(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
) -> None:
    """*Wait at barrier* whose severity grows with the iteration number.

    The paper's section 3.1.5 closing remark: "more complicated
    implementations are possible, e.g., where the severity of the
    pattern is a function of the iteration number.  This can easily be
    implemented by using the scale factor parameter of the distribution
    functions."  Iteration ``i`` uses scale ``(i+1)/r``.
    """
    with region("growing_imbalance_at_mpi_barrier"):
        for i in range(r):
            par_do_mpi_work(df, dd, (i + 1) / r, comm)
            comm.barrier()


def imbalance_at_mpi_alltoall(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
) -> None:
    """*Wait at NxN*: uneven work before an all-to-all exchange."""
    sz = comm.size()
    sendbuf = alloc_mpi_buf(base_type(), base_cnt() * sz)
    recvbuf = alloc_mpi_buf(base_type(), base_cnt() * sz)
    with region("imbalance_at_mpi_alltoall"):
        for _ in range(r):
            par_do_mpi_work(df, dd, 1.0, comm)
            comm.alltoall(sendbuf, recvbuf)
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


def imbalance_at_mpi_allreduce(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
) -> None:
    """*Wait at NxN* (allreduce flavour): uneven work before allreduce."""
    sendbuf = alloc_base_buf()
    recvbuf = alloc_base_buf()
    with region("imbalance_at_mpi_allreduce"):
        for _ in range(r):
            par_do_mpi_work(df, dd, 1.0, comm)
            comm.allreduce(sendbuf, recvbuf, MPI_SUM)
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


def imbalance_at_mpi_allgather(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
) -> None:
    """*Wait at NxN* (allgather flavour): uneven work before allgather."""
    sz = comm.size()
    sendbuf = alloc_base_buf()
    recvbuf = alloc_mpi_buf(base_type(), base_cnt() * sz)
    with region("imbalance_at_mpi_allgather"):
        for _ in range(r):
            par_do_mpi_work(df, dd, 1.0, comm)
            comm.allgather(sendbuf, recvbuf)
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


def imbalance_at_mpi_reduce_scatter(
    df: DistrFunc,
    dd: DistrDescriptor,
    r: int,
    comm: Communicator,
) -> None:
    """*Wait at NxN* (reduce-scatter flavour)."""
    sz = comm.size()
    sendbuf = alloc_mpi_buf(base_type(), base_cnt() * sz)
    recvbuf = alloc_base_buf()
    with region("imbalance_at_mpi_reduce_scatter"):
        for _ in range(r):
            par_do_mpi_work(df, dd, 1.0, comm)
            comm.reduce_scatter_block(sendbuf, recvbuf, MPI_SUM)
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


# ----------------------------------------------------------------------
# late root: 1-to-N operations entered late by the data source
# ----------------------------------------------------------------------

def late_broadcast(
    basework: float,
    rootextrawork: float,
    root: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Late broadcast*: non-roots wait because the root enters late."""
    buf = alloc_base_buf()
    root %= comm.size()
    with region("late_broadcast"):
        for _ in range(r):
            do_work(
                basework + (rootextrawork if comm.rank() == root else 0.0)
            )
            comm.bcast(buf, root=root)
    free_mpi_buf(buf)


def late_scatter(
    basework: float,
    rootextrawork: float,
    root: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Late scatter*: receivers wait for the late distributing root."""
    sz = comm.size()
    root %= sz
    sendbuf = alloc_mpi_buf(base_type(), base_cnt() * sz)
    recvbuf = alloc_base_buf()
    with region("late_scatter"):
        for _ in range(r):
            do_work(
                basework + (rootextrawork if comm.rank() == root else 0.0)
            )
            comm.scatter(
                sendbuf if comm.rank() == root else None,
                recvbuf,
                root=root,
            )
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


def late_scatterv(
    basework: float,
    rootextrawork: float,
    root: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Late scatterv*: the irregular variant of :func:`late_scatter`."""
    root %= comm.size()
    vbuf = alloc_mpi_vbuf(
        base_type(), df_same, Val1Distr(float(base_cnt())), 1.0, comm
    )
    with region("late_scatterv"):
        for _ in range(r):
            do_work(
                basework + (rootextrawork if comm.rank() == root else 0.0)
            )
            comm.scatterv(vbuf, root=root)
    free_mpi_vbuf(vbuf)


# ----------------------------------------------------------------------
# early root: N-to-1 operations entered early by the data sink
# ----------------------------------------------------------------------

def early_reduce(
    rootwork: float,
    baseextrawork: float,
    root: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Early reduce*: the root waits because contributors enter late."""
    root %= comm.size()
    sendbuf = alloc_base_buf()
    recvbuf = alloc_base_buf() if comm.rank() == root else None
    with region("early_reduce"):
        for _ in range(r):
            do_work(
                rootwork
                + (0.0 if comm.rank() == root else baseextrawork)
            )
            comm.reduce(sendbuf, recvbuf, MPI_SUM, root=root)
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


def early_gather(
    rootwork: float,
    baseextrawork: float,
    root: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Early gather*: the collecting root waits for late contributors."""
    sz = comm.size()
    root %= sz
    sendbuf = alloc_base_buf()
    recvbuf = (
        alloc_mpi_buf(base_type(), base_cnt() * sz)
        if comm.rank() == root
        else None
    )
    with region("early_gather"):
        for _ in range(r):
            do_work(
                rootwork
                + (0.0 if comm.rank() == root else baseextrawork)
            )
            comm.gather(sendbuf, recvbuf, root=root)
    free_mpi_buf(sendbuf)
    free_mpi_buf(recvbuf)


def early_gatherv(
    rootwork: float,
    baseextrawork: float,
    root: int,
    r: int,
    comm: Communicator,
) -> None:
    """*Early gatherv*: the irregular variant of :func:`early_gather`."""
    root %= comm.size()
    vbuf = alloc_mpi_vbuf(
        base_type(), df_same, Val1Distr(float(base_cnt())), 1.0, comm
    )
    with region("early_gatherv"):
        for _ in range(r):
            do_work(
                rootwork
                + (0.0 if comm.rank() == root else baseextrawork)
            )
            comm.gatherv(vbuf, root=root)
    free_mpi_vbuf(vbuf)
