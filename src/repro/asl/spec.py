"""A miniature ASL: APART Specification Language for properties.

The paper grounds ATS in ASL [Fahringer et al., IB-2001-08]: a
*performance property* is specified as a triple of

* **condition** -- does the property hold for this program/region,
* **confidence** -- how certain the specification is (0..1),
* **severity** -- how much the property limits performance.

This module reproduces that structure over the reproduction's own
performance data model: an :class:`AslProperty` evaluates the three
members against :class:`PerformanceData` (trace profile + analyzer
results), and a catalog of concrete properties lives in
:mod:`repro.asl.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.model import AnalysisResult
from ..trace.stats import TraceProfile, profile_trace


@dataclass
class PerformanceData:
    """The data model an ASL property is evaluated against."""

    profile: TraceProfile
    analysis: AnalysisResult

    @property
    def total_time(self) -> float:
        return self.analysis.total_time

    @property
    def total_allocation(self) -> float:
        return self.analysis.total_allocation

    def region_fraction(self, *regions: str) -> float:
        """Fraction of total allocation spent (exclusively) in regions."""
        alloc = self.total_allocation
        if alloc <= 0:
            return 0.0
        return (
            sum(self.profile.exclusive_total(r) for r in regions) / alloc
        )

    @classmethod
    def from_run(cls, run) -> "PerformanceData":
        """Build from a RunResult/OmpRunResult + its analysis."""
        from ..analysis import analyze_run

        return cls(
            profile=profile_trace(run.events),
            analysis=analyze_run(run),
        )


class AslProperty:
    """Base class: one ASL performance property specification.

    Subclasses override :meth:`condition`, :meth:`severity` and
    optionally :meth:`confidence` (default 1.0, i.e. the condition is
    exact, not heuristic).
    """

    #: unique property identifier
    name: str = "abstract"
    description: str = ""

    def condition(self, data: PerformanceData) -> bool:
        raise NotImplementedError

    def confidence(self, data: PerformanceData) -> float:
        return 1.0

    def severity(self, data: PerformanceData) -> float:
        raise NotImplementedError

    def holds(self, data: PerformanceData) -> bool:
        """Condition with defensive clamping."""
        return bool(self.condition(data))


@dataclass(frozen=True)
class Diagnosis:
    """One confirmed property instance in an evaluation."""

    property: str
    severity: float
    confidence: float
    description: str = ""


def format_diagnoses(diagnoses: Sequence["Diagnosis"]) -> str:
    """Render an ASL evaluation as a ranked table.

    Shows all three ASL members per holding property: severity (the
    ranking key), confidence, and the description.
    """
    if not diagnoses:
        return "(no performance property holds)\n"
    lines = [f"{'severity':>9} {'conf':>5}  property"]
    for d in diagnoses:
        lines.append(
            f"{d.severity:>9.2%} {d.confidence:>5.2f}  {d.property}"
            + (f" -- {d.description}" if d.description else "")
        )
    return "\n".join(lines) + "\n"


def evaluate(
    properties: Sequence[AslProperty], data: PerformanceData
) -> list[Diagnosis]:
    """Evaluate a property set; returns diagnoses ranked by severity.

    This is ASL's intended use: "the magnitude [of severity] specifies
    the importance of the property in terms of its contribution to
    limiting the performance of the program" -- ranking follows.
    """
    out = []
    for prop in properties:
        if prop.holds(data):
            out.append(
                Diagnosis(
                    property=prop.name,
                    severity=prop.severity(data),
                    confidence=prop.confidence(data),
                    description=prop.description,
                )
            )
    out.sort(key=lambda d: -d.severity)
    return out
