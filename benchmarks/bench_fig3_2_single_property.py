"""F3.2 -- Figure 3.2: single-property test programs with different
parameters.

The paper shows two Vampir timelines of ``imbalance_at_mpi_barrier``
generated with different command-line parameters (different
distributions/severities) and notes a side finding: "High MPI
Initialization/Finalization Overhead, which is hard to avoid in the
view of the small sizes of the test programs".

Shape claims reproduced here:

* the same property function, under two parameter sets, yields visibly
  different timelines and different measured severities,
* detected severity scales with the imbalance parameter,
* the init/finalize-overhead property is present in these small runs.
"""

from repro.analysis import analyze_run
from repro.core import DistParam, get_property


def run_config(dist):
    spec = get_property("imbalance_at_mpi_barrier")
    result = spec.run(
        size=4, params={"dist": dist}, model_init_overhead=True
    )
    return result, analyze_run(result)


def test_fig3_2_two_parameter_sets(benchmark):
    (r_mild, a_mild), (r_severe, a_severe) = benchmark.pedantic(
        lambda: (
            run_config(DistParam("block2", (0.005, 0.01))),
            run_config(DistParam("block2", (0.005, 0.04))),
        ),
        rounds=1,
        iterations=1,
    )
    print("\nF3.2 run 1 (mild imbalance, block2 low=5ms high=10ms):")
    print(r_mild.timeline(width=100))
    print("F3.2 run 2 (severe imbalance, block2 low=5ms high=40ms):")
    print(r_severe.timeline(width=100))
    sev_mild = a_mild.severity(property="wait_at_barrier")
    sev_severe = a_severe.severity(property="wait_at_barrier")
    # Absolute waiting time scales with the imbalance parameter: the
    # low-work half waits (high - low) per repetition, so 35ms vs 5ms
    # of spread should produce ~7x the accumulated wait.
    wait_mild = sev_mild * a_mild.total_allocation
    wait_severe = sev_severe * a_severe.total_allocation
    print(f"wait_at_barrier: mild {sev_mild:.2%} ({wait_mild:.4f}s), "
          f"severe {sev_severe:.2%} ({wait_severe:.4f}s)")
    assert sev_severe > sev_mild > 0
    assert 5.0 < wait_severe / wait_mild < 9.0


def test_fig3_2_distribution_shape_changes_location_pattern(benchmark):
    """block2 loads one half; peak loads all but one rank."""
    (_, a_block), (_, a_peak) = benchmark.pedantic(
        lambda: (
            run_config(DistParam("block2", (0.005, 0.03))),
            run_config(DistParam("peak", (0.005, 0.03, 0))),
        ),
        rounds=1, iterations=1,
    )
    block_ranks = {
        loc.rank for loc in a_block.locations_of("wait_at_barrier")
    }
    peak_ranks = {
        loc.rank for loc in a_peak.locations_of("wait_at_barrier")
    }
    print(f"\n  block2 waiting ranks: {sorted(block_ranks)}  "
          f"peak waiting ranks: {sorted(peak_ranks)}")
    assert block_ranks == {0, 1}       # the low-work half waits
    assert peak_ranks == {1, 2, 3}     # everyone but the peak rank 0


def test_fig3_2_init_overhead_observed(benchmark):
    """The paper's side observation about small test programs."""
    _, analysis = benchmark.pedantic(
        run_config, args=(DistParam("block2", (0.005, 0.01)),),
        rounds=1, iterations=1,
    )
    sev = analysis.severity(property="mpi_init_overhead")
    print(f"\n  mpi_init_overhead severity in a small run: {sev:.2%}")
    assert sev > 0.01
