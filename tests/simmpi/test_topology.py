"""Cartesian topology tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import SimulationCrashed
from repro.simmpi import (
    MPI_INT,
    PROC_NULL,
    MpiError,
    alloc_mpi_buf,
    cart_create,
    dims_create,
    run_mpi,
)

FAST = dict(model_init_overhead=False)


# ----------------------------------------------------------------------
# dims_create
# ----------------------------------------------------------------------

def test_dims_create_balanced():
    assert dims_create(12, 2) == [4, 3]
    assert dims_create(16, 2) == [4, 4]
    assert dims_create(8, 3) == [2, 2, 2]
    assert dims_create(7, 2) == [7, 1]
    assert dims_create(1, 2) == [1, 1]


@given(
    nnodes=st.integers(min_value=1, max_value=256),
    ndims=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60)
def test_dims_create_product_invariant(nnodes, ndims):
    dims = dims_create(nnodes, ndims)
    product = 1
    for d in dims:
        product *= d
    assert product == nnodes
    assert len(dims) == ndims
    assert dims == sorted(dims, reverse=True)


def test_dims_create_validates():
    with pytest.raises(ValueError):
        dims_create(0, 2)
    with pytest.raises(ValueError):
        dims_create(4, 0)


# ----------------------------------------------------------------------
# cart communicator
# ----------------------------------------------------------------------

def test_cart_coords_round_trip():
    seen = {}

    def main(comm):
        cart = cart_create(comm, (3, 2))
        me = cart.rank()
        coords = cart.my_coords()
        seen[me] = coords
        assert cart.rank_at(coords) == me
        assert cart.coords_of(me) == coords

    run_mpi(main, 6, **FAST)
    assert seen[0] == (0, 0)
    assert seen[1] == (0, 1)
    assert seen[5] == (2, 1)


def test_cart_shift_open_boundaries():
    shifts = {}

    def main(comm):
        cart = cart_create(comm, (2, 2))
        shifts[cart.rank()] = (cart.shift(0, 1), cart.shift(1, 1))

    run_mpi(main, 4, **FAST)
    # rank 0 = (0,0): shift dim0 -> src NULL, dst rank 2 (=(1,0))
    assert shifts[0] == ((PROC_NULL, 2), (PROC_NULL, 1))
    # rank 3 = (1,1): shift dim0 -> src rank 1, dst NULL
    assert shifts[3] == ((1, PROC_NULL), (2, PROC_NULL))


def test_cart_shift_periodic_wraps():
    shifts = {}

    def main(comm):
        cart = cart_create(comm, (4,), periods=[True])
        shifts[cart.rank()] = cart.shift(0, 1)

    run_mpi(main, 4, **FAST)
    assert shifts[0] == (3, 1)
    assert shifts[3] == (2, 0)


def test_cart_grid_must_match_size():
    def main(comm):
        cart_create(comm, (3, 3))  # needs 9, world is 4

    with pytest.raises(SimulationCrashed) as info:
        run_mpi(main, 4, **FAST)
    assert isinstance(info.value.original, MpiError)


def test_cart_ring_exchange_via_shift():
    received = {}

    def main(comm):
        cart = cart_create(comm, (comm.size(),), periods=[True])
        src, dst = cart.shift(0, 1)
        sbuf = alloc_mpi_buf(MPI_INT, 1)
        rbuf = alloc_mpi_buf(MPI_INT, 1)
        sbuf.data[0] = cart.rank()
        cart.sendrecv(sbuf, dst, 1, rbuf, src, 1)
        received[cart.rank()] = int(rbuf.data[0])

    run_mpi(main, 5, **FAST)
    for me in range(5):
        assert received[me] == (me - 1) % 5


def test_cart_comm_has_own_context():
    def main(comm):
        cart = cart_create(comm, (comm.size(),))
        assert cart.comm_id != comm.comm_id
        assert cart.group == comm.group

    run_mpi(main, 3, **FAST)


# ----------------------------------------------------------------------
# the 2-D stencil application
# ----------------------------------------------------------------------

def test_stencil2d_clean_and_consistent():
    from repro.analysis import analyze_run
    from repro.apps import Stencil2DConfig, stencil2d

    result = run_mpi(stencil2d, 6, Stencil2DConfig(), **FAST)
    # all ranks agree on the residual
    assert len({round(r, 12) for r in result.results}) == 1
    assert analyze_run(result).detected(0.02) == ()


def test_stencil2d_hot_row_shows_nxn_waits():
    from repro.analysis import analyze_run
    from repro.apps import Stencil2DConfig, stencil2d

    result = run_mpi(
        stencil2d, 6,
        Stencil2DConfig(hot_row=1, iterations=10), **FAST,
    )
    assert "wait_at_nxn" in analyze_run(result).detected(0.02)


def test_stencil2d_deterministic():
    from repro.apps import Stencil2DConfig, stencil2d

    r1 = run_mpi(stencil2d, 4, Stencil2DConfig(), **FAST)
    r2 = run_mpi(stencil2d, 4, Stencil2DConfig(), **FAST)
    assert r1.results == r2.results
    assert r1.final_time == r2.final_time
