"""Per-tenant token-bucket rate limiting for the analysis service.

Each tenant (the ``X-Tenant`` request header, ``"default"`` when
absent) gets an independent :class:`TokenBucket`: ``burst`` tokens of
capacity refilled continuously at ``rate`` tokens per second.  A
submission costs one token; when the bucket is empty the limiter
returns how long until the next token accrues, which the HTTP layer
surfaces as ``429 Too Many Requests`` with a ``Retry-After`` header.
Because buckets are per tenant, one tenant hammering the service never
starves another -- the satellite test drives exactly that scenario.

Everything is thread-safe: submissions arrive from the asyncio
accept loop while tests and the CLI poke the limiter directly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """Continuous-refill token bucket (one per tenant)."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive (tokens/second)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; 0.0 on success, else seconds to wait.

        The returned wait is how long until the bucket will hold
        ``cost`` tokens again at the current refill rate -- the value
        a ``Retry-After`` header should round up from.
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Current token count (refilled to now); diagnostics only."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class RateLimiter:
    """Lazy per-tenant bucket map with one shared rate/burst policy."""

    def __init__(
        self,
        rate: float = 50.0,
        burst: int = 100,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.rate, self.burst, clock=self._clock
                    )
        return bucket

    def check(self, tenant: str) -> float:
        """Charge one submission; 0.0 = admitted, else retry-after."""
        return self.bucket(tenant).try_acquire()
