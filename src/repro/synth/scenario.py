"""Synthesized scenarios and their ground-truth manifests.

A :class:`Scenario` is one fully-sampled point of the campaign space:
which property doses (property function + severity band) run, on which
rank half, behind which benign app skeleton, at which size/thread
count, under how much fault-plan noise, with which seed.  Both the
executable program (:meth:`Scenario.build_spec` returns an ordinary
:class:`~repro.core.registry.PropertySpec`) and the machine-checkable
:class:`GroundTruthManifest` are derived from the same frozen sampling
decisions, so the oracle cannot drift from the workload -- the paper's
known-property principle applied generatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..asl.catalog import ANALYZER_PROPERTY_IDS
from ..core.composite import Step
from ..core.registry import PropertySpec, get_property
from ..simmpi.communicator import Communicator
from ..validation.harness import GLOBALLY_ALLOWED
from .spec import BAND_FACTORS, SynthError

#: benign app skeletons (repro.apps) usable as the surrounding program,
#: mapped to the property ids their own communication may legitimately
#: trip at low severity (tolerated, never required)
SKELETONS: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "jacobi": ("late_sender", "late_receiver", "wait_at_nxn"),
    "pipeline": ("late_sender", "late_receiver"),
    "master_worker": ("late_sender", "late_receiver"),
}


def run_skeleton(name: str, comm: Communicator) -> None:
    """Run one benign skeleton phase on the world communicator."""
    if name == "none":
        return
    if name == "jacobi":
        from ..apps import JacobiConfig, jacobi

        jacobi(comm, JacobiConfig(total_cells=256, iterations=2))
    elif name == "pipeline":
        from ..apps import PipelineConfig, pipeline

        pipeline(comm, PipelineConfig(nitems=8, stage_time=0.001))
    elif name == "master_worker":
        from ..apps import FarmConfig, master_worker

        master_worker(
            comm,
            FarmConfig(
                ntasks=2 * comm.size(), task_time=0.001, task_spread=0.0
            ),
        )
    else:  # pragma: no cover - generation validates skeleton names
        raise SynthError(f"unknown skeleton {name!r}")


@dataclass(frozen=True)
class PropertyDose:
    """One property function at one severity band inside a scenario."""

    property: str
    band: str

    def __post_init__(self) -> None:
        if self.band not in BAND_FACTORS:
            raise SynthError(f"unknown severity band {self.band!r}")

    @property
    def factor(self) -> float:
        return BAND_FACTORS[self.band]

    def spec(self) -> PropertySpec:
        return get_property(self.property)

    def to_dict(self) -> dict:
        return {"property": self.property, "band": self.band}

    @classmethod
    def from_dict(cls, d: dict) -> "PropertyDose":
        return cls(property=d["property"], band=d["band"])


@dataclass(frozen=True)
class GroundTruthManifest:
    """Machine-checkable expected findings of one scenario.

    ``locations`` are (analyzer property id, trace region, pathological
    ranks) triples; ``severity_bands`` maps each expected property id
    to the strongest band any dose contributes it at.
    """

    scenario: str
    seed: int
    expected: Tuple[str, ...]
    allowed: Tuple[str, ...]
    severity_bands: Tuple[Tuple[str, str], ...]
    locations: Tuple[Tuple[str, str, Tuple[int, ...]], ...]
    noise_magnitude: float

    def validate(self) -> None:
        """Every id must exist in the ASL analyzer catalog."""
        known = set(ANALYZER_PROPERTY_IDS)
        for pid in (*self.expected, *self.allowed):
            if pid not in known:
                raise SynthError(
                    f"{self.scenario}: manifest property {pid!r} is "
                    "not an analyzer property id"
                )
        banded = {pid for pid, _ in self.severity_bands}
        if banded != set(self.expected):
            raise SynthError(
                f"{self.scenario}: severity bands must cover exactly "
                "the expected properties"
            )
        for band in dict(self.severity_bands).values():
            if band not in BAND_FACTORS:
                raise SynthError(
                    f"{self.scenario}: unknown severity band {band!r}"
                )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "expected": list(self.expected),
            "allowed": list(self.allowed),
            "severity_bands": dict(self.severity_bands),
            "locations": [
                {"property": pid, "region": region, "ranks": list(ranks)}
                for pid, region, ranks in self.locations
            ],
            "noise_magnitude": self.noise_magnitude,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GroundTruthManifest":
        return cls(
            scenario=d["scenario"],
            seed=d["seed"],
            expected=tuple(d["expected"]),
            allowed=tuple(d["allowed"]),
            severity_bands=tuple(
                sorted(d.get("severity_bands", {}).items())
            ),
            locations=tuple(
                (loc["property"], loc["region"], tuple(loc["ranks"]))
                for loc in d.get("locations", ())
            ),
            noise_magnitude=d.get("noise_magnitude", 0.0),
        )


@dataclass(frozen=True)
class Scenario:
    """One fully-sampled synthesized program (see module docstring)."""

    campaign: str
    index: int
    doses: Tuple[PropertyDose, ...]
    #: which ranks run the property doses: "all", or the "lower" /
    #: "upper" communicator half (the other half runs benign filler)
    placement: str
    skeleton: str
    size: int
    threads: int
    #: splitmix-derived from the campaign seed and the scenario index
    seed: int
    noise_magnitude: float

    @property
    def name(self) -> str:
        return f"{self.campaign}/{self.index:05d}"

    @property
    def paradigm(self) -> str:
        if (
            self.placement == "all"
            and self.skeleton == "none"
            and self.doses
            and all(d.spec().paradigm == "omp" for d in self.doses)
        ):
            return "omp"
        return "mpi"

    def pathological_ranks(self) -> Tuple[int, ...]:
        if self.paradigm == "omp":
            return (0,)
        if self.placement == "lower":
            return tuple(range(self.size // 2))
        if self.placement == "upper":
            return tuple(range(self.size // 2, self.size))
        return tuple(range(self.size))

    def min_size(self) -> int:
        if self.paradigm == "omp":
            return 1
        floors = [2] + [
            d.spec().min_size
            for d in self.doses
            if d.spec().paradigm != "omp"
        ]
        required = max(floors)
        if self.placement in ("lower", "upper"):
            # Each communicator half must satisfy every step's floor.
            return 2 * required
        return required

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------

    def manifest(self) -> GroundTruthManifest:
        expected: set = set()
        allowed = set(GLOBALLY_ALLOWED) | set(
            SKELETONS.get(self.skeleton, ())
        )
        bands: Dict[str, str] = {}
        locations = []
        ranks = self.pathological_ranks()
        for dose in self.doses:
            spec = dose.spec()
            expected.update(spec.expected)
            allowed.update(spec.allowed)
            for pid in spec.expected:
                held = bands.get(pid)
                if held is None or dose.factor > BAND_FACTORS[held]:
                    bands[pid] = dose.band
            if spec.expected:
                for pid in spec.expected:
                    # Property functions open a trace region named
                    # after themselves; that is the localization truth.
                    locations.append((pid, dose.property, ranks))
        return GroundTruthManifest(
            scenario=self.name,
            seed=self.seed,
            expected=tuple(sorted(expected)),
            allowed=tuple(sorted(allowed - expected)),
            severity_bands=tuple(sorted(bands.items())),
            locations=tuple(sorted(locations)),
            noise_magnitude=self.noise_magnitude,
        )

    # ------------------------------------------------------------------
    # the executable program
    # ------------------------------------------------------------------

    def build_spec(self) -> PropertySpec:
        """The scenario as an ordinary registry-shaped PropertySpec.

        Not registered -- scenario names carry a ``/`` so they can
        never shadow a hand-written program -- but runnable by
        everything that takes a spec (supervised sweeps, the archive,
        the validation harness).
        """
        manifest = self.manifest()
        steps = tuple(
            Step(d.property, params=d.spec().scaled_params(d.factor))
            for d in self.doses
        )
        filler = (Step("balanced_sendrecv"),)
        threads = self.threads
        paradigm = self.paradigm
        if paradigm == "omp":
            def func() -> None:
                for step in steps:
                    step.execute(None, num_threads=threads)
        else:
            placement = self.placement
            skeleton = self.skeleton

            def func(comm: Communicator) -> None:
                run_skeleton(skeleton, comm)
                if placement == "all":
                    for step in steps:
                        step.execute(comm, num_threads=threads)
                    return
                me = comm.rank()
                in_lower = me < comm.size() // 2
                half = comm.split(0 if in_lower else 1)
                mine = (
                    steps
                    if in_lower == (placement == "lower")
                    else filler
                )
                for step in mine:
                    step.execute(half, num_threads=threads)

        doses = ", ".join(f"{d.property}@{d.band}" for d in self.doses)
        return PropertySpec(
            name=self.name,
            func=func,
            paradigm=paradigm,
            expected=manifest.expected,
            allowed=manifest.allowed,
            negative=not manifest.expected,
            description=(
                f"synthesized ({doses or 'clean'}; "
                f"placement={self.placement}, skeleton={self.skeleton})"
            ),
            min_size=self.min_size(),
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "index": self.index,
            "doses": [d.to_dict() for d in self.doses],
            "placement": self.placement,
            "skeleton": self.skeleton,
            "size": self.size,
            "threads": self.threads,
            "seed": self.seed,
            "noise_magnitude": self.noise_magnitude,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Scenario":
        return cls(
            campaign=d["campaign"],
            index=d["index"],
            doses=tuple(
                PropertyDose.from_dict(x) for x in d.get("doses", ())
            ),
            placement=d["placement"],
            skeleton=d["skeleton"],
            size=d["size"],
            threads=d["threads"],
            seed=d["seed"],
            noise_magnitude=d.get("noise_magnitude", 0.0),
        )
