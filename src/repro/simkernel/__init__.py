"""Deterministic discrete-event simulation kernel.

This is the bottom layer of the ATS reproduction: simulated processes
with a virtual clock on which the MPI runtime (:mod:`repro.simmpi`) and
the OpenMP runtime (:mod:`repro.simomp`) are built.  User code runs in
plain blocking style; determinism comes from running exactly one
process at a time and breaking time ties in scheduling order.
"""

from .errors import (
    DeadlockError,
    HangError,
    NotInProcessError,
    ProcessKilled,
    SimError,
    SimulationCrashed,
)
from .process import (
    ProcState,
    SimProcess,
    WorkerPool,
    current_process,
    maybe_current_process,
    run_host_tasks,
    submit_host_task,
    worker_pool,
)
from .rng import Lcg64, derive_seed
from .scheduler import (
    Simulator,
    activate,
    current_sim,
    hold,
    now,
    passivate,
)
from .sync import (
    Mailbox,
    SimBarrier,
    SimCondition,
    SimEvent,
    SimMutex,
    SimSemaphore,
)
from .watchdog import (
    DeadlockReport,
    HangReport,
    PendingCall,
)

__all__ = [
    "DeadlockError",
    "DeadlockReport",
    "HangError",
    "HangReport",
    "Lcg64",
    "derive_seed",
    "Mailbox",
    "NotInProcessError",
    "PendingCall",
    "ProcState",
    "ProcessKilled",
    "SimBarrier",
    "SimCondition",
    "SimError",
    "SimEvent",
    "SimMutex",
    "SimProcess",
    "SimSemaphore",
    "SimulationCrashed",
    "Simulator",
    "WorkerPool",
    "activate",
    "current_process",
    "current_sim",
    "hold",
    "maybe_current_process",
    "now",
    "passivate",
    "run_host_tasks",
    "submit_host_task",
    "worker_pool",
]
