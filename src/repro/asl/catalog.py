"""The ASL property catalog.

Two families:

* **pattern-backed properties** wrap the analyzer's waiting-time
  findings (one ASL property per detector property id) -- condition is
  "any attributed wait", severity is the ASL fraction-of-allocation,
* **profile-backed properties** are defined directly over region-time
  summaries, like ASL's original summary-data properties:
  communication-bound, synchronization-frequency, io-dominance.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import AslProperty, PerformanceData

#: every property id the analyzer battery can produce
ANALYZER_PROPERTY_IDS = (
    "late_sender",
    "late_receiver",
    "messages_in_wrong_order",
    "wait_at_barrier",
    "wait_at_nxn",
    "late_broadcast",
    "late_scatter",
    "late_scatterv",
    "early_reduce",
    "early_gather",
    "early_gatherv",
    "mpi_init_overhead",
    "imbalance_at_omp_barrier",
    "imbalance_in_omp_pregion",
    "imbalance_in_omp_loop",
    "imbalance_in_omp_sections",
    "imbalance_at_omp_single",
    "imbalance_at_omp_reduce",
    "omp_critical_contention",
    "omp_lock_contention",
    "io_bound",
)


@dataclass
class PatternProperty(AslProperty):
    """ASL wrapper over one analyzer pattern property."""

    name: str = ""
    description: str = ""
    threshold: float = 0.0

    def condition(self, data: PerformanceData) -> bool:
        return self.severity(data) > self.threshold

    def severity(self, data: PerformanceData) -> float:
        return data.analysis.severity(property=self.name)


class CommunicationBound(AslProperty):
    """The program spends a large fraction of its time inside MPI calls.

    A classic ASL summary property: condition over the profile, not
    over any individual wait pattern.  Confidence is below 1 because
    time inside MPI includes useful transfer time, not only loss.
    """

    name = "communication_bound"
    description = "large fraction of time spent inside MPI operations"

    MPI_REGION_PREFIX = "MPI_"
    threshold = 0.2

    def _mpi_fraction(self, data: PerformanceData) -> float:
        alloc = data.total_allocation
        if alloc <= 0:
            return 0.0
        total = sum(
            data.profile.exclusive_total(region)
            for region in data.profile.regions()
            if region.startswith(self.MPI_REGION_PREFIX)
        )
        return total / alloc

    def condition(self, data: PerformanceData) -> bool:
        return self._mpi_fraction(data) > self.threshold

    def confidence(self, data: PerformanceData) -> float:
        return 0.8

    def severity(self, data: PerformanceData) -> float:
        return self._mpi_fraction(data)


class FrequentSynchronization(AslProperty):
    """Many synchronizing operations per unit of run time.

    Condition on visit counts rather than waiting time: even a
    perfectly balanced program pays latency per collective.
    """

    name = "frequent_synchronization"
    description = "high rate of barriers/collective synchronizations"

    SYNC_REGIONS = ("MPI_Barrier", "omp_barrier")
    rate_threshold = 200.0  # visits per second per location

    def _rate(self, data: PerformanceData) -> float:
        if data.total_time <= 0:
            return 0.0
        visits = sum(
            rp.visits
            for (region, _), rp in data.profile.per_region.items()
            if region in self.SYNC_REGIONS
        )
        nloc = max(1, len(data.analysis.locations))
        return visits / nloc / data.total_time

    def condition(self, data: PerformanceData) -> bool:
        return self._rate(data) > self.rate_threshold

    def confidence(self, data: PerformanceData) -> float:
        return 0.5

    def severity(self, data: PerformanceData) -> float:
        # Normalized against 10x the threshold rate, capped at 1.
        return min(1.0, self._rate(data) / (10 * self.rate_threshold))


class SequentialBottleneck(AslProperty):
    """One location does far more exclusive work than the average.

    The summary-data view of load imbalance: useful when no explicit
    synchronization absorbs the wait (so no pattern fires).
    """

    name = "sequential_bottleneck"
    description = "one location dominates the computation"

    ratio_threshold = 2.0

    def _max_over_mean(self, data: PerformanceData) -> float:
        per_loc: dict = {}
        for (region, loc), rp in data.profile.per_region.items():
            if region == "work":
                per_loc[loc] = per_loc.get(loc, 0.0) + rp.inclusive
        if len(per_loc) < 2:
            return 0.0
        values = list(per_loc.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 0.0

    def condition(self, data: PerformanceData) -> bool:
        return self._max_over_mean(data) > self.ratio_threshold

    def confidence(self, data: PerformanceData) -> float:
        return 0.7

    def severity(self, data: PerformanceData) -> float:
        ratio = self._max_over_mean(data)
        return max(0.0, min(1.0, (ratio - 1.0) / 4.0))


def default_catalog() -> list[AslProperty]:
    """The full ASL catalog: pattern wrappers + summary properties."""
    props: list[AslProperty] = [
        PatternProperty(
            name=pid, description=f"pattern property {pid}"
        )
        for pid in ANALYZER_PROPERTY_IDS
    ]
    props.extend(
        [
            CommunicationBound(),
            FrequentSynchronization(),
            SequentialBottleneck(),
        ]
    )
    return props
