"""Statistical analysis layer: similarity detection + dataset export.

The rule-based detectors in :mod:`repro.analysis` pattern-match known
ASL properties; this package adds the complementary family from the
SPMD-debugging literature (Liu et al.): derive a behavior vector per
rank, cluster the vectors, and flag ranks and phases that separate
from the baseline.  Detector **families** are first-class here --
``"rule"`` (the default battery) and ``"similarity"`` (this package's
battery) -- so the robustness harness, the synth scorer and the CLI
can run and grade them side by side against the same ground truth.

See ``docs/STATS.md`` for the feature schema, the algorithms and the
dataset export format.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .dataset import (
    DATASET_FORMAT,
    ROW_REQUIRED_KEYS,
    DatasetRow,
    dataset_rows,
    feature_cell_key,
    features_for_run,
    rows_to_csv,
    rows_to_jsonl,
    validate_row,
)
from .detector import (
    PROPERTY_CLASSES,
    SIMILARITY_COVERS,
    SIMILARITY_PROPERTY_IDS,
    STATISTICAL_DETECTORS,
    PhaseAnomalyDetector,
    SimilarityDetector,
    covers,
    property_class,
    statistical_expectations,
)
from .features import (
    BASE_FEATURES,
    FEATURE_VERSION,
    FeatureMatrix,
    behavior_matrix,
)
from .similarity import (
    METRICS,
    ClusterAssignment,
    cluster_rows,
    euclidean,
    kmedoids,
    manhattan,
    pairwise_distances,
    silhouette,
    single_link,
)

#: the known detector family names, in battery order
FAMILY_NAMES: Tuple[str, ...] = ("rule", "similarity")


def detector_families() -> Dict[str, Tuple[object, ...]]:
    """Family name -> detector battery (imports rule battery lazily)."""
    from ..analysis.detectors import DEFAULT_DETECTORS

    return {
        "rule": tuple(DEFAULT_DETECTORS),
        "similarity": STATISTICAL_DETECTORS,
    }


def battery_for(families: Sequence[str]) -> Tuple[object, ...]:
    """Concatenated battery of the named families, in family order.

    Raises ValueError on an unknown family name; the concatenation
    order is fixed (rule first) regardless of the order given, so the
    detector-set fingerprint of a family selection is stable.
    """
    known = detector_families()
    unknown = sorted(set(families) - set(known))
    if unknown:
        raise ValueError(
            f"unknown detector families: {', '.join(unknown)} "
            f"(have: {', '.join(FAMILY_NAMES)})"
        )
    wanted = set(families)
    battery: list = []
    for name in FAMILY_NAMES:
        if name in wanted:
            battery.extend(known[name])
    return tuple(battery)


def parse_families(text: str) -> Tuple[str, ...]:
    """Parse a ``--families rule,similarity`` CLI value."""
    names = tuple(
        name.strip() for name in text.split(",") if name.strip()
    )
    if not names:
        raise ValueError("need at least one detector family")
    battery_for(names)  # validates
    return names


__all__ = [
    "BASE_FEATURES",
    "DATASET_FORMAT",
    "DatasetRow",
    "FAMILY_NAMES",
    "FEATURE_VERSION",
    "FeatureMatrix",
    "METRICS",
    "ClusterAssignment",
    "PROPERTY_CLASSES",
    "PhaseAnomalyDetector",
    "ROW_REQUIRED_KEYS",
    "SIMILARITY_COVERS",
    "SIMILARITY_PROPERTY_IDS",
    "STATISTICAL_DETECTORS",
    "SimilarityDetector",
    "battery_for",
    "behavior_matrix",
    "cluster_rows",
    "covers",
    "dataset_rows",
    "detector_families",
    "euclidean",
    "feature_cell_key",
    "features_for_run",
    "kmedoids",
    "manhattan",
    "pairwise_distances",
    "parse_families",
    "property_class",
    "rows_to_csv",
    "rows_to_jsonl",
    "silhouette",
    "single_link",
    "statistical_expectations",
    "validate_row",
]
