#!/usr/bin/env python
"""Statistical-layer throughput benchmark.

Measures the ``repro.stats`` pipeline on two shapes:

* **hybrid-64** -- the standard hybrid composite (the cross-bench
  reference shape): feature extraction rows/s and the full statistical
  battery (clustering + phase scan) through ``analyze_events``,
* **kilo** -- the 1024-rank barrier program from ``BENCH_CORE``:
  feature derivation and clustering at three decimal orders more rows
  than the typical 8-rank cell, the scale ceiling of the layer,
* **export** -- ``dataset_rows`` over a small archived ground-truth
  campaign, cold (trace blobs decoded, features derived) vs warm
  (assembled from cached feature cells alone).

The guard (``check_bench_guard.check_stats_baseline``) holds
conservative floors on the committed rates so a quadratic slip in the
feature/clustering path trips CI.

Results land in ``BENCH_STATS.json`` at the repository root.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_stats.py           # full
    PYTHONPATH=src python benchmarks/bench_stats.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import analyze_events  # noqa: E402
from repro.archive import Archive, CacheStats  # noqa: E402
from repro.core import get_property, run_hybrid_composite  # noqa: E402
from repro.stats import (  # noqa: E402
    STATISTICAL_DETECTORS,
    behavior_matrix,
    dataset_rows,
)
from repro.synth import CampaignSpec, run_campaign  # noqa: E402

from bench_perf_core import (  # noqa: E402
    HYBRID_MPI_STEPS,
    HYBRID_OMP_STEPS,
    KILO_PROGRAM,
)

OUT_PATH = REPO_ROOT / "BENCH_STATS.json"

FULL_KILO_SIZE = 1024
QUICK_KILO_SIZE = 256
FULL_EXPORT_SCENARIOS = 30
QUICK_EXPORT_SCENARIOS = 8


def _best(fn, repeats: int):
    result = fn()  # warm-up
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def run_hybrid(size: int, repeats: int) -> dict:
    run = run_hybrid_composite(
        HYBRID_MPI_STEPS, HYBRID_OMP_STEPS, size=size, num_threads=4
    )
    events = list(run.events)

    matrix, feat_wall = _best(
        lambda: behavior_matrix(events, total_time=run.final_time),
        repeats,
    )
    result, detect_wall = _best(
        lambda: analyze_events(
            events,
            total_time=run.final_time,
            detectors=STATISTICAL_DETECTORS,
        ),
        repeats,
    )
    return {
        "size": size,
        "events": len(events),
        "rows": len(matrix),
        "features": len(matrix.names),
        "feature_wall_s": round(feat_wall, 6),
        "feature_rows_per_s": round(len(matrix) / feat_wall, 1),
        "detect_wall_s": round(detect_wall, 6),
        "detect_events_per_s": round(len(events) / detect_wall),
        "findings": len(result.findings),
    }


def run_kilo(size: int, repeats: int) -> dict:
    run = get_property(KILO_PROGRAM).run(size=size, num_threads=2, seed=0)
    events = list(run.events)
    matrix, feat_wall = _best(
        lambda: behavior_matrix(events, total_time=run.final_time),
        repeats,
    )
    result, detect_wall = _best(
        lambda: analyze_events(
            events,
            total_time=run.final_time,
            detectors=STATISTICAL_DETECTORS,
        ),
        repeats,
    )
    total = feat_wall + detect_wall
    return {
        "program": KILO_PROGRAM,
        "size": size,
        "events": len(events),
        "rows": len(matrix),
        "feature_wall_s": round(feat_wall, 6),
        "feature_rows_per_s": round(len(matrix) / feat_wall, 1),
        "detect_wall_s": round(detect_wall, 6),
        "ranks_per_s": round(size / total, 1),
        "findings": len(result.findings),
    }


def run_export(scenarios: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        archive = Archive(Path(tmp) / "archive")
        spec = CampaignSpec(
            name="bench-stats",
            scenarios=scenarios,
            sizes=(8,),
            threads=2,
            seed=42,
        )
        run_campaign(spec, archive=archive)

        cold_stats = CacheStats()
        t0 = time.perf_counter()
        rows = dataset_rows(archive, stats=cold_stats)
        cold_wall = time.perf_counter() - t0

        warm_stats = CacheStats()
        t0 = time.perf_counter()
        dataset_rows(archive, stats=warm_stats)
        warm_wall = time.perf_counter() - t0

    return {
        "scenarios": scenarios,
        "rows": len(rows),
        "cold_wall_s": round(cold_wall, 6),
        "cold_rows_per_s": round(len(rows) / cold_wall, 1),
        "warm_wall_s": round(warm_wall, 6),
        "warm_rows_per_s": round(len(rows) / warm_wall, 1),
        "warm_misses": warm_stats.misses,
        "speedup": round(cold_wall / warm_wall, 2) if warm_wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller shapes, no JSON write",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    kilo_size = QUICK_KILO_SIZE if args.quick else FULL_KILO_SIZE
    export_n = (
        QUICK_EXPORT_SCENARIOS if args.quick else FULL_EXPORT_SCENARIOS
    )

    hybrid = run_hybrid(size=64, repeats=args.repeats)
    print(
        f"  hybrid-64  features {hybrid['feature_wall_s']*1000:8.1f} ms "
        f"({hybrid['feature_rows_per_s']:8.1f} rows/s), "
        f"battery {hybrid['detect_wall_s']*1000:8.1f} ms "
        f"({hybrid['findings']} findings)"
    )

    kilo = run_kilo(size=kilo_size, repeats=max(1, args.repeats - 2))
    print(
        f"  kilo-{kilo['size']}  features {kilo['feature_wall_s']*1000:8.1f} ms "
        f"({kilo['feature_rows_per_s']:8.1f} rows/s), "
        f"pipeline {kilo['ranks_per_s']:8.1f} ranks/s"
    )

    export = run_export(export_n)
    print(
        f"  export     cold {export['cold_wall_s']*1000:8.1f} ms "
        f"({export['cold_rows_per_s']:8.1f} rows/s), "
        f"warm {export['warm_wall_s']*1000:8.1f} ms "
        f"(x{export['speedup']}, {export['warm_misses']} misses)"
    )

    payload = {
        "stats": {
            "hybrid": hybrid,
            "kilo": kilo,
            "export": export,
        },
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    if args.quick:
        print("quick mode: BENCH_STATS.json not rewritten")
        return 0
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
