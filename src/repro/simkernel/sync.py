"""Synchronization primitives for simulated processes.

Everything here is built on ``passivate``/``activate`` and therefore
costs zero virtual time by itself; higher layers (the MPI transport,
the OpenMP barrier) add explicit cost-model delays around these
primitives.  All wake-ups are FIFO, which keeps simulations
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .errors import SimError
from .process import SimProcess, current_process


class SimEvent:
    """A broadcast event: processes wait until some process sets it."""

    def __init__(self, name: str = "event"):
        self.name = name
        self._set = False
        self._waiters: Deque[SimProcess] = deque()
        self._wait_reason = f"wait({name})"
        #: optional payload handed to waiters via :attr:`value`
        self.value: Any = None

    @property
    def is_set(self) -> bool:
        return self._set

    def wait(self) -> Any:
        """Block the caller until the event is set; returns the payload."""
        proc = current_process()
        while not self._set:
            self._waiters.append(proc)
            proc.sim.passivate(self._wait_reason)
        return self.value

    def set(self, value: Any = None) -> None:
        """Set the event and wake every waiter (at the current time)."""
        self._set = True
        self.value = value
        while self._waiters:
            waiter = self._waiters.popleft()
            waiter.sim.activate(waiter)

    def clear(self) -> None:
        """Reset the event to unset."""
        self._set = False
        self.value = None


class SimSemaphore:
    """A counting semaphore with FIFO wake-up order."""

    def __init__(self, value: int = 0, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.name = name
        self._value = value
        self._waiters: Deque[SimProcess] = deque()
        self._wait_reason = f"acquire({name})"

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> None:
        proc = current_process()
        while self._value == 0:
            self._waiters.append(proc)
            proc.sim.passivate(self._wait_reason)
        self._value -= 1

    def release(self, n: int = 1) -> None:
        if n < 1:
            raise ValueError("release count must be >= 1")
        self._value += n
        for _ in range(min(n, len(self._waiters))):
            waiter = self._waiters.popleft()
            waiter.sim.activate(waiter)


class SimMutex:
    """A non-reentrant mutual-exclusion lock with FIFO handoff."""

    def __init__(self, name: str = "mutex"):
        self.name = name
        self.owner: Optional[SimProcess] = None
        self._waiters: Deque[SimProcess] = deque()
        self._wait_reason = f"lock({name})"

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def acquire(self) -> None:
        proc = current_process()
        if self.owner is proc:
            raise SimError(f"mutex {self.name} is not reentrant")
        while self.owner is not None:
            self._waiters.append(proc)
            proc.sim.passivate(self._wait_reason)
        self.owner = proc

    def release(self) -> None:
        proc = current_process()
        if self.owner is not proc:
            raise SimError(
                f"mutex {self.name} released by non-owner {proc.name}"
            )
        self.owner = None
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.sim.activate(waiter)

    def __enter__(self) -> "SimMutex":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class SimCondition:
    """A condition variable tied to a :class:`SimMutex`."""

    def __init__(self, mutex: SimMutex, name: str = "cond"):
        self.mutex = mutex
        self.name = name
        self._waiters: Deque[SimProcess] = deque()
        self._wait_reason = f"cond({name})"

    def wait(self) -> None:
        """Release the mutex, block until notified, reacquire the mutex."""
        proc = current_process()
        if self.mutex.owner is not proc:
            raise SimError("condition wait requires holding the mutex")
        self._waiters.append(proc)
        self.mutex.release()
        proc.sim.passivate(self._wait_reason)
        self.mutex.acquire()

    def notify(self, n: int = 1) -> None:
        for _ in range(min(n, len(self._waiters))):
            waiter = self._waiters.popleft()
            waiter.sim.activate(waiter)

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class SimBarrier:
    """An N-party reusable barrier.

    All parties leave at the virtual time the *last* party arrives,
    which is exactly the semantics the imbalance-at-barrier performance
    properties rely on.
    """

    def __init__(self, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.name = name
        self._wait_reason = f"barrier({name})"
        self._arrived: list[SimProcess] = []
        self._generation = 0
        #: arrival timestamps of the current generation (diagnostics)
        self.last_arrivals: list[float] = []

    def wait(self) -> int:
        """Block until all parties have arrived; returns arrival index."""
        proc = current_process()
        index = len(self._arrived)
        self._arrived.append(proc)
        gen = self._generation
        if len(self._arrived) == self.parties:
            self.last_arrivals = [proc.sim.now]
            self._generation += 1
            waiters, self._arrived = self._arrived[:-1], []
            for waiter in waiters:
                waiter.sim.activate(waiter)
            return index
        proc.sim.passivate(self._wait_reason)
        if self._generation == gen:  # pragma: no cover - defensive
            raise SimError(f"barrier {self.name} woke a waiter early")
        return index


class Mailbox:
    """An unbounded FIFO message queue between processes."""

    def __init__(self, name: str = "mailbox"):
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimProcess] = deque()
        self._wait_reason = f"mailbox({name})"

    def put(self, item: Any) -> None:
        self._items.append(item)
        if self._getters:
            getter = self._getters.popleft()
            getter.sim.activate(getter)

    def get(self) -> Any:
        proc = current_process()
        while not self._items:
            self._getters.append(proc)
            proc.sim.passivate(self._wait_reason)
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)
