"""Process-facing tracing helpers.

The runtimes store the active recorder and the process's trace location
in ``SimProcess.context`` under the keys ``"recorder"`` and ``"loc"``.
This module gives user code (property functions, applications) a
context manager for custom regions without threading those objects
through every call -- matching the paper's goal that modules "have as
little context as possible".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from ..simkernel import current_process, maybe_current_process
from .events import Location
from .recorder import TraceRecorder


#: Shared default: constructing a Location per untraced call shows up
#: on the instrumentation hot path (one ``current_instrumentation()``
#: call per traced MPI/OpenMP operation).
_UNTRACED_LOC = Location(0, 0)


def current_instrumentation() -> Tuple[Optional[TraceRecorder], Location]:
    """Recorder and location bound to the calling simulated process.

    Returns ``(None, Location(0, 0))`` when the process is untraced.
    """
    proc = maybe_current_process()
    if proc is None:
        return None, _UNTRACED_LOC
    rec = proc.context.get("recorder")
    loc = proc.context.get("loc", _UNTRACED_LOC)
    return rec, loc


def bind_instrumentation(
    recorder: Optional[TraceRecorder], loc: Location
) -> None:
    """Attach a recorder and location to the calling process.

    Called by the MPI/OpenMP runtimes when they start a rank or fork a
    team thread.
    """
    proc = current_process()
    proc.context["recorder"] = recorder
    proc.context["loc"] = loc


@contextmanager
def region(name: str) -> Iterator[None]:
    """Trace a user region around a block of code.

    Usage inside any simulated process::

        with region("initialization"):
            ...
    """
    rec, loc = current_instrumentation()
    if rec is None:
        yield
        return
    proc = current_process()
    rec.enter(proc.sim.now, loc, name)
    if rec.intrusion_per_event:
        proc.sim.hold(rec.intrusion_per_event)
    try:
        yield
    finally:
        # A forced teardown unwind (watchdog kill) tears through inner
        # regions without exiting them; recording the exit here would
        # raise an unbalanced-region error and calling hold() would
        # re-enter the dying scheduler, so skip both.
        if not proc._kill_requested:
            rec.exit(proc.sim.now, loc, name)
            if rec.intrusion_per_event:
                proc.sim.hold(rec.intrusion_per_event)
