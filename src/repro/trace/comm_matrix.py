"""Communication-matrix view of a trace.

Aggregates point-to-point traffic into a (sender rank, receiver rank)
matrix of message counts and byte volumes -- the classic companion
display to a timeline, useful for spotting hot spots (e.g. a
master-worker bottleneck shows as one dense column).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from .events import Event, Send


@dataclass
class CommMatrix:
    """Aggregated p2p traffic per (sender rank, receiver rank)."""

    messages: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def ranks(self) -> list[int]:
        present = set()
        for src, dst in self.messages:
            present.add(src)
            present.add(dst)
        return sorted(present)

    def hottest_receiver(self) -> int | None:
        """Rank receiving the most messages (None if no traffic)."""
        per_dst: Dict[int, int] = defaultdict(int)
        for (_, dst), count in self.messages.items():
            per_dst[dst] += count
        if not per_dst:
            return None
        return max(per_dst, key=lambda d: (per_dst[d], -d))


def comm_matrix(
    events: Sequence[Event], include_internal: bool = False
) -> CommMatrix:
    """Build the matrix from send events.

    ``include_internal`` adds collective-algorithm traffic, exposing
    the implementation's communication structure (e.g. binomial tree
    vs. linear fan-out).
    """
    matrix = CommMatrix()
    for event in events:
        if not isinstance(event, Send):
            continue
        if event.internal and not include_internal:
            continue
        key = (event.loc.rank, event.peer)
        matrix.messages[key] += 1
        matrix.bytes[key] += event.nbytes
    return matrix


def format_comm_matrix(matrix: CommMatrix, unit: str = "msgs") -> str:
    """Render as a square table; ``unit`` is ``msgs`` or ``bytes``."""
    if unit not in ("msgs", "bytes"):
        raise ValueError("unit must be 'msgs' or 'bytes'")
    data = matrix.messages if unit == "msgs" else matrix.bytes
    ranks = matrix.ranks()
    if not ranks:
        return "(no point-to-point traffic)\n"
    width = max(6, max(len(str(v)) for v in data.values()) + 1)
    lines = [
        "send\\recv"
        + "".join(f"{r:>{width}}" for r in ranks)
    ]
    for src in ranks:
        row = "".join(
            f"{data.get((src, dst), 0):>{width}}" for dst in ranks
        )
        lines.append(f"{src:>9}{row}")
    lines.append(
        f"total: {matrix.total_messages} messages, "
        f"{matrix.total_bytes} bytes"
    )
    return "\n".join(lines) + "\n"
