"""The trace recorder.

One :class:`TraceRecorder` instance collects the events of one program
run, across all locations.  The runtimes (:mod:`repro.simmpi`,
:mod:`repro.simomp`, :mod:`repro.work`) call into it around every
instrumented construct; the analyzer and the timeline renderer consume
the result.

Recording is append-only and cheap: the current call path of every
location is maintained *incrementally* as an interned tuple (the path
of a nested enter is ``parent + (region,)``, deduplicated through a
per-recorder intern table), so emitting an event never rebuilds a path
and repeated visits to the same call site share one tuple object.
Region-name strings are interned the same way.

The recorder also models *intrusion*: a configurable virtual-time cost
per recorded event.  With the default of zero the measurement is
perfectly non-intrusive (the ideal the paper asks tools to approach);
benchmarks set it non-zero to study how instrumentation overhead
distorts program behaviour (paper chapter 2).

A recorder can stream to a sink (a :class:`repro.trace.io.TraceWriter`)
via :meth:`attach_sink`/:meth:`flush`/:meth:`close`, and works as a
context manager so buffered output reaches disk even when the
simulation crashes::

    recorder.attach_sink(TraceWriter(path))
    with recorder:
        run()   # events flushed + sink closed on exit, crash or not
"""

from __future__ import annotations

from sys import intern as _intern
from typing import TYPE_CHECKING, Iterable, Optional

from ..obs.instruments import trace_metrics
from .events import (
    CallPath,
    CollExit,
    Enter,
    Event,
    Exit,
    Fork,
    Join,
    Location,
    Recv,
    Send,
)

if TYPE_CHECKING:  # pragma: no cover
    from .io import TraceWriter


class TraceError(Exception):
    """Malformed instrumentation (unbalanced enter/exit etc.)."""


class TraceRecorder:
    """Collects events for one run and tracks per-location call paths."""

    def __init__(self, intrusion_per_event: float = 0.0):
        if intrusion_per_event < 0:
            raise ValueError("intrusion cost must be non-negative")
        self.events: list[Event] = []
        self.intrusion_per_event = intrusion_per_event
        #: per-location stack of region names (error messages, depth_of)
        self._stacks: dict[Location, list[str]] = {}
        #: parallel per-location stack of interned full-path tuples, so
        #: the current path is always ``_paths[loc][-1]`` -- O(1), no
        #: concatenation per event.
        self._paths: dict[Location, list[CallPath]] = {}
        # Inherited call-path prefixes: a forked OpenMP thread's call
        # path continues the master's (EXPERT's call-tree convention),
        # even though its own enter/exit events start fresh.
        self._bases: dict[Location, CallPath] = {}
        #: the intern table: one tuple object per distinct call path
        self._interned: dict[CallPath, CallPath] = {}
        #: intern lookups performed; with ``len(_interned)`` this gives
        #: the hit rate.  A plain int so the hot path stays metric-free;
        #: harvested into the registry by :meth:`finish`.
        self.intern_requests = 0
        self._msg_counter = 0
        #: registry comm_id -> tuple of global ranks, filled by the MPI
        #: runtime; the analyzer needs it to localize collective waits.
        self.comm_registry: dict[int, tuple[int, ...]] = {}
        self.enabled = True
        #: streaming sink (see :meth:`attach_sink`) and the number of
        #: events already handed to it.
        self._sink: Optional["TraceWriter"] = None
        self._flushed = 0

    # ------------------------------------------------------------------
    # call-path bookkeeping
    # ------------------------------------------------------------------

    def _intern_path(self, path: CallPath) -> CallPath:
        self.intern_requests += 1
        return self._interned.setdefault(path, path)

    def path_of(self, loc: Location) -> CallPath:
        """Current call path of ``loc`` (innermost last)."""
        paths = self._paths.get(loc)
        if paths:
            return paths[-1]
        return self._bases.get(loc, ())

    def seed_base(self, loc: Location, path: CallPath) -> None:
        """Set the inherited call-path prefix of a (fresh) location."""
        base = self._intern_path(tuple(path))
        self._bases[loc] = base
        stack = self._stacks.get(loc)
        if stack:
            # Re-root an already-open stack under the new base (not the
            # normal use -- bases are seeded on fresh locations -- but
            # keeps path_of consistent with the pre-incremental
            # semantics).
            paths = self._paths[loc]
            cur = base
            for i, region in enumerate(stack):
                cur = self._intern_path(cur + (region,))
                paths[i] = cur

    def depth_of(self, loc: Location) -> int:
        return len(self._stacks.get(loc, ()))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def enter(self, time: float, loc: Location, region: str) -> None:
        """Record entry into ``region`` at ``loc``."""
        if not self.enabled:
            return
        region = _intern(region)
        stack = self._stacks.get(loc)
        if stack is None:
            stack = self._stacks[loc] = []
            paths = self._paths[loc] = []
        else:
            paths = self._paths[loc]
        parent = paths[-1] if paths else self._bases.get(loc, ())
        path = self._intern_path(parent + (region,))
        stack.append(region)
        paths.append(path)
        self.events.append(Enter(time, loc, region, path))

    def exit(self, time: float, loc: Location, region: str) -> None:
        """Record exit from ``region``; must match the innermost enter."""
        if not self.enabled:
            return
        stack = self._stacks.get(loc)
        if not stack or stack[-1] != region:
            raise TraceError(
                f"unbalanced exit({region!r}) at {loc}: stack={stack}"
            )
        paths = self._paths[loc]
        path = paths[-1]
        stack.pop()
        paths.pop()
        self.events.append(Exit(time, loc, region, path))

    def new_msg_id(self) -> int:
        """Allocate a globally unique message id for a send/recv pair."""
        self._msg_counter += 1
        return self._msg_counter

    def send(
        self,
        time: float,
        loc: Location,
        peer: int,
        tag: int,
        comm_id: int,
        nbytes: int,
        msg_id: int,
        internal: bool = False,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            Send(
                time,
                loc,
                peer=peer,
                tag=tag,
                comm_id=comm_id,
                nbytes=nbytes,
                msg_id=msg_id,
                path=self.path_of(loc),
                internal=internal,
            )
        )

    def recv(
        self,
        time: float,
        loc: Location,
        peer: int,
        tag: int,
        comm_id: int,
        nbytes: int,
        msg_id: int,
        post_time: float,
        internal: bool = False,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            Recv(
                time,
                loc,
                peer=peer,
                tag=tag,
                comm_id=comm_id,
                nbytes=nbytes,
                msg_id=msg_id,
                post_time=post_time,
                path=self.path_of(loc),
                internal=internal,
            )
        )

    def coll_exit(
        self,
        time: float,
        loc: Location,
        op: str,
        comm_id: int,
        instance: int,
        root: int,
        enter_time: float,
        bytes_sent: int = 0,
        bytes_recv: int = 0,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            CollExit(
                time,
                loc,
                op=op,
                comm_id=comm_id,
                instance=instance,
                root=root,
                enter_time=enter_time,
                bytes_sent=bytes_sent,
                bytes_recv=bytes_recv,
                path=self.path_of(loc),
            )
        )

    def fork(
        self, time: float, loc: Location, team_size: int, team_id: int
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            Fork(time, loc, team_size=team_size, team_id=team_id,
                 path=self.path_of(loc))
        )

    def join(self, time: float, loc: Location, team_id: int) -> None:
        if not self.enabled:
            return
        self.events.append(
            Join(time, loc, team_id=team_id, path=self.path_of(loc))
        )

    def register_comm(self, comm_id: int, ranks: Iterable[int]) -> None:
        """Record the global ranks that make up a communicator."""
        self.comm_registry[comm_id] = tuple(ranks)

    # ------------------------------------------------------------------
    # streaming / lifecycle
    # ------------------------------------------------------------------

    def attach_sink(self, sink: "TraceWriter") -> None:
        """Stream events to ``sink`` on :meth:`flush`/:meth:`close`.

        Only events recorded after the last flush are written, so
        attaching mid-run is safe and flushing is idempotent.
        """
        if self._sink is not None and self._sink is not sink:
            raise TraceError("recorder already has a sink attached")
        self._sink = sink

    def flush(self) -> int:
        """Hand all not-yet-written events to the sink; returns count.

        No-op (returning 0) without an attached sink.  The sink's own
        buffer is flushed too, so everything recorded so far is on disk
        afterwards.
        """
        sink = self._sink
        if sink is None:
            return 0
        events = self.events
        end = len(events)
        start = self._flushed
        if start < end:
            sink.write_many(events[start:end])
            self._flushed = end
        sink.flush()
        return end - start

    def close(self) -> None:
        """Flush remaining events and close the sink (idempotent)."""
        sink = self._sink
        if sink is None:
            return
        self.flush()
        sink.close()

    def dump(self, path, metadata: dict | None = None, faults=None) -> int:
        """Write all collected events to ``path``; returns event count.

        One-shot alternative to the streaming sink.  ``faults`` (a
        :class:`~repro.faults.FaultInjector`) applies write-time record
        faults -- drop, duplication, truncation -- so a clean recording
        can be persisted as a deliberately damaged trace file.
        """
        from .io import write_trace

        return write_trace(path, self.events, metadata=metadata,
                           faults=faults)

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close on the way out *whatever* happened: buffered tail
        # events must not be lost when the simulation crashes.
        self.close()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def locations(self) -> list[Location]:
        """All locations that produced events, sorted."""
        return sorted({e.loc for e in self.events})

    def finish(self) -> None:
        """Check that all call stacks unwound (balanced instrumentation).

        Also the harvest point for trace metrics: event counts per kind
        and interning statistics are folded into the registry here, in
        one pass at end of run, so recording itself carries no metric
        code.
        """
        leftovers = {
            str(loc): list(stack)
            for loc, stack in self._stacks.items()
            if stack
        }
        if leftovers:
            raise TraceError(f"unbalanced regions at end of run: {leftovers}")
        metrics = trace_metrics()
        if metrics is not None:
            metrics.harvest_recorder(self)

    def __len__(self) -> int:
        return len(self.events)
