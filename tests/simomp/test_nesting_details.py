"""Nested-team details: location uniqueness, context isolation."""

import pytest

from repro.simkernel import current_process
from repro.simomp import (
    omp_get_num_threads,
    omp_get_thread_num,
    omp_parallel,
    run_omp,
)
from repro.trace import Enter, Location
from repro.work import do_work


def test_nested_thread_locations_are_unique():
    """No two concurrently-live threads may share a trace location."""
    live_locs = []

    def inner():
        proc = current_process()
        live_locs.append(proc.context["loc"])
        do_work(0.001)

    def outer():
        omp_parallel(inner, num_threads=3)

    result = run_omp(lambda: omp_parallel(outer, num_threads=2))
    # outer team: threads A (loc 0.0) and B; each forks 3 inner
    # threads; inner thread 0 reuses its master's location, the others
    # are fresh -- but *within one instant* all live locations differ.
    # Check via the trace: no location has overlapping omp_parallel
    # regions at the same nesting depth.
    enters = [
        e for e in result.events
        if isinstance(e, Enter) and e.region == "omp_parallel"
    ]
    # 2 outer + 2*3 inner = 8 region instances
    assert len(enters) == 8
    # each inner team contributed 3 distinct locations
    assert len(set(live_locs)) == 6


def test_inner_team_queries_see_inner_team():
    shapes = []

    def inner():
        shapes.append(
            ("inner", omp_get_thread_num(), omp_get_num_threads())
        )

    def outer():
        shapes.append(
            ("outer", omp_get_thread_num(), omp_get_num_threads())
        )
        omp_parallel(inner, num_threads=4)
        # after the inner join, the outer team is current again
        shapes.append(
            ("after", omp_get_thread_num(), omp_get_num_threads())
        )

    run_omp(lambda: omp_parallel(outer, num_threads=2))
    outer_entries = [s for s in shapes if s[0] == "outer"]
    inner_entries = [s for s in shapes if s[0] == "inner"]
    after_entries = [s for s in shapes if s[0] == "after"]
    assert all(n == 2 for _, _, n in outer_entries)
    assert all(n == 4 for _, _, n in inner_entries)
    assert all(n == 2 for _, _, n in after_entries)
    assert len(inner_entries) == 8


def test_nested_join_times_propagate():
    """The outer join waits for the slowest inner team."""
    ends = {}

    def inner():
        me = omp_get_thread_num()
        do_work(0.01 * (me + 1))

    def outer():
        omp_parallel(inner, num_threads=3)  # slowest inner: 0.03

    def main():
        omp_parallel(outer, num_threads=2)
        ends["master"] = current_process().sim.now

    run_omp(main)
    assert ends["master"] == pytest.approx(0.03)


def test_deeply_nested_three_levels():
    count = []

    def level3():
        count.append(1)

    def level2():
        omp_parallel(level3, num_threads=2)

    def level1():
        omp_parallel(level2, num_threads=2)

    run_omp(lambda: omp_parallel(level1, num_threads=2))
    assert len(count) == 8
