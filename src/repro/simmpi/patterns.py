"""Reusable MPI communication patterns (paper section 3.1.4).

Patterns are called by all processes of a communicator, like a
collective operation, and are designed to work "with little context":
they must not deadlock or abort regardless of the number of processes
or of other communication going on at the same time.

``mpi_commpattern_sendrecv`` pairs ranks ``(2i, 2i+1)``; the direction
selects who sends: ``DIR_UP`` means even ranks send to their odd upper
neighbour, ``DIR_DOWN`` reverses the roles.  With an odd number of
processes the last process sits the pattern out, per the paper.

``mpi_commpattern_shift`` is a cyclic shift: every process sends one
message and receives one message from the neighbour in the given
direction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .buffers import MpiBuf
from .errors import MpiError
from .status import DIR_DOWN, DIR_UP

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Communicator

#: tag used by the pattern library's messages
PATTERN_TAG = 17


def _check_dir(dir: str) -> None:
    if dir not in (DIR_UP, DIR_DOWN):
        raise MpiError(f"direction must be DIR_UP or DIR_DOWN, got {dir!r}")


def mpi_commpattern_sendrecv(
    buf: MpiBuf,
    dir: str = DIR_UP,
    use_isend: bool = False,
    use_irecv: bool = False,
    comm: "Communicator" = None,  # type: ignore[assignment]
) -> None:
    """Even-odd paired send/receive.

    The ``use_isend``/``use_irecv`` flags select nonblocking
    (immediate) operations followed by a wait, mirroring the paper's
    MPI-communication-mode parameters.
    """
    _check_dir(dir)
    if comm is None:
        raise MpiError("sendrecv pattern requires a communicator")
    me = comm.rank()
    sz = comm.size()
    if sz < 2:
        return
    if sz % 2 and me == sz - 1:
        return  # odd process count: last process is ignored
    if me % 2 == 0:
        partner, am_sender = me + 1, dir == DIR_UP
    else:
        partner, am_sender = me - 1, dir == DIR_DOWN
    if am_sender:
        if use_isend:
            req = comm.isend(buf, partner, PATTERN_TAG)
            comm.wait(req)
        else:
            comm.send(buf, partner, PATTERN_TAG)
    else:
        if use_irecv:
            req = comm.irecv(buf, partner, PATTERN_TAG)
            comm.wait(req)
        else:
            comm.recv(buf, partner, PATTERN_TAG)


def mpi_commpattern_shift(
    sbuf: MpiBuf,
    rbuf: MpiBuf,
    dir: str = DIR_UP,
    use_isend: bool = False,
    use_irecv: bool = False,
    comm: "Communicator" = None,  # type: ignore[assignment]
) -> None:
    """Cyclic shift: all processes send and receive one message.

    The receive is always posted before the send so the pattern cannot
    deadlock even when every message uses the rendezvous protocol.
    """
    _check_dir(dir)
    if comm is None:
        raise MpiError("shift pattern requires a communicator")
    me = comm.rank()
    sz = comm.size()
    if sz < 2:
        rbuf.data[: sbuf.cnt] = sbuf.data
        return
    if dir == DIR_UP:
        dst, src = (me + 1) % sz, (me - 1) % sz
    else:
        dst, src = (me - 1) % sz, (me + 1) % sz
    rreq = comm.irecv(rbuf, src, PATTERN_TAG)
    if use_isend:
        sreq = comm.isend(sbuf, dst, PATTERN_TAG)
        comm.wait(sreq)
    else:
        comm.send(sbuf, dst, PATTERN_TAG)
    # use_irecv only changes how the receive is phrased in the C
    # original; here the pre-posted irecv is completed either way.
    comm.wait(rreq)
