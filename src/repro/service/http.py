"""Stdlib-only asyncio HTTP front end for the analysis service.

One ``asyncio.start_server`` accept loop, hand-rolled HTTP/1.1
parsing (request line, headers, ``Content-Length`` bodies,
keep-alive), and a small route table over
:class:`~repro.service.server.AnalysisService`::

    POST /submit-run        {property, size?, threads?, seed?, wait?}
    POST /analyze           {run, threshold?, wait?}
    POST /diff              {before, after, threshold?, wait?}
    POST /campaign          {properties?, size?, threads?, seed?, wait?}
    POST /synth             {spec, threshold?, timeout?, retries?, wait?}
    POST /export            {runs?, csv?, wait?}  ground-truth dataset
    GET  /history[?wait=0]  archive manifest as an async job
    GET  /jobs/<id>         poll one job (state, result when done)
    GET  /status            live service snapshot (JSON)
    GET  /dashboard         self-refreshing HTML status page
    GET  /metrics           Prometheus text exposition
    GET  /metrics.json      JSON metrics snapshot (with quantiles)
    GET  /healthz           liveness probe
    POST /drain             stop intake, wait for in-flight to finish

Submissions return ``202 {"job": ...}`` immediately; with
``wait`` truthy (query string or body) the response blocks until the
job resolves and carries the result inline -- that is how the load
bench measures end-to-end latency without poll noise.  Rate-limited
tenants get ``429`` with a ``Retry-After`` header; a draining service
answers ``503`` to every submission.

Every request gets a request id (``X-Request-Id`` header in and out,
generated when absent) that the service propagates into job records
and obs spans -- the tracing thread that ties an HTTP accept to its
executor cell and archive cache activity.

:func:`run_service_in_thread` runs the whole loop on a daemon thread
and returns a handle with the bound port -- how tests, the bench and
``ats serve --watch`` host the server without blocking.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import sys
import threading
import time
from typing import Optional, Tuple

from ..obs.export import to_json_str, to_prometheus
from ..obs.instruments import service_metrics
from ..obs.spans import span_log, spans_enabled
from .breaker import BreakerOpen
from .dashboard import render_html
from .server import (
    AnalysisService,
    JobError,
    RateLimited,
    ServiceDraining,
)

__all__ = ["ServiceHTTP", "ServiceHandle", "run_service_in_thread"]

_MAX_BODY = 1 << 20
_request_ids = itertools.count(1)

#: POST route -> job kind.
_SUBMIT_ROUTES = {
    "/submit-run": "run",
    "/analyze": "analyze",
    "/diff": "diff",
    "/campaign": "campaign",
    "/synth": "synth",
    "/export": "export",
}


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


def _chaos_injector():
    mod = sys.modules.get("repro.chaos.inject")
    return None if mod is None else mod.active()


class _Request:
    __slots__ = (
        "method", "path", "query", "headers", "body", "request_id",
        "keep_alive",
    )

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.request_id = headers.get(
            "x-request-id", f"req-{next(_request_ids):06d}"
        )
        if headers.get("connection", "").lower() == "close":
            self.keep_alive = False
        else:
            self.keep_alive = True

    def tenant(self) -> str:
        return self.headers.get("x-tenant", "default")

    def deadline(self) -> Optional[float]:
        """Client deadline in seconds, from ``X-Deadline-Ms``.

        The header wins; a ``deadline`` body key (seconds) is the
        JSON-only fallback.  Malformed or non-positive values raise
        :class:`~repro.service.server.JobError` (a 400), because a
        silently-dropped deadline is worse than a rejected request.
        """
        raw = self.headers.get("x-deadline-ms")
        if raw is not None:
            try:
                value = float(raw) / 1000.0
            except ValueError:
                raise JobError(
                    f"X-Deadline-Ms is not a number: {raw!r}"
                ) from None
        elif isinstance(self.body, dict) and "deadline" in self.body:
            try:
                value = float(self.body["deadline"])
            except (TypeError, ValueError):
                raise JobError(
                    "deadline must be a number of seconds"
                ) from None
        else:
            return None
        if value <= 0:
            raise JobError("deadline must be positive")
        return value

    def flag(self, name: str, default: bool = False) -> bool:
        raw = self.query.get(name)
        if raw is not None:
            return raw not in ("0", "false", "no", "")
        if isinstance(self.body, dict) and name in self.body:
            return bool(self.body[name])
        return default

    def json(self) -> dict:
        return self.body if isinstance(self.body, dict) else {}


class ServiceHTTP:
    """The asyncio HTTP server wrapping one :class:`AnalysisService`."""

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=1024
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop intake, drain, close the listener."""
        if drain:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.service.drain, 30.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                status, payload, headers = await self._route(request)
                await self._respond(writer, request, status, payload,
                                    headers)
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        path, _, raw_query = target.partition("?")
        query = {}
        for pair in raw_query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        body = None
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > _MAX_BODY:
                raise ConnectionError("body too large")
            raw_body = await reader.readexactly(length)
            try:
                body = json.loads(raw_body)
            except ValueError:
                body = {"_malformed": True}
        return _Request(method, path, query, headers, body)

    async def _respond(
        self, writer, request, status: int, payload, headers: dict
    ) -> None:
        injector = _chaos_injector()
        if injector is not None and injector.drop_connection():
            # chaos: tear the socket down before the response bytes
            # leave -- the client sees a reset mid-request.
            writer.transport.abort()
            raise ConnectionResetError("chaos: connection dropped")
        if isinstance(payload, (dict, list)):
            body = _json_bytes(payload)
            ctype = "application/json"
        else:
            body = payload if isinstance(payload, bytes) else (
                str(payload).encode("utf-8")
            )
            ctype = headers.pop("Content-Type", "text/plain")
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"X-Request-Id: {request.request_id}",
            "Connection: " + (
                "keep-alive" if request.keep_alive else "close"
            ),
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _route(self, request) -> Tuple[int, object, dict]:
        t0 = time.monotonic()
        endpoint, handler = self._dispatch(request)
        try:
            status, payload, headers = await handler(request)
        except RateLimited as exc:
            status = 429
            payload = {"error": str(exc),
                       "retry_after": exc.retry_after}
            headers = {"Retry-After": str(
                max(1, math.ceil(exc.retry_after))
            )}
        except BreakerOpen as exc:
            status = 503
            payload = {"error": str(exc),
                       "retry_after": exc.retry_after}
            headers = {"Retry-After": str(
                max(1, math.ceil(exc.retry_after))
            )}
        except ServiceDraining as exc:
            status, payload, headers = 503, {"error": str(exc)}, {}
        except JobError as exc:
            status, payload, headers = 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - boundary
            status = 500
            payload = {"error": f"{type(exc).__name__}: {exc}"}
            headers = {}
        self._observe(endpoint, status, t0, request)
        return status, payload, headers

    def _dispatch(self, request):
        method, path = request.method, request.path
        if method == "POST" and path in _SUBMIT_ROUTES:
            return path.lstrip("/"), self._handle_submit
        if method == "GET":
            if path == "/history":
                return "history", self._handle_history
            if path.startswith("/jobs/"):
                return "jobs", self._handle_job
            if path == "/status":
                return "status", self._handle_status
            if path == "/dashboard":
                return "dashboard", self._handle_dashboard
            if path == "/metrics":
                return "metrics", self._handle_metrics
            if path == "/metrics.json":
                return "metrics.json", self._handle_metrics_json
            if path == "/healthz":
                return "healthz", self._handle_healthz
        if method == "POST" and path == "/drain":
            return "drain", self._handle_drain
        if path in _SUBMIT_ROUTES or path in (
            "/history", "/status", "/metrics", "/drain"
        ):
            return "method", self._handle_bad_method
        return "unknown", self._handle_unknown

    def _observe(self, endpoint, status, t0, request) -> None:
        elapsed = time.monotonic() - t0
        metrics = service_metrics()
        if metrics is not None:
            metrics.requests.labels(
                endpoint=endpoint, code=str(status)
            ).inc()
            metrics.request_seconds.labels(endpoint=endpoint).observe(
                elapsed
            )
        if spans_enabled():
            span_log().record(
                "http-request", "service", t0, t0 + elapsed,
                {
                    "request_id": request.request_id,
                    "endpoint": endpoint,
                    "code": status,
                },
            )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    async def _handle_submit(self, request):
        body = request.json()
        if body.get("_malformed"):
            return 400, {"error": "request body is not valid JSON"}, {}
        kind = _SUBMIT_ROUTES[request.path]
        job, coalesced = self.service.submit(
            kind,
            body,
            tenant=request.tenant(),
            request_id=request.request_id,
            deadline=request.deadline(),
        )
        if request.flag("wait"):
            await self._await_job(job)
            return 200, job.to_dict(), {}
        return 202, {
            "job": job.id,
            "state": job.state,
            "coalesced": coalesced,
        }, {}

    async def _handle_history(self, request):
        job, _ = self.service.submit(
            "history",
            {},
            tenant=request.tenant(),
            request_id=request.request_id,
        )
        if request.flag("wait", default=True):
            await self._await_job(job)
            return 200, job.to_dict(), {}
        return 202, {"job": job.id, "state": job.state}, {}

    async def _handle_job(self, request):
        job_id = request.path[len("/jobs/"):]
        job = self.service.get_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        if request.flag("wait"):
            await self._await_job(job)
        return 200, job.to_dict(), {}

    async def _handle_status(self, request):
        return 200, self.service.status(), {}

    async def _handle_dashboard(self, request):
        html = render_html(self.service.status())
        return 200, html.encode("utf-8"), {
            "Content-Type": "text/html; charset=utf-8"
        }

    async def _handle_metrics(self, request):
        text = to_prometheus()
        return 200, text.encode("utf-8"), {
            "Content-Type": "text/plain; version=0.0.4"
        }

    async def _handle_metrics_json(self, request):
        return 200, to_json_str().encode("utf-8"), {
            "Content-Type": "application/json"
        }

    async def _handle_healthz(self, request):
        return 200, {"ok": True}, {}

    async def _handle_drain(self, request):
        body = request.json()
        try:
            timeout = float(body.get("timeout", 30.0))
        except (TypeError, ValueError):
            return 400, {"error": "timeout must be a number"}, {}
        loop = asyncio.get_running_loop()
        # drain() itself flushes the journal + archive manifest before
        # returning, so "drained: true" means the durable state is on
        # disk -- the caller may kill the process the moment it reads
        # this response.
        drained = await loop.run_in_executor(
            None, self.service.drain, timeout
        )
        return 200, {
            "drained": drained,
            "counts": dict(self.service.counts),
        }, {}

    async def _handle_bad_method(self, request):
        return 405, {"error": f"method {request.method} not allowed"}, {}

    async def _handle_unknown(self, request):
        return 404, {"error": f"no route {request.path!r}"}, {}

    async def _await_job(self, job) -> None:
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def resolve(_job) -> None:
            if not future.done():
                future.set_result(None)

        job.add_done_callback(
            lambda j: loop.call_soon_threadsafe(resolve, j)
        )
        await future


class ServiceHandle:
    """A service running on a background thread (tests, bench, CLI)."""

    def __init__(self, http: ServiceHTTP, loop, thread):
        self.http = http
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.http.port

    @property
    def url(self) -> str:
        return f"http://{self.http.host}:{self.http.port}"

    def stop(self, drain: bool = True) -> None:
        """Drain (optionally), close the server, join the loop thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.http.stop(drain=drain), self._loop
        )
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_service_in_thread(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServiceHandle:
    """Start the HTTP server on a daemon thread; returns its handle.

    The handle's ``url`` includes the actually-bound port (pass
    ``port=0`` for an ephemeral one), and ``stop()`` performs the
    graceful drain-then-close shutdown.
    """
    http = ServiceHTTP(service, host=host, port=port)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(http.start())
        except BaseException as exc:  # noqa: BLE001 - reported below
            startup_error.append(exc)
            ready.set()
            return
        ready.set()
        loop.run_forever()

    thread = threading.Thread(
        target=runner, name="ats-service", daemon=True
    )
    thread.start()
    ready.wait(timeout=10)
    if startup_error:
        raise startup_error[0]
    return ServiceHandle(http, loop, thread)
