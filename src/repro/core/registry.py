"""Registry of ATS property functions.

Each :class:`PropertySpec` records everything the test-suite machinery
needs to use a property function without bespoke glue: which paradigm
it belongs to, its default (severity-controlling) parameters, and the
ground truth -- the analyzer property ids the function is *designed* to
exhibit (empty for negative test programs).  The validation harness,
the program generator and the benchmarks all drive off this registry.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..distributions import get_distribution
from ..simmpi.runtime import RunResult, run_mpi
from ..simmpi.transport import TransportParams
from ..simomp.runtime import OmpRunResult, run_omp


@dataclass(frozen=True)
class DistParam:
    """A distribution-valued parameter: shape name + descriptor values.

    Expands to the ``df``/``dd`` argument pair of a property function,
    and to ``--dist``/value options in generated programs.
    """

    shape: str
    values: Tuple[float, ...]

    def resolve(self):
        spec = get_distribution(self.shape)
        return spec.func, spec.make_descriptor(*self.values)

    def scaled(self, factor: float) -> "DistParam":
        """Scale every descriptor value (severity-parameter sweeps)."""
        return DistParam(self.shape, tuple(v * factor for v in self.values))


ParamValue = Union[int, float, DistParam]


@lru_cache(maxsize=None)
def _accepts_num_threads(func: Callable[..., None]) -> bool:
    # Signature introspection is slow (~0.1 ms) and Step.execute asks
    # once per rank per step, so memoize per function object.
    return "num_threads" in inspect.signature(func).parameters


@dataclass(frozen=True)
class PropertySpec:
    """Metadata and launcher for one ATS property function."""

    name: str
    func: Callable[..., None]
    paradigm: str  # "mpi" | "omp" | "hybrid"
    #: analyzer property ids this program is designed to exhibit
    expected: Tuple[str, ...]
    #: additional ids that may legitimately co-occur (e.g. critical
    #: contention also skews the enclosing region's join) -- tolerated
    #: by the validation harness but not required
    allowed: Tuple[str, ...] = ()
    default_params: Dict[str, ParamValue] = field(default_factory=dict)
    negative: bool = False
    description: str = ""
    min_size: int = 2
    #: params whose value scales the property's severity (for sweeps)
    severity_params: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.paradigm not in ("mpi", "omp", "hybrid"):
            raise ValueError(f"bad paradigm {self.paradigm!r}")

    # ------------------------------------------------------------------
    # parameter handling
    # ------------------------------------------------------------------

    def materialize(
        self, overrides: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Merge overrides into defaults and expand DistParams."""
        merged: Dict[str, Any] = dict(self.default_params)
        if overrides:
            unknown = set(overrides) - set(merged) - {"num_threads"}
            if unknown:
                raise KeyError(
                    f"{self.name}: unknown parameter(s) {sorted(unknown)}"
                )
            merged.update(overrides)
        out: Dict[str, Any] = {}
        for key, value in merged.items():
            if isinstance(value, DistParam):
                df, dd = value.resolve()
                out["df"] = df
                out["dd"] = dd
            else:
                out[key] = value
        return out

    def scaled_params(self, factor: float) -> Dict[str, ParamValue]:
        """Defaults with every severity parameter scaled by ``factor``."""
        out = dict(self.default_params)
        for key in self.severity_params:
            value = out[key]
            if isinstance(value, DistParam):
                out[key] = value.scaled(factor)
            else:
                out[key] = value * factor
        return out

    def accepts_num_threads(self) -> bool:
        return _accepts_num_threads(self.func)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(
        self,
        size: int = 8,
        num_threads: int = 4,
        params: Optional[Dict[str, Any]] = None,
        transport: Optional[TransportParams] = None,
        trace: bool = True,
        seed: int = 0,
        model_init_overhead: bool = False,
        faults=None,
        time_budget: Optional[float] = None,
    ) -> Union[RunResult, OmpRunResult]:
        """Run the property function as a standalone program.

        MPI/hybrid specs launch ``size`` simulated ranks; OpenMP specs
        run standalone with ``num_threads``.  Returns the usual run
        result whose trace feeds the analyzer.  ``faults`` takes a
        :class:`~repro.faults.FaultPlan` or
        :class:`~repro.faults.FaultInjector` to run the program under
        injected noise (the robustness harness's pipeline).
        ``time_budget`` arms the kernel watchdog: a program whose
        virtual clock exceeds it is torn down with a
        :class:`~repro.simkernel.HangError` instead of running forever.
        """
        kwargs = self.materialize(params)
        if self.paradigm == "omp":
            def main() -> None:
                self.func(**kwargs)

            return run_omp(
                main,
                num_threads=num_threads,
                trace=trace,
                seed=seed,
                faults=faults,
                time_budget=time_budget,
            )
        if size < self.min_size:
            raise ValueError(
                f"{self.name} requires at least {self.min_size} ranks"
            )
        if self.accepts_num_threads():
            kwargs.setdefault("num_threads", num_threads)

        def mpi_main(comm) -> None:
            self.func(**kwargs, comm=comm)

        return run_mpi(
            mpi_main,
            size,
            transport=transport,
            trace=trace,
            seed=seed,
            model_init_overhead=model_init_overhead,
            faults=faults,
            time_budget=time_budget,
        )


_REGISTRY: Dict[str, PropertySpec] = {}


class DuplicatePropertyError(ValueError):
    """A registration would shadow an already-registered program.

    Raised instead of silently replacing the existing spec: lookups by
    name must never be ambiguous between a hand-written program and a
    later (e.g. synthesized) one.  ``existing`` carries the spec that
    holds the name.
    """

    def __init__(self, spec: PropertySpec, existing: PropertySpec):
        super().__init__(
            f"property {spec.name!r} already registered "
            f"({existing.paradigm} program: {existing.description or 'no description'}); "
            "registered names are unique -- pick a distinct name"
        )
        self.spec = spec
        self.existing = existing


def register_property(spec: PropertySpec) -> PropertySpec:
    """Add a spec to the registry; duplicate names are an error."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        raise DuplicatePropertyError(spec, existing)
    _REGISTRY[spec.name] = spec
    return spec


def has_property(name: str) -> bool:
    """True when ``name`` is a registered property program."""
    return name in _REGISTRY


def get_property(name: str) -> PropertySpec:
    """Look up a registered property function by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown property function {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def list_properties(
    paradigm: Optional[str] = None,
    negative: Optional[bool] = None,
) -> list[PropertySpec]:
    """Registered specs, optionally filtered, sorted by name."""
    specs = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if paradigm is not None:
        specs = [s for s in specs if s.paradigm == paradigm]
    if negative is not None:
        specs = [s for s in specs if s.negative == negative]
    return specs


# ----------------------------------------------------------------------
# the built-in catalog
# ----------------------------------------------------------------------

def _populate() -> None:
    from .properties import collective as c
    from .properties import hybrid as h
    from .properties import negative as n
    from .properties import omp as o
    from .properties import p2p as p
    from .properties import sequential as q

    # -- MPI point-to-point (paper 3.1.5) ------------------------------
    register_property(PropertySpec(
        name="late_sender",
        func=p.late_sender,
        paradigm="mpi",
        expected=("late_sender",),
        default_params=dict(basework=0.005, extrawork=0.02, r=3),
        severity_params=("extrawork",),
        description="receiver blocks on a send executed too late",
    ))
    register_property(PropertySpec(
        name="late_receiver",
        func=p.late_receiver,
        paradigm="mpi",
        expected=("late_receiver",),
        default_params=dict(basework=0.005, extrawork=0.02, r=3),
        severity_params=("extrawork",),
        description="rendezvous sender blocks on a receive posted late",
    ))
    register_property(PropertySpec(
        name="messages_in_wrong_order",
        func=p.messages_in_wrong_order,
        paradigm="mpi",
        expected=("late_sender", "messages_in_wrong_order"),
        default_params=dict(basework=0.002, msgwork=0.004, nmsg=4, r=2),
        severity_params=("msgwork",),
        description="receives posted against the send order",
    ))
    register_property(PropertySpec(
        name="late_sender_bottleneck",
        func=p.late_sender_bottleneck,
        paradigm="mpi",
        expected=("late_sender",),
        default_params=dict(basework=0.002, extrawork=0.01, r=3),
        severity_params=("extrawork",),
        description="wildcard receiver drained by many late senders",
    ))

    # -- MPI collectives (paper 3.1.5) ---------------------------------
    register_property(PropertySpec(
        name="imbalance_at_mpi_barrier",
        func=c.imbalance_at_mpi_barrier,
        paradigm="mpi",
        expected=("wait_at_barrier",),
        default_params=dict(dist=DistParam("block2", (0.005, 0.025)), r=3),
        severity_params=("dist",),
        description="uneven work before MPI_Barrier",
    ))
    register_property(PropertySpec(
        name="growing_imbalance_at_mpi_barrier",
        func=c.growing_imbalance_at_mpi_barrier,
        paradigm="mpi",
        expected=("wait_at_barrier",),
        default_params=dict(dist=DistParam("block2", (0.005, 0.03)), r=4),
        severity_params=("dist",),
        description="barrier imbalance growing with the iteration "
        "number (paper 3.1.5 closing remark)",
    ))
    register_property(PropertySpec(
        name="imbalance_at_mpi_alltoall",
        func=c.imbalance_at_mpi_alltoall,
        paradigm="mpi",
        expected=("wait_at_nxn",),
        default_params=dict(dist=DistParam("block2", (0.005, 0.025)), r=3),
        severity_params=("dist",),
        description="uneven work before MPI_Alltoall",
    ))
    register_property(PropertySpec(
        name="imbalance_at_mpi_allreduce",
        func=c.imbalance_at_mpi_allreduce,
        paradigm="mpi",
        expected=("wait_at_nxn",),
        default_params=dict(dist=DistParam("linear", (0.005, 0.025)), r=3),
        severity_params=("dist",),
        description="uneven work before MPI_Allreduce",
    ))
    register_property(PropertySpec(
        name="imbalance_at_mpi_allgather",
        func=c.imbalance_at_mpi_allgather,
        paradigm="mpi",
        expected=("wait_at_nxn",),
        default_params=dict(dist=DistParam("peak", (0.005, 0.03, 0)), r=3),
        severity_params=("dist",),
        description="uneven work before MPI_Allgather",
    ))
    register_property(PropertySpec(
        name="imbalance_at_mpi_reduce_scatter",
        func=c.imbalance_at_mpi_reduce_scatter,
        paradigm="mpi",
        expected=("wait_at_nxn",),
        default_params=dict(dist=DistParam("cyclic3",
                                           (0.005, 0.025, 0.015)), r=3),
        severity_params=("dist",),
        description="uneven work before MPI_Reduce_scatter",
    ))
    register_property(PropertySpec(
        name="late_broadcast",
        func=c.late_broadcast,
        paradigm="mpi",
        expected=("late_broadcast",),
        default_params=dict(
            basework=0.005, rootextrawork=0.02, root=1, r=3
        ),
        severity_params=("rootextrawork",),
        description="broadcast root enters late; non-roots wait",
    ))
    register_property(PropertySpec(
        name="late_scatter",
        func=c.late_scatter,
        paradigm="mpi",
        expected=("late_scatter",),
        default_params=dict(
            basework=0.005, rootextrawork=0.02, root=0, r=3
        ),
        severity_params=("rootextrawork",),
        description="scatter root enters late; receivers wait",
    ))
    register_property(PropertySpec(
        name="late_scatterv",
        func=c.late_scatterv,
        paradigm="mpi",
        expected=("late_scatterv",),
        default_params=dict(
            basework=0.005, rootextrawork=0.02, root=0, r=3
        ),
        severity_params=("rootextrawork",),
        description="irregular scatter root enters late",
    ))
    register_property(PropertySpec(
        name="early_reduce",
        func=c.early_reduce,
        paradigm="mpi",
        expected=("early_reduce",),
        default_params=dict(
            rootwork=0.005, baseextrawork=0.02, root=0, r=3
        ),
        severity_params=("baseextrawork",),
        description="reduce root enters early and waits for data",
    ))
    register_property(PropertySpec(
        name="early_gather",
        func=c.early_gather,
        paradigm="mpi",
        expected=("early_gather",),
        default_params=dict(
            rootwork=0.005, baseextrawork=0.02, root=0, r=3
        ),
        severity_params=("baseextrawork",),
        description="gather root enters early and waits for data",
    ))
    register_property(PropertySpec(
        name="early_gatherv",
        func=c.early_gatherv,
        paradigm="mpi",
        expected=("early_gatherv",),
        default_params=dict(
            rootwork=0.005, baseextrawork=0.02, root=0, r=3
        ),
        severity_params=("baseextrawork",),
        description="irregular gather root enters early",
    ))

    # -- OpenMP (paper 3.1.5) -------------------------------------------
    register_property(PropertySpec(
        name="imbalance_in_omp_pregion",
        func=o.imbalance_in_omp_pregion,
        paradigm="omp",
        expected=("imbalance_in_omp_pregion",),
        default_params=dict(dist=DistParam("linear", (0.002, 0.02)), r=3),
        severity_params=("dist",),
        min_size=1,
        description="uneven thread work in a parallel region",
    ))
    register_property(PropertySpec(
        name="imbalance_at_omp_barrier",
        func=o.imbalance_at_omp_barrier,
        paradigm="omp",
        expected=("imbalance_at_omp_barrier",),
        default_params=dict(dist=DistParam("block2", (0.002, 0.02)), r=3),
        severity_params=("dist",),
        min_size=1,
        description="the paper's worked example (section 3.1.5)",
    ))
    register_property(PropertySpec(
        name="imbalance_in_omp_loop",
        func=o.imbalance_in_omp_loop,
        paradigm="omp",
        expected=("imbalance_in_omp_loop",),
        default_params=dict(
            dist=DistParam("cyclic2", (0.002, 0.02)),
            r=3,
            iterations_per_thread=1,
        ),
        severity_params=("dist",),
        min_size=1,
        description="statically scheduled loop with uneven iterations",
    ))
    register_property(PropertySpec(
        name="imbalance_in_omp_sections",
        func=o.imbalance_in_omp_sections,
        paradigm="omp",
        expected=("imbalance_in_omp_sections",),
        default_params=dict(
            dist=DistParam("linear", (0.001, 0.02)), nsections=8, r=2
        ),
        severity_params=("dist",),
        min_size=1,
        description="sections of widely different cost",
    ))
    register_property(PropertySpec(
        name="nested_omp_imbalance",
        func=o.nested_omp_imbalance,
        paradigm="omp",
        expected=("imbalance_in_omp_pregion",),
        default_params=dict(
            dist=DistParam("linear", (0.002, 0.015)), r=2,
            outer_threads=2,
        ),
        severity_params=("dist",),
        min_size=1,
        description="nested thread teams with uneven inner work "
        "(paper 3.3 nesting scenario)",
    ))
    register_property(PropertySpec(
        name="omp_critical_contention",
        func=o.omp_critical_contention,
        paradigm="omp",
        expected=("omp_critical_contention",),
        # serialization also staggers thread finish times, so the
        # region join legitimately shows imbalance as well
        allowed=("imbalance_in_omp_pregion",),
        default_params=dict(inside_work=0.004, outside_work=0.004, r=4),
        severity_params=("inside_work",),
        min_size=1,
        description="serialized work inside a critical section",
    ))

    register_property(PropertySpec(
        name="imbalance_at_omp_single",
        func=q.imbalance_at_omp_single,
        paradigm="omp",
        expected=("imbalance_at_omp_single",),
        default_params=dict(singlework=0.02, r=3),
        severity_params=("singlework",),
        min_size=1,
        description="one thread works in single; the team waits",
    ))
    register_property(PropertySpec(
        name="imbalance_at_omp_reduce",
        func=q.imbalance_at_omp_reduce,
        paradigm="omp",
        expected=("imbalance_at_omp_reduce",),
        default_params=dict(basework=0.003, extrawork=0.015, r=3),
        severity_params=("extrawork",),
        min_size=1,
        description="uneven arrival at a team reduction",
    ))

    # -- sequential (paper future-work item) ------------------------------
    register_property(PropertySpec(
        name="io_bound_phases",
        func=q.io_bound_phases,
        paradigm="omp",  # runs standalone on the master process
        expected=("io_bound",),
        default_params=dict(iotime=0.02, cputime=0.005, r=4),
        severity_params=("iotime",),
        min_size=1,
        description="alternating I/O and compute, I/O dominating",
    ))

    # -- hybrid (paper 3.3) ---------------------------------------------
    register_property(PropertySpec(
        name="hybrid_imbalance_then_barrier",
        func=h.hybrid_imbalance_then_barrier,
        paradigm="hybrid",
        expected=("imbalance_in_omp_pregion", "wait_at_barrier"),
        default_params=dict(dist=DistParam("linear", (0.002, 0.01)), r=3),
        severity_params=("dist",),
        description="OpenMP imbalance compounding into MPI barrier waits",
    ))
    register_property(PropertySpec(
        name="hybrid_late_sender_omp_work",
        func=h.hybrid_late_sender_omp_work,
        paradigm="hybrid",
        expected=("late_sender",),
        default_params=dict(basework=0.004, extrawork=0.015, r=3),
        severity_params=("extrawork",),
        description="late sender whose delay is an OpenMP region",
    ))
    register_property(PropertySpec(
        name="hybrid_alternating_paradigms",
        func=h.hybrid_alternating_paradigms,
        paradigm="hybrid",
        expected=("imbalance_in_omp_pregion", "late_sender"),
        default_params=dict(basework=0.003, extrawork=0.012, r=3),
        severity_params=("extrawork",),
        description="interleaved OpenMP and MPI pathologies",
    ))

    # -- negative programs (well-tuned) ----------------------------------
    register_property(PropertySpec(
        name="balanced_mpi_barrier",
        func=n.balanced_mpi_barrier,
        paradigm="mpi",
        expected=(),
        negative=True,
        default_params=dict(work=0.01, r=3),
        description="balanced work before barriers",
    ))
    register_property(PropertySpec(
        name="balanced_sendrecv",
        func=n.balanced_sendrecv,
        paradigm="mpi",
        expected=(),
        negative=True,
        default_params=dict(work=0.01, r=3),
        description="balanced even-odd message exchange",
    ))
    register_property(PropertySpec(
        name="balanced_shift_ring",
        func=n.balanced_shift_ring,
        paradigm="mpi",
        expected=(),
        negative=True,
        default_params=dict(work=0.01, r=3),
        description="balanced cyclic shift",
    ))
    register_property(PropertySpec(
        name="balanced_collectives",
        func=n.balanced_collectives,
        paradigm="mpi",
        expected=(),
        negative=True,
        default_params=dict(work=0.008, r=2),
        description="balanced bcast/allreduce/alltoall mix",
    ))
    register_property(PropertySpec(
        name="balanced_omp_region",
        func=n.balanced_omp_region,
        paradigm="omp",
        expected=(),
        negative=True,
        default_params=dict(work=0.01, r=3),
        min_size=1,
        description="balanced parallel regions",
    ))
    register_property(PropertySpec(
        name="balanced_omp_barrier_loop",
        func=n.balanced_omp_barrier_loop,
        paradigm="omp",
        expected=(),
        negative=True,
        default_params=dict(work=0.01, r=3),
        min_size=1,
        description="balanced explicit-barrier loop",
    ))
    register_property(PropertySpec(
        name="balanced_omp_loop",
        func=n.balanced_omp_loop,
        paradigm="omp",
        expected=(),
        negative=True,
        default_params=dict(work=0.004, iterations_per_thread=3, r=2),
        min_size=1,
        description="balanced static worksharing loop",
    ))


_populate()
