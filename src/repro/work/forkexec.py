"""Fork-per-cell task executor: true multicore fan-out for sweeps.

Sweep, matrix and robustness cells are independent and deterministic,
but they are pure-Python compute, so the thread fan-out in
:func:`repro.simkernel.process.run_host_tasks` cannot parallelize them
-- the GIL serializes everything that is not I/O.  This module escapes
the GIL the classic POSIX way: ``os.fork`` one child per task.

Each child:

* redirects its stdout/stderr (at the fd level, so C-level writes and
  the simulator's worker threads are caught too) into a capture pipe,
* snapshots the obs metrics registry it inherited, so it can ship only
  the *delta* it produced (:mod:`repro.obs.merge`),
* runs its task callable and writes one JSON envelope -- payload or
  classified failure, plus captured extras and the metrics delta -- to
  a result pipe, then ``os._exit``\\ s without touching the parent's
  buffered state.

The parent multiplexes all live pipes through ``select`` (nonblocking
reads, no thread per child), enforces a per-task wall-clock deadline
with ``SIGKILL``, reaps with ``waitpid``, and returns
:class:`ForkOutcome` records **in submission order** -- results are
deterministic regardless of completion order.  A child that dies
without delivering an envelope (segfault, ``os._exit`` in user code,
OOM kill) is reported as ``crashed`` rather than hanging the sweep.

Task callables must return JSON-serializable payloads; they travel
through a pipe, not shared memory.  Fork safety for the simulation
kernel's worker-thread pool is handled in
:mod:`repro.simkernel.process` via ``os.register_at_fork``.
"""

from __future__ import annotations

import errno
import json
import os
import select
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "ForkOutcome",
    "fork_available",
    "run_forked_tasks",
]

_READ_CHUNK = 65536


def fork_available() -> bool:
    """Whether this platform supports the fork executor."""
    return hasattr(os, "fork") and hasattr(select, "select")


@dataclass
class ForkOutcome:
    """What one forked task produced.

    ``status`` is one of:

    * ``"ok"`` -- the callable returned; ``payload`` holds its value.
    * ``"failed"`` -- the callable raised; ``error``/``kind``/``report``
      describe the exception (``kind`` via the caller's classifier).
    * ``"timeout"`` -- the child exceeded the wall-clock deadline and
      was killed.
    * ``"crashed"`` -- the child died without delivering an envelope.

    ``output`` carries the child's combined stdout+stderr, ``metrics``
    the obs registry delta (merge with
    :func:`repro.obs.merge.merge_state`), and ``extras`` whatever the
    ``extras_fn`` side channel collected (deferred archive manifest
    records, for instance).
    """

    status: str
    payload: Any = None
    error: str = ""
    kind: str = ""
    report: str = ""
    output: str = ""
    elapsed: float = 0.0
    metrics: Dict[str, dict] = field(default_factory=dict)
    extras: Any = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _Child:
    """Parent-side bookkeeping for one in-flight forked task."""

    __slots__ = (
        "index", "pid", "result_fd", "output_fd",
        "result_buf", "output_buf", "deadline", "started", "killed",
    )

    def __init__(self, index, pid, result_fd, output_fd, deadline):
        self.index = index
        self.pid = pid
        self.result_fd = result_fd
        self.output_fd = output_fd
        self.result_buf = bytearray()
        self.output_buf = bytearray()
        self.deadline = deadline
        self.started = time.monotonic()
        self.killed = False


def _child_main(fn, extras_fn, result_w, output_w) -> None:
    """Everything the forked child does; never returns."""
    status = 1
    try:
        os.dup2(output_w, 1)
        os.dup2(output_w, 2)
        os.close(output_w)
        # Rebind the Python-level streams too: the parent may have
        # redirected sys.stdout away from fd 1 (pytest's capture, an
        # io.StringIO shim), and child prints must land in the pipe.
        sys.stdout = os.fdopen(1, "w", buffering=1, closefd=False)
        sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)

        from ..obs.merge import registry_state, state_delta

        baseline = registry_state()
        envelope: Dict[str, Any]
        try:
            payload = fn()
            envelope = {"status": "ok", "payload": payload}
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            envelope = {
                "status": "failed",
                "error": f"{type(exc).__name__}: {exc}",
                "exc_type": type(exc).__name__,
                "report": traceback.format_exc(),
            }
        if extras_fn is not None:
            try:
                envelope["extras"] = extras_fn()
            except BaseException as exc:  # noqa: BLE001
                envelope.setdefault(
                    "error", f"{type(exc).__name__}: {exc}"
                )
        try:
            envelope["metrics"] = state_delta(baseline, registry_state())
        except BaseException:  # noqa: BLE001 - metrics are best-effort
            pass
        sys.stdout.flush()
        sys.stderr.flush()
        data = json.dumps(envelope).encode("utf-8")
        written = 0
        while written < len(data):
            written += os.write(result_w, data[written:])
        os.close(result_w)
        status = 0
    except BaseException:  # noqa: BLE001 - nothing else may escape a fork
        try:
            traceback.print_exc()
            sys.stderr.flush()
        except BaseException:  # noqa: BLE001
            pass
    finally:
        os._exit(status)


def _spawn(index, fn, extras_fn, timeout) -> _Child:
    result_r, result_w = os.pipe()
    output_r, output_w = os.pipe()
    sys.stdout.flush()
    sys.stderr.flush()
    pid = os.fork()
    if pid == 0:
        # -- child --
        os.close(result_r)
        os.close(output_r)
        _child_main(fn, extras_fn, result_w, output_w)
        os._exit(1)  # pragma: no cover - _child_main never returns
    # -- parent --
    os.close(result_w)
    os.close(output_w)
    os.set_blocking(result_r, False)
    os.set_blocking(output_r, False)
    deadline = None if timeout is None else time.monotonic() + timeout
    return _Child(index, pid, result_r, output_r, deadline)


def _drain_fd(fd: int, buf: bytearray) -> bool:
    """Read until EAGAIN; True once the fd hit EOF and was closed."""
    while True:
        try:
            chunk = os.read(fd, _READ_CHUNK)
        except BlockingIOError:
            return False
        except OSError as exc:  # pragma: no cover - defensive
            if exc.errno == errno.EINTR:
                continue
            chunk = b""
        if chunk:
            buf.extend(chunk)
        else:
            os.close(fd)
            return True


def _finish(child: _Child, outcomes: List[Optional[ForkOutcome]]) -> None:
    """Reap a child whose pipes both hit EOF; record its outcome."""
    _pid, wait_status = os.waitpid(child.pid, 0)
    elapsed = time.monotonic() - child.started
    output = child.output_buf.decode("utf-8", "replace")
    if child.killed:
        outcomes[child.index] = ForkOutcome(
            status="timeout",
            error="wall-clock deadline exceeded",
            kind="timeout",
            output=output,
            elapsed=elapsed,
        )
        return
    envelope = None
    if child.result_buf:
        try:
            envelope = json.loads(child.result_buf.decode("utf-8"))
        except ValueError:
            envelope = None
    if envelope is None:
        if os.WIFSIGNALED(wait_status):
            detail = f"killed by signal {os.WTERMSIG(wait_status)}"
        else:
            detail = f"exited with status {os.WEXITSTATUS(wait_status)}"
        outcomes[child.index] = ForkOutcome(
            status="crashed",
            error=f"child delivered no result ({detail})",
            kind="crash",
            output=output,
            elapsed=elapsed,
        )
        return
    outcomes[child.index] = ForkOutcome(
        status=envelope.get("status", "crashed"),
        payload=envelope.get("payload"),
        error=envelope.get("error", ""),
        kind=envelope.get("exc_type", ""),
        report=envelope.get("report", ""),
        output=output,
        elapsed=elapsed,
        metrics=envelope.get("metrics") or {},
        extras=envelope.get("extras"),
    )


def run_forked_tasks(
    fns: Sequence[Callable[[], Any]],
    workers: int,
    timeout: Optional[float] = None,
    extras_fn: Optional[Callable[[], Any]] = None,
    on_outcome: Optional[Callable[[int, ForkOutcome], None]] = None,
) -> List[ForkOutcome]:
    """Run zero-argument callables in forked children; ordered results.

    At most ``workers`` children run at once; the returned list matches
    ``fns`` by index regardless of completion order.  ``timeout`` is a
    per-task wall-clock deadline (``SIGKILL``; the outcome's status
    becomes ``"timeout"``).  ``extras_fn`` runs in each child after its
    task and its JSON-safe return value rides back on the envelope.
    ``on_outcome(index, outcome)`` fires in the parent as each child
    completes -- in *completion* order -- for incremental checkpoint
    journaling.

    Exceptions inside a task never propagate; they come back as
    ``failed`` outcomes.  The ``kind`` field carries the exception type
    name so callers can run their own failure classification.
    """
    fns = list(fns)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not fork_available():  # pragma: no cover - POSIX-only repo
        raise RuntimeError("fork executor unavailable on this platform")
    if not fns:
        return []

    outcomes: List[Optional[ForkOutcome]] = [None] * len(fns)
    live: Dict[int, _Child] = {}
    next_index = 0

    def launch() -> None:
        nonlocal next_index
        while next_index < len(fns) and len(live) < workers:
            child = _spawn(next_index, fns[next_index], extras_fn, timeout)
            live[child.pid] = child
            next_index += 1

    launch()
    while live:
        fds = []
        for child in live.values():
            if child.result_fd >= 0:
                fds.append(child.result_fd)
            if child.output_fd >= 0:
                fds.append(child.output_fd)
        now = time.monotonic()
        wait = None
        for child in live.values():
            if child.deadline is not None and not child.killed:
                wait = (
                    child.deadline - now
                    if wait is None
                    else min(wait, child.deadline - now)
                )
        if wait is not None:
            wait = max(0.0, wait)
        try:
            readable, _, _ = select.select(fds, [], [], wait)
        except InterruptedError:  # pragma: no cover - EINTR retry
            continue
        readable = set(readable)
        finished = []
        for child in live.values():
            if child.result_fd >= 0 and child.result_fd in readable:
                if _drain_fd(child.result_fd, child.result_buf):
                    child.result_fd = -1
            if child.output_fd >= 0 and child.output_fd in readable:
                if _drain_fd(child.output_fd, child.output_buf):
                    child.output_fd = -1
            if child.result_fd < 0 and child.output_fd < 0:
                finished.append(child)
                continue
            if (
                child.deadline is not None
                and not child.killed
                and time.monotonic() >= child.deadline
            ):
                child.killed = True
                try:
                    os.kill(child.pid, signal.SIGKILL)
                except ProcessLookupError:  # pragma: no cover
                    pass
        for child in finished:
            del live[child.pid]
            _finish(child, outcomes)
            if on_outcome is not None:
                on_outcome(child.index, outcomes[child.index])
        launch()
    return outcomes  # type: ignore[return-value]
