"""Host-side span instrumentation (wall-clock, not virtual time).

A *span* brackets a phase of the tool's own work -- building the trace
index, running one detector, flushing the writer, the whole simulate /
analyze / export pipeline -- with ``time.perf_counter`` timestamps.
Spans answer the question the metrics registry cannot: *where does the
host wall-clock time go?*  They become the host track of the Chrome
trace-event export (:mod:`repro.obs.chrome`).

Like metrics, spans are globally switched and default to off; the
disabled path hands out one shared no-op context manager, so
``with span(...)`` costs a function call and a branch, with no
allocation.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanLog",
    "reset_spans",
    "set_spans_enabled",
    "span",
    "span_log",
    "spans_enabled",
]


class Span:
    """One completed host span: name, category, start offset, duration.

    ``start`` is seconds since the owning :class:`SpanLog` was created
    (so all spans of a run share one origin); ``duration`` is wall
    seconds; ``tid`` is the OS thread ident that ran the span.
    """

    __slots__ = ("name", "cat", "start", "duration", "tid", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        start: float,
        duration: float,
        tid: int,
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.duration = duration
        self.tid = tid
        self.args = args

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} cat={self.cat} "
            f"start={self.start:.6f}s dur={self.duration * 1e3:.3f}ms>"
        )


class SpanLog:
    """Append-only collection of completed spans with one time origin."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.spans: List[Span] = []

    def record(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        args: Optional[dict] = None,
    ) -> None:
        self.spans.append(
            Span(
                name,
                cat,
                t0 - self.origin,
                t1 - t0,
                threading.get_ident(),
                args,
            )
        )

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)


class _ActiveSpan:
    """Context manager that records into the global log on exit."""

    __slots__ = ("_name", "_cat", "_args", "_t0")

    def __init__(self, name: str, cat: str, args: Optional[dict]) -> None:
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_ActiveSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _log.record(
            self._name, self._cat, self._t0, time.perf_counter(), self._args
        )


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()
_enabled = False
_log = SpanLog()


def span(name: str, cat: str = "host", **args: Any):
    """Bracket a block of host work; no-op while spans are disabled.

    Usage::

        with span("detect:LateSenderDetector", cat="analysis"):
            ...
    """
    if not _enabled:
        return _NOOP_SPAN
    return _ActiveSpan(name, cat, args or None)


def spans_enabled() -> bool:
    return _enabled


def set_spans_enabled(flag: bool) -> bool:
    """Flip the span switch; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def span_log() -> SpanLog:
    """The process-global span log."""
    return _log


def reset_spans() -> SpanLog:
    """Swap in a fresh global span log (new time origin); returns it."""
    global _log
    _log = SpanLog()
    return _log
